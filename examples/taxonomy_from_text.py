"""Build an isA taxonomy from raw text with Hearst patterns.

Demonstrates the Probase-style construction path: generate a synthetic
web corpus, run the Hearst extractor over it, count observations into a
taxonomy, and inspect typicality — including sense ambiguity ("apple").

Run:  python examples/taxonomy_from_text.py
"""

from repro.taxonomy import (
    CorpusConfig,
    TypicalityScorer,
    build_from_corpus,
    generate_corpus,
)


def main() -> None:
    print("Generating a synthetic web corpus ...")
    sentences = list(generate_corpus(CorpusConfig(seed=11, sentences_per_concept=250)))
    print(f"  {len(sentences)} sentences, e.g.:")
    for sentence in sentences[:3]:
        print(f"    {sentence!r}")

    print("\nRunning Hearst extraction and counting observations ...")
    taxonomy = build_from_corpus(sentences, min_count=2)
    print(f"  {taxonomy}")

    scorer = TypicalityScorer(taxonomy)
    print("\nTypicality P(concept | instance):")
    for instance in ["apple", "iphone 5s", "rome", "battery", "python"]:
        senses = ", ".join(
            f"{concept}={p:.2f}" for concept, p in scorer.top_concepts(instance, 3)
        )
        print(f"  {instance:12} -> {senses}")

    print("\nMost representative smartphones P(instance | concept):")
    ranked = sorted(
        scorer.instance_distribution("smartphone").items(),
        key=lambda kv: -kv[1],
    )[:5]
    for instance, p in ranked:
        print(f"  {instance:16} {p:.3f}")

    print(f"\nAmbiguity of 'apple' (sense entropy): "
          f"{scorer.instance_ambiguity('apple'):.2f} nats")


if __name__ == "__main__":
    main()
