"""Longer short texts: compound titles, typos, and decision traces.

The paper targets queries, ads keywords, titles, and captions. This
example drives the pieces beyond single clean queries: the compound
detector for coordinated titles, the spelling normalizer for noisy input,
and the explanation API for understanding a decision.

Run:  python examples/titles_and_captions.py
"""

from repro import build_default_model
from repro.core import CompoundDetector, explain_detection

TITLES = [
    "iphone 5s smart cover and galaxy s4 screen protector",
    "rome bed and breakfast and paris hotels",
    "gta 5 cheats or skyrim mods",
]


def main() -> None:
    print("Training model ...\n")
    model = build_default_model(seed=7, num_intents=3000)
    detector = model.detector(correct_spelling=True)

    print("--- compound titles ---")
    compound = CompoundDetector(detector)
    for title in TITLES:
        result = compound.detect(title)
        print(f"{title}")
        for clause in result.clauses:
            print(f"  clause: {clause.explain()}")
        print()

    print("--- noisy caption (typos) ---")
    noisy = "ihpone 5s smart cvoer"
    detection = detector.detect(noisy)
    print(f"{noisy!r} -> {detection.explain()}\n")

    print("--- decision trace ---")
    print(explain_detection(detector, "honda civic brake pads").render())


if __name__ == "__main__":
    main()
