"""Structured search relevance vs. bag-of-words.

A page violating a query constraint can share most of the query's tokens;
a truly relevant page can be diluted by boilerplate. The structured
scorer built on head/constraint detection handles both.

Run:  python examples/search_relevance.py
"""

from repro import build_default_model
from repro.apps import BagOfWordsScorer, Document, StructuredRelevanceScorer

DOCUMENTS = [
    Document(
        "relevant",
        "iphone 5s smart cover official site guide deals and more",
        "shop the full smart cover selection",
    ),
    Document(
        "conflicting",
        "popular iphone 5 smart cover",
        "popular smart cover shop",
    ),
    Document("generic", "smart cover overview", "everything about smart covers"),
    Document("off-head", "iphone 5s news", "iphone 5s rumors and updates"),
]

QUERY = "popular iphone 5s smart cover"


def main() -> None:
    print("Training model ...\n")
    model = build_default_model(seed=7, num_intents=3000)
    detector = model.detector()
    detection = detector.detect(QUERY)
    print(f"query: {QUERY}")
    print(f"  detected: {detection.explain()}\n")

    structured = StructuredRelevanceScorer(detector)
    bow = BagOfWordsScorer()
    print(f"{'document':12} | {'structured':>10} | {'bag-of-words':>12}")
    print("-" * 42)
    for document in DOCUMENTS:
        print(
            f"{document.doc_id:12} | {structured.score(detection, document):10.3f} "
            f"| {bow.score(QUERY, document):12.3f}"
        )
    print(
        "\nBag-of-words ranks the constraint-violating page first; the\n"
        "structured scorer penalizes the violated 'iphone 5s' constraint."
    )


if __name__ == "__main__":
    main()
