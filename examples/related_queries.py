"""Intent-level query similarity: clustering surface variants.

Token overlap confuses "iphone 5s case" with "galaxy s4 case" (shared
tokens, different intent) and misses "case for iphone 5s" (same intent,
different surface). Comparing detections fixes both.

Run:  python examples/related_queries.py
"""

from repro import build_default_model
from repro.apps import QueryIntentMatcher

PAIRS = [
    ("iphone 5s case", "case for iphone 5s"),
    ("iphone 5s case", "best iphone 5s case"),
    ("iphone 5s case", "galaxy s4 case"),
    ("iphone 5s case", "iphone 5s charger"),
    ("cheap rome hotels", "rome hotels"),
    ("rome hotels", "paris hotels"),
    ("nurse jobs in seattle", "seattle nurse jobs"),
]


def jaccard(a: str, b: str) -> float:
    sa, sb = set(a.split()), set(b.split())
    return len(sa & sb) / len(sa | sb)


def main() -> None:
    print("Training model ...\n")
    model = build_default_model(seed=7, num_intents=3000)
    matcher = QueryIntentMatcher(model.detector())
    header = f"{'query A':24} | {'query B':24} | intent | jaccard | same intent?"
    print(header)
    print("-" * len(header))
    for a, b in PAIRS:
        similarity = matcher.similarity(a, b)
        verdict = "YES" if matcher.same_intent(a, b) else "no"
        print(f"{a:24} | {b:24} | {similarity:6.2f} | {jaccard(a, b):7.2f} | {verdict}")
    print(
        "\nNote the inversions: reorderings score 1.0 at intent level but low\n"
        "Jaccard, while constraint conflicts score high Jaccard but ~0 intent."
    )


if __name__ == "__main__":
    main()
