"""Constraint-aware ads matching vs. token overlap.

The paper's production use case: an ad whose keyword conflicts with a
query constraint ("iphone 5 case" on "iphone 5s case") must not be
served, even though it shares more surface tokens than the safe generic
ad. Token-overlap matching makes exactly that mistake.

Run:  python examples/ads_matching.py
"""

from repro import build_default_model
from repro.apps import Ad, AdMatcher, TokenOverlapAdMatcher

INVENTORY = [
    Ad("a1", "iphone 5s case"),
    Ad("a2", "iphone 5 case"),
    Ad("a3", "case"),
    Ad("a4", "galaxy s4 case"),
    Ad("a5", "iphone 5s charger"),
    Ad("a6", "rome hotels"),
    Ad("a7", "hotels"),
    Ad("a8", "paris hotels"),
]

QUERIES = [
    "iphone 5s case",       # exact keyword available
    "iphone 4s case",       # no exact keyword: generic must win
    "cheap hotels in rome", # connector surface, exact keyword available
    "venice hotels",        # no exact keyword: generic must win
]


def show(name: str, matcher) -> None:
    print(f"--- {name} ---")
    for query in QUERIES:
        results = matcher.match(query, top_k=3)
        ranked = ", ".join(f"{r.ad.keyword!r} ({r.score:.2f})" for r in results)
        print(f"  {query:22} -> {ranked or '(no match)'}")
    print()


def main() -> None:
    print("Training model ...\n")
    model = build_default_model(seed=7, num_intents=3000)
    detector = model.detector()
    show("constraint-aware matcher", AdMatcher(detector, INVENTORY))
    show("token-overlap baseline", TokenOverlapAdMatcher(INVENTORY))
    print(
        "Note how the baseline serves 'iphone 5 case' / 'paris hotels' on\n"
        "conflicting queries, while the structured matcher backs off to the\n"
        "generic head keyword."
    )


if __name__ == "__main__":
    main()
