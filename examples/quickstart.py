"""Quickstart: train a model and detect heads, modifiers, and constraints.

Run:  python examples/quickstart.py
"""

from repro import build_default_model

QUERIES = [
    "popular iphone 5s smart cover",
    "cheap hotels in rome",
    "nurse jobs in seattle",
    "2013 tom hanks movies",
    "vegan lasagna recipe",
    "galaxy s4 screen protector",
    "honda civic brake pads",
    "best running shoes",
]


def main() -> None:
    print("Training on the built-in taxonomy + synthetic search log ...")
    model = build_default_model(seed=7, num_intents=3000)
    print(
        f"  mined pairs: {len(model.pairs)}, "
        f"concept patterns: {len(model.patterns)}\n"
    )
    detector = model.detector()
    for query in QUERIES:
        detection = detector.detect(query)
        print(f"query:       {query}")
        print(f"  head:        {detection.head}")
        print(f"  modifiers:   {', '.join(detection.modifiers) or '-'}")
        print(f"  constraints: {', '.join(detection.constraints) or '-'}")
        print(f"  breakdown:   {detection.explain()}")
        print()


if __name__ == "__main__":
    main()
