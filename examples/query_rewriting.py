"""Constraint-preserving query relaxation.

For recall expansion a retrieval stack drops query terms — but dropping a
constraint changes the intent. The rewriter drops only non-constraint
modifiers, producing a safe relaxation ladder.

Run:  python examples/query_rewriting.py
"""

from repro import build_default_model
from repro.apps import QueryRewriter

QUERIES = [
    "best cheap iphone 5s smart cover",
    "popular vegan lasagna recipe",
    "top rated rome hotels",
    "buy galaxy s4 screen protector",
]


def main() -> None:
    print("Training model ...\n")
    model = build_default_model(seed=7, num_intents=3000)
    rewriter = QueryRewriter(model.detector())
    for query in QUERIES:
        print(f"query: {query}")
        print(f"  must keep:  {' + '.join(rewriter.must_keep(query))}")
        for step, rewrite in enumerate(rewriter.relax(query)):
            print(f"  relax[{step}]:   {rewrite}")
        print()


if __name__ == "__main__":
    main()
