"""Inspect what training learned: pattern concentration, directionality,
and coverage of the mined instance pairs.

Run:  python examples/inspect_patterns.py
"""

from repro import build_default_model
from repro.core import (
    Conceptualizer,
    direction_conflicts,
    pair_coverage,
    summarize_table,
)


def main() -> None:
    print("Training model ...\n")
    model = build_default_model(seed=7, num_intents=3000)

    summary = summarize_table(model.patterns)
    print("Pattern-table shape:")
    print(f"  patterns:              {summary.num_patterns}")
    print(f"  total weight:          {summary.total_weight:.0f}")
    print(f"  patterns for 50% mass: {summary.patterns_for_half_mass}")
    print(f"  patterns for 90% mass: {summary.patterns_for_90_mass}")
    print(f"  modifier concepts:     {summary.num_modifier_concepts}")
    print(f"  head concepts:         {summary.num_head_concepts}")

    print("\nTop 8 patterns:")
    for pattern, weight in model.patterns.top(8):
        direction = model.patterns.directionality(
            pattern.modifier_concept, pattern.head_concept
        )
        print(f"  {str(pattern):48} weight={weight:8.0f}  direction={direction:+.2f}")

    conflicts = direction_conflicts(model.patterns, min_balance=0.2)
    print(f"\nDirectionally ambiguous concept pairs (balance >= 0.2): {len(conflicts)}")
    for conflict in conflicts[:5]:
        print(
            f"  {conflict.concept_a} <-> {conflict.concept_b}: "
            f"{conflict.forward_weight:.0f} vs {conflict.backward_weight:.0f} "
            f"(balance {conflict.balance:.2f})"
        )

    coverage = pair_coverage(
        model.pairs, model.patterns, Conceptualizer(model.taxonomy)
    )
    print(
        f"\nMined-pair support explained by the pruned table: {coverage:.1%} "
        f"({len(model.pairs)} pairs -> {summary.num_patterns} patterns)"
    )


if __name__ == "__main__":
    main()
