"""Full offline pipeline: generate a log, train, persist, reload.

Shows the artifacts a production deployment ships: the taxonomy, the
weighted concept-pattern table, the instance-pair memory, and the
constraint classifier — all in one directory bundle.

Run:  python examples/train_and_save.py
"""

import tempfile
from pathlib import Path

from repro import (
    LogConfig,
    TrainingConfig,
    build_from_seed,
    generate_log,
    load_model,
    save_model,
    train_model,
)


def main() -> None:
    taxonomy = build_from_seed()
    print(f"taxonomy: {taxonomy}")

    log = generate_log(taxonomy, LogConfig(seed=21, num_intents=3000))
    print(f"search log: {log}")

    model = train_model(log, taxonomy, TrainingConfig())
    print(f"mined pairs: {len(model.pairs)}")
    print(f"concept patterns: {len(model.patterns)} (top 5):")
    for pattern, weight in model.patterns.top(5):
        print(f"  {pattern}  weight={weight:.0f}")

    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "model"
        save_model(model, bundle)
        files = sorted(p.name for p in bundle.iterdir())
        print(f"\nsaved bundle: {files}")

        reloaded = load_model(bundle)
        detector = reloaded.detector()
        detection = detector.detect("popular iphone 5s smart cover")
        print(f"\nreloaded detection: {detection.explain()}")


if __name__ == "__main__":
    main()
