"""Legacy setup shim.

The canonical metadata lives in pyproject.toml. This file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (PEP 660 editable builds require it; the legacy path does not):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
