"""Command-line interface.

Exposes the full offline pipeline and the runtime detector::

    repro taxonomy-build --out taxonomy.tsv.gz
    repro log-generate --taxonomy taxonomy.tsv.gz --out log.jsonl.gz --intents 4000
    repro train --log log.jsonl.gz --taxonomy taxonomy.tsv.gz --out model/
    repro train --log log.jsonl.gz --taxonomy t.tsv.gz --out model/ --state state.hdmt
    repro train --append delta.jsonl.gz --base state.hdmt --out model/ --emit-snapshot g2.hdms
    repro detect --model model/ "popular iphone 5s smart cover"
    repro snapshot --model model/ --out model.hdms
    repro snapshot --info model.hdms
    repro reload --url http://127.0.0.1:8080 --snapshot g2.hdms
    repro detect --snapshot model.hdms --workers 4 --input queries.txt
    repro serve --snapshot model.hdms --port 8080
    repro serve --snapshot model.hdms --port 8080 --replicas 4
    repro route --snapshot model.hdms --port 8080 --replicas 4
    repro replica --snapshot model.hdms --port 0
    repro evaluate --model model/ --log heldout.jsonl.gz
    repro patterns --model model/ --top 20
    repro lint --format json

Every command is deterministic given its ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro import __version__
from repro.core.model import load_model, save_model
from repro.core.pipeline import TrainingConfig, train_model
from repro.errors import ReproError
from repro.eval.datasets import build_eval_set
from repro.eval.harness import evaluate_constraints, evaluate_head_detection
from repro.eval.reporting import format_table
from repro.querylog.generator import LogConfig, generate_log
from repro.querylog.storage import load_query_log, save_query_log
from repro.taxonomy.builder import build_from_corpus, build_from_seed
from repro.taxonomy.corpus import CorpusConfig, generate_corpus
from repro.taxonomy.serialization import load_taxonomy_tsv, save_taxonomy_tsv


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Head, modifier, and constraint detection in short texts "
        "(ICDE 2014 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(required=True)

    p = sub.add_parser("taxonomy-build", help="build the isA taxonomy")
    p.add_argument("--out", required=True, help="output TSV (.gz supported)")
    p.add_argument(
        "--from-corpus",
        action="store_true",
        help="build via Hearst extraction over a generated corpus instead of "
        "materializing the seed directly",
    )
    p.add_argument("--sentences", type=int, default=200, help="corpus sentences per concept")
    p.add_argument("--min-count", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(handler=_cmd_taxonomy_build)

    p = sub.add_parser("log-generate", help="generate a synthetic search log")
    p.add_argument("--taxonomy", required=True)
    p.add_argument("--out", required=True, help="output JSONL (.gz supported)")
    p.add_argument("--intents", type=int, default=4000)
    p.add_argument("--seed", type=int, default=13)
    p.add_argument(
        "--no-gold", action="store_true", help="omit ground-truth labels from the file"
    )
    p.set_defaults(handler=_cmd_log_generate)

    p = sub.add_parser("train", help="train a model from a log + taxonomy")
    p.add_argument("--log", help="training log (full build)")
    p.add_argument("--taxonomy", help="isA taxonomy TSV (full build)")
    p.add_argument("--out", help="output model directory")
    p.add_argument("--pattern-mass", type=float, default=0.99)
    p.add_argument("--max-patterns", type=int, default=None)
    p.add_argument("--no-classifier", action="store_true")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard pair mining across N worker processes (default 1)",
    )
    p.add_argument(
        "--reference",
        action="store_true",
        help="use the pure-Python reference pipeline instead of the "
        "vectorized one (identical output, slower; for cross-checking)",
    )
    p.add_argument(
        "--state",
        metavar="FILE",
        help="persist the incremental training state (.hdmt) so later "
        "deltas fold in at O(delta) via --append",
    )
    p.add_argument(
        "--append",
        metavar="DELTA",
        help="fold a delta log into an existing training state "
        "(needs --base; bit-identical to retraining on the "
        "concatenated log, at O(delta) cost)",
    )
    p.add_argument(
        "--base",
        metavar="STATE",
        help="with --append: the .hdmt training state to fold into "
        "(re-saved in place unless --state names a new file)",
    )
    p.add_argument(
        "--emit-snapshot",
        metavar="FILE",
        help="also compile the trained model into a runtime snapshot "
        "carrying a lineage header (generation, record count)",
    )
    p.add_argument(
        "--parent-snapshot",
        metavar="FILE",
        help="with --emit-snapshot: the previous generation's snapshot, "
        "recorded as the lineage parent",
    )
    p.set_defaults(handler=_cmd_train)

    p = sub.add_parser(
        "snapshot", help="compile a model into a binary runtime snapshot"
    )
    p.add_argument("--model", help="model bundle directory")
    p.add_argument("--out", help="output snapshot file (.hdms)")
    p.add_argument(
        "--spell",
        action="store_true",
        help="bake the typo-correcting speller into the snapshot",
    )
    p.add_argument(
        "--info",
        metavar="FILE",
        help="print an existing snapshot's header (format, counts, "
        "lineage) without loading the model",
    )
    p.set_defaults(handler=_cmd_snapshot)

    p = sub.add_parser("detect", help="detect head/modifiers/constraints")
    p.add_argument("--model", help="model bundle directory")
    p.add_argument(
        "--snapshot",
        metavar="FILE",
        help="serve from a compiled snapshot (see `repro snapshot`) "
        "instead of a model bundle",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --snapshot: shard the batch across N worker processes",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="answer all queries in one detect_batch call (array-at-a-time "
        "vectorized detection; bit-identical to per-query results)",
    )
    p.add_argument("queries", nargs="*", metavar="QUERY")
    p.add_argument(
        "--input",
        metavar="FILE",
        help="read one query per line from FILE ('-' = stdin) "
        "in addition to positional QUERYs",
    )
    p.add_argument("--json", action="store_true", help="emit JSON lines")
    p.add_argument("--spell", action="store_true", help="enable typo correction")
    p.add_argument(
        "--explain", action="store_true", help="print the full decision trace"
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="with --snapshot: print runtime cache hit/miss counters "
        "to stderr after the detections",
    )
    p.set_defaults(handler=_cmd_detect)

    p = sub.add_parser(
        "serve", help="serve detection over HTTP (micro-batched, cached)"
    )
    p.add_argument("--model", help="model bundle directory")
    p.add_argument(
        "--snapshot",
        metavar="FILE",
        help="serve from a compiled snapshot (workers mmap it read-only)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --snapshot: run micro-batches on an N-process "
        "snapshot-backed pool instead of in-process",
    )
    p.add_argument("--spell", action="store_true", help="enable typo correction")
    p.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="with --snapshot: run N replica processes behind a "
        "consistent-hash router (shorthand for `repro route`)",
    )
    _add_service_flags(p)
    _add_router_flags(p)
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "route",
        help="serve detection over HTTP through N replica processes "
        "(consistent-hash routed, shared mmap'd snapshot)",
    )
    p.add_argument("--snapshot", required=True, metavar="FILE")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    p.add_argument(
        "--replicas", type=int, default=2, metavar="N",
        help="replica processes to spawn (default 2)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=1024,
        help="router admission limit: concurrent requests before 503 "
        "(default 1024)",
    )
    _add_service_flags(p)
    _add_router_flags(p)
    p.set_defaults(handler=_cmd_route)

    p = sub.add_parser(
        "replica",
        help="run one serving replica on the router's socket protocol "
        "(normally spawned by `repro route`, not by hand)",
    )
    p.add_argument("--snapshot", required=True, metavar="FILE")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p.add_argument("--replica-id", type=int, default=0)
    p.add_argument("--generation", type=int, default=1)
    _add_service_flags(p)
    p.set_defaults(handler=_cmd_replica)

    p = sub.add_parser(
        "reload",
        help="hot-swap a running server or router fleet onto a new "
        "snapshot (zero downtime; POST /reload)",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the running `repro serve` / `repro route` "
        "front door (default http://127.0.0.1:8080)",
    )
    p.add_argument("--snapshot", required=True, metavar="FILE")
    p.set_defaults(handler=_cmd_reload)

    p = sub.add_parser("evaluate", help="evaluate a model on a labelled log")
    p.add_argument("--model", required=True)
    p.add_argument("--log", required=True, help="held-out log with gold labels")
    p.add_argument("--max-examples", type=int, default=2000)
    p.add_argument(
        "--show-errors",
        type=int,
        default=0,
        metavar="N",
        help="also print up to N head errors with a failure breakdown",
    )
    p.set_defaults(handler=_cmd_evaluate)

    p = sub.add_parser("patterns", help="inspect the concept-pattern table")
    p.add_argument("--model", required=True)
    p.add_argument("--top", type=int, default=20)
    p.set_defaults(handler=_cmd_patterns)

    p = sub.add_parser("rewrite", help="constraint-preserving relaxations")
    p.add_argument("--model", required=True)
    p.add_argument("queries", nargs="+", metavar="QUERY")
    p.set_defaults(handler=_cmd_rewrite)

    p = sub.add_parser("similar", help="intent-level similarity of two texts")
    p.add_argument("--model", required=True)
    p.add_argument("query_a", metavar="QUERY_A")
    p.add_argument("query_b", metavar="QUERY_B")
    p.set_defaults(handler=_cmd_similar)

    from repro.analysis.cli import add_lint_parser

    add_lint_parser(sub)

    return parser


def _add_service_flags(p: argparse.ArgumentParser) -> None:
    """Serving-policy flags shared by ``serve``, ``route``, ``replica``."""
    p.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="flush a micro-batch at this many queries (default 32)",
    )
    p.add_argument(
        "--max-wait-us",
        type=int,
        default=500,
        help="max microseconds a query waits for batch-mates (default 500)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission limit: distinct in-flight queries before 503 "
        "(default 1024)",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=50_000,
        help="normalized-query result cache entries; 0 disables (default 50000)",
    )


def _add_router_flags(p: argparse.ArgumentParser) -> None:
    """Adaptive-fleet flags shared by ``serve --replicas N`` and ``route``:
    autoscaling bounds, tail-hedging policy, and cache warm-up."""
    p.add_argument(
        "--min-replicas",
        type=int,
        default=None,
        metavar="N",
        help="enable the autoscaler with this fleet floor; the router "
        "spawns N replicas initially and scales within "
        "[min-replicas, max-replicas]",
    )
    p.add_argument(
        "--max-replicas",
        type=int,
        default=None,
        metavar="N",
        help="autoscaler fleet ceiling (default: --replicas when only "
        "--min-replicas is given)",
    )
    p.add_argument(
        "--scale-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="autoscaler sampling interval (default 2.0)",
    )
    p.add_argument(
        "--scale-up-p95-us",
        type=float,
        default=0.0,
        metavar="MICROSECONDS",
        help="windowed request p95 above which the fleet counts as "
        "overloaded; 0 disables the latency trigger (default 0)",
    )
    p.add_argument(
        "--hedge-p99-us",
        type=float,
        default=0.0,
        metavar="MICROSECONDS",
        help="per-replica window p99 above which requests to that "
        "replica are hedged to the next ring node; 0 disables "
        "hedging (default 0)",
    )
    p.add_argument(
        "--hedge-rate",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="cap on fired hedges as a fraction of the recent request "
        "window (default 0.05)",
    )
    p.add_argument(
        "--warmup-keys",
        type=int,
        default=256,
        metavar="N",
        help="hottest sibling cache keys replayed through a joining "
        "replica before it takes traffic; 0 joins cold (default 256)",
    )
    p.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="background health-probe interval (default 1.0)",
    )


def _cmd_taxonomy_build(args: argparse.Namespace) -> int:
    if args.from_corpus:
        config = CorpusConfig(seed=args.seed, sentences_per_concept=args.sentences)
        taxonomy = build_from_corpus(generate_corpus(config), min_count=args.min_count)
    else:
        taxonomy = build_from_seed()
    save_taxonomy_tsv(taxonomy, args.out)
    print(
        f"wrote {args.out}: {taxonomy.num_instances} instances, "
        f"{taxonomy.num_concepts} concepts, {taxonomy.num_edges} edges"
    )
    return 0


def _cmd_log_generate(args: argparse.Namespace) -> int:
    taxonomy = load_taxonomy_tsv(args.taxonomy)
    log = generate_log(taxonomy, LogConfig(seed=args.seed, num_intents=args.intents))
    save_query_log(log, args.out, include_gold=not args.no_gold)
    print(
        f"wrote {args.out}: {log.num_queries} distinct queries, "
        f"volume {log.total_frequency}, {log.num_sessions} sessions"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.append:
        return _cmd_train_append(args)
    if not args.log or not args.taxonomy or not args.out:
        print(
            "error: train needs --log, --taxonomy, and --out "
            "(or --append DELTA --base STATE)",
            file=sys.stderr,
        )
        return 2
    if args.state and args.reference:
        print(
            "error: --state folds are vectorized; drop --reference",
            file=sys.stderr,
        )
        return 2
    taxonomy = load_taxonomy_tsv(args.taxonomy)
    log = load_query_log(args.log, include_gold=False)
    config = TrainingConfig(
        pattern_mass=args.pattern_mass,
        max_patterns=args.max_patterns,
        train_classifier=not args.no_classifier,
    )
    timings: dict[str, float] = {}
    if args.state:
        from repro.training.incremental import IncrementalTrainer

        trainer = IncrementalTrainer(log, taxonomy, config, timings=timings)
        model = trainer.model
        trainer.save(args.state)
    else:
        trainer = None
        model = train_model(
            log,
            taxonomy,
            config,
            workers=args.workers,
            vectorized=not args.reference,
            timings=timings,
        )
    save_model(model, args.out)
    classifier = "yes" if model.classifier is not None else "no"
    print(
        f"wrote {args.out}: {len(model.pairs)} mined pairs, "
        f"{len(model.patterns)} concept patterns, classifier: {classifier}"
    )
    stages = " ".join(
        f"{stage}={timings[stage]:.2f}s"
        for stage in ("mine", "derive", "features", "classifier", "total")
        if stage in timings
    )
    path = "reference" if args.reference else "vectorized"
    print(f"training path: {path}, workers: {args.workers}, {stages}")
    if trainer is not None:
        print(
            f"wrote {args.state}: training state, generation "
            f"{trainer.generation}, {trainer.log.num_queries} records"
        )
    if args.emit_snapshot:
        _emit_versioned_snapshot(
            model,
            args.emit_snapshot,
            generation=trainer.generation if trainer is not None else 1,
            record_count=log.num_queries,
            parent=args.parent_snapshot,
        )
    return 0


def _cmd_train_append(args: argparse.Namespace) -> int:
    from repro.training.incremental import IncrementalTrainer

    if not args.base:
        print("error: --append needs --base STATE", file=sys.stderr)
        return 2
    if not args.out and not args.emit_snapshot:
        print(
            "error: --append needs --out and/or --emit-snapshot "
            "(the refolded model must go somewhere)",
            file=sys.stderr,
        )
        return 2
    trainer = IncrementalTrainer.load(args.base)
    delta = load_query_log(args.append, include_gold=False)
    timings: dict[str, float] = {}
    model = trainer.fold(delta, timings=timings)
    if args.out:
        save_model(model, args.out)
        classifier = "yes" if model.classifier is not None else "no"
        print(
            f"wrote {args.out}: {len(model.pairs)} mined pairs, "
            f"{len(model.patterns)} concept patterns, classifier: {classifier}"
        )
    state_out = args.state or args.base
    trainer.save(state_out)
    stages = " ".join(
        f"{stage}={timings[stage]:.2f}s"
        for stage in ("mine", "derive", "features", "classifier", "total")
        if stage in timings
    )
    dirty = int(timings.get("dirty_records", 0))
    print(
        f"folded {args.append}: generation {trainer.generation}, "
        f"{dirty} dirty of {trainer.log.num_queries} records, {stages}"
    )
    print(f"wrote {state_out}: training state")
    if args.emit_snapshot:
        _emit_versioned_snapshot(
            model,
            args.emit_snapshot,
            generation=trainer.generation,
            record_count=trainer.log.num_queries,
            parent=args.parent_snapshot,
        )
    return 0


def _emit_versioned_snapshot(
    model, path, *, generation: int, record_count: int, parent
) -> None:
    from repro.runtime.lineage import save_versioned_snapshot

    compiled = model.compile()
    try:
        save_versioned_snapshot(
            compiled,
            path,
            generation=generation,
            record_count=record_count,
            parent=parent,
        )
    finally:
        compiled.close()
    lineage = f"generation {generation}, {record_count} records"
    lineage += f", parent {parent}" if parent else ", no parent"
    print(f"wrote {path}: versioned snapshot ({lineage})")


def _cmd_snapshot(args: argparse.Namespace) -> int:
    if args.info:
        return _cmd_snapshot_info(args.info)
    if not args.model or not args.out:
        print(
            "error: snapshot needs --model and --out (or --info FILE)",
            file=sys.stderr,
        )
        return 2
    model = load_model(args.model)
    compiled = model.compile(correct_spelling=args.spell)
    header = compiled.save_snapshot(args.out)
    counts = header["counts"]
    from pathlib import Path

    size = Path(args.out).stat().st_size
    speller = "yes" if header["has_speller"] else "no"
    print(
        f"wrote {args.out}: {size} bytes (format v{header['version']}), "
        f"{counts['phrases']} phrases, {counts['patterns']} patterns, "
        f"{counts['support']} support pairs, vocab {counts['vocab']}, "
        f"speller: {speller}"
    )
    return 0


def _cmd_snapshot_info(path: str) -> int:
    """Header-only snapshot inspection: no model load, no payload read
    past the CRC field — works the same on pre-lineage snapshots."""
    from pathlib import Path

    from repro.runtime import read_snapshot_header
    from repro.runtime.lineage import SnapshotLineage

    header = read_snapshot_header(path)
    counts = header["counts"]
    size = Path(path).stat().st_size
    print(f"{path}: {size} bytes, HDMSNAP format v{header['version']}")
    print(
        f"  counts: {counts['phrases']} phrases, {counts['patterns']} "
        f"patterns, {counts['support']} support pairs, "
        f"vocab {counts['vocab']}"
    )
    print(f"  speller: {'yes' if header['has_speller'] else 'no'}")
    print(f"  payload crc32: {header['payload_crc32']}")
    lineage = SnapshotLineage.from_header(header)
    if lineage is None:
        print("  lineage: none (pre-lineage snapshot; generation 1)")
    else:
        parent = (
            f"parent crc32 {lineage.parent_crc32}"
            if lineage.parent_crc32 is not None
            else "no parent (base build)"
        )
        print(
            f"  lineage: generation {lineage.generation}, "
            f"{lineage.record_count} records, {parent}"
        )
    return 0


def _cmd_reload(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request
    from pathlib import Path

    # Resolve client-side: router and replicas run on this host (the
    # shared-mmap design), so the path must be absolute for *their* cwd.
    snapshot = str(Path(args.snapshot).resolve())
    body = json.dumps({"snapshot": snapshot}).encode("utf-8")
    request = urllib.request.Request(
        args.url.rstrip("/") + "/reload",
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            detail = {}
        message = detail.get("error") or detail.get("replicas") or exc.reason
        print(f"error: reload failed ({exc.code}): {message}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 2
    replicas = payload.get("replicas")
    if replicas is None:
        # Single-process `repro serve`: one service swapped in place.
        print(
            f"reloaded {payload.get('snapshot', snapshot)}: "
            f"model generation {payload.get('model_generation')}"
        )
        return 0
    for name, entry in sorted(replicas.items()):
        if entry.get("ok"):
            print(f"  {name}: model generation {entry['model_generation']}")
        else:
            print(f"  {name}: FAILED ({entry.get('error')})")
    total = len(replicas)
    reloaded = payload.get("reloaded", 0)
    print(f"reloaded {reloaded}/{total} replicas onto {snapshot}")
    return 0 if reloaded == total else 1


def _cmd_detect(args: argparse.Namespace) -> int:
    queries = list(args.queries)
    if args.input:
        if args.input == "-":
            queries.extend(line.strip() for line in sys.stdin if line.strip())
        else:
            with open(args.input, encoding="utf-8") as handle:
                queries.extend(line.strip() for line in handle if line.strip())
    if not queries:
        print("error: no queries given (positional or --input)", file=sys.stderr)
        return 2
    if bool(args.model) == bool(args.snapshot):
        print(
            "error: detect needs exactly one of --model or --snapshot",
            file=sys.stderr,
        )
        return 2
    if args.workers > 1 and not args.snapshot:
        print("error: --workers needs --snapshot", file=sys.stderr)
        return 2
    if args.workers > 1 and args.explain:
        print("error: --explain is single-process; drop --workers", file=sys.stderr)
        return 2
    if args.stats and not args.snapshot:
        print(
            "error: --stats reads the compiled runtime caches; use --snapshot",
            file=sys.stderr,
        )
        return 2
    if args.snapshot:
        from repro.runtime import read_snapshot_header
        from repro.runtime.compiled import CompiledDetector

        if args.spell and not read_snapshot_header(args.snapshot)["has_speller"]:
            print(
                "error: snapshot was saved without a speller; rebuild it with "
                "`repro snapshot --spell`",
                file=sys.stderr,
            )
            return 2
        detector = CompiledDetector.load_snapshot(args.snapshot)
    else:
        model = load_model(args.model)
        detector = model.detector(correct_spelling=args.spell)
    try:
        if args.explain:
            from repro.core.explain import explain_detection

            for query in queries:
                print(explain_detection(detector, query).render())
                print()
            return 0
        if args.workers > 1:
            detections = detector.detect_batch(queries, workers=args.workers)
        elif args.batch:
            detections = detector.detect_batch(queries)
        else:
            detections = [detector.detect(query) for query in queries]
    finally:
        if args.snapshot:
            detector.close()
    for query, detection in zip(queries, detections):
        if args.json:
            print(
                json.dumps(
                    {
                        "query": detection.query,
                        "head": detection.head,
                        "modifiers": list(detection.modifiers),
                        "constraints": list(detection.constraints),
                        "method": detection.method,
                        "score": detection.score,
                    },
                    sort_keys=True,
                )
            )
        else:
            print(f"{query}\n  {detection.explain()}")
    if args.stats:
        print("runtime cache stats:", file=sys.stderr)
        for name, stats in detector.cache_stats().items():
            print(
                f"  {name}: size={stats['size']}/{stats['capacity']} "
                f"hits={stats['hits']} misses={stats['misses']} "
                f"hit_rate={stats['hit_rate']:.2f}",
                file=sys.stderr,
            )
    return 0


class _PoolBackedDetector:
    """Route a service's micro-batches through the snapshot worker pool.

    ``DetectionService`` only calls ``detect_batch``/``detect``; this
    adapter pins the pool fan-out (`workers`) chosen on the command line
    while single-query fallbacks stay in-process.
    """

    def __init__(self, detector, workers: int) -> None:
        self._detector = detector
        self._workers = workers

    @property
    def vectorized_batch(self) -> bool:
        """Whether pool workers answer chunks array-at-a-time (surfaced
        in the service's ``/stats`` as ``vectorized``)."""
        return bool(getattr(self._detector, "vectorized_batch", False))

    def detect(self, text):
        return self._detector.detect(text)

    def detect_batch(self, texts):
        return self._detector.detect_batch(texts, workers=self._workers)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving import DetectionService, ServingConfig, run_server

    if bool(args.model) == bool(args.snapshot):
        print(
            "error: serve needs exactly one of --model or --snapshot",
            file=sys.stderr,
        )
        return 2
    if args.workers > 1 and not args.snapshot:
        print("error: --workers needs --snapshot", file=sys.stderr)
        return 2
    autoscaled = args.min_replicas is not None or args.max_replicas is not None
    if args.replicas > 1 or autoscaled:
        if not args.snapshot:
            print("error: --replicas needs --snapshot", file=sys.stderr)
            return 2
        if args.workers > 1:
            print(
                "error: --replicas already fans out across processes; "
                "drop --workers",
                file=sys.stderr,
            )
            return 2
        if args.spell:
            from repro.runtime import read_snapshot_header

            if not read_snapshot_header(args.snapshot)["has_speller"]:
                print(
                    "error: snapshot was saved without a speller; rebuild it "
                    "with `repro snapshot --spell`",
                    file=sys.stderr,
                )
                return 2
        return _run_router_cli(args)
    if args.snapshot:
        from repro.runtime import read_snapshot_header
        from repro.runtime.compiled import CompiledDetector

        if args.spell and not read_snapshot_header(args.snapshot)["has_speller"]:
            print(
                "error: snapshot was saved without a speller; rebuild it with "
                "`repro snapshot --spell`",
                file=sys.stderr,
            )
            return 2
        detector = CompiledDetector.load_snapshot(args.snapshot)
    else:
        model = load_model(args.model)
        detector = model.compile(correct_spelling=args.spell)
    config = ServingConfig(
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
    )
    serving_detector = (
        _PoolBackedDetector(detector, args.workers) if args.workers > 1 else detector
    )

    def _ready(port: int) -> None:
        print(f"serving on http://{args.host}:{port}", flush=True)

    try:
        asyncio.run(
            run_server(
                DetectionService(serving_detector, config),
                host=args.host,
                port=args.port,
                ready=_ready,
            )
        )
    finally:
        detector.close()
    print("server drained and stopped", flush=True)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    if args.replicas < 1:
        print("error: need at least one replica", file=sys.stderr)
        return 2
    return _run_router_cli(args)


def _run_router_cli(args: argparse.Namespace) -> int:
    """Shared body of ``repro route`` and ``repro serve --replicas N``."""
    import asyncio

    from repro.errors import ServingError
    from repro.serving.router import (
        AutoscalerConfig,
        Router,
        RouterConfig,
        run_router,
    )

    autoscaler = None
    initial = args.replicas
    if args.min_replicas is not None or args.max_replicas is not None:
        floor = args.min_replicas if args.min_replicas is not None else 1
        ceiling = (
            args.max_replicas
            if args.max_replicas is not None
            else max(floor, args.replicas)
        )
        try:
            autoscaler = AutoscalerConfig(
                min_replicas=floor,
                max_replicas=ceiling,
                interval_s=args.scale_interval,
                up_p95_us=args.scale_up_p95_us,
            )
        except ServingError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        initial = floor
    try:
        config = RouterConfig(
            max_inflight=getattr(args, "max_inflight", 1024),
            health_interval_s=args.health_interval,
            hedge_p99_us=args.hedge_p99_us,
            hedge_rate=args.hedge_rate,
            warmup_keys=args.warmup_keys,
        )
    except ServingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    router = Router(config, autoscaler=autoscaler)
    router.spawn(
        args.snapshot,
        initial,
        extra_args=[
            "--max-batch-size", str(args.max_batch_size),
            "--max-wait-us", str(args.max_wait_us),
            "--max-pending", str(args.max_pending),
            "--cache-size", str(args.cache_size),
        ],
    )

    def _ready(port: int) -> None:
        fleet = (
            f"{initial} replicas "
            f"(autoscaling {autoscaler.min_replicas}-{autoscaler.max_replicas})"
            if autoscaler is not None
            else f"{initial} replicas"
        )
        print(f"routing {fleet} on http://{args.host}:{port}", flush=True)

    asyncio.run(run_router(router, host=args.host, port=args.port, ready=_ready))
    print("router drained and stopped", flush=True)
    return 0


def _cmd_replica(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.compiled import CompiledDetector
    from repro.serving import DetectionService, ServingConfig
    from repro.serving.replica import run_replica

    detector = CompiledDetector.load_snapshot(args.snapshot)
    config = ServingConfig(
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
    )

    def _ready(port: int) -> None:
        print(f"replica listening on {args.host}:{port}", flush=True)

    try:
        asyncio.run(
            run_replica(
                DetectionService(detector, config),
                host=args.host,
                port=args.port,
                replica_id=args.replica_id,
                generation=args.generation,
                ready=_ready,
            )
        )
    finally:
        detector.close()
    print("replica drained and stopped", flush=True)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    log = load_query_log(args.log)
    examples = build_eval_set(log, min_modifiers=1, max_examples=args.max_examples)
    if not examples:
        print("error: log contains no labelled multi-segment queries", file=sys.stderr)
        return 2
    detector = model.detector()
    head = evaluate_head_detection(detector, examples)
    rows = [
        ["examples", len(examples)],
        ["head accuracy", head.head_accuracy],
        ["head precision", head.head_precision],
        ["coverage", head.coverage],
        ["modifier F1", head.modifier_metrics.f1],
    ]
    if model.classifier is not None:
        constraints = evaluate_constraints(model.classifier, examples)
        rows.append(["constraint accuracy", constraints.accuracy])
        rows.append(["constraint F1", constraints.f1])
    print(format_table(["metric", "value"], rows, title=f"evaluation: {args.log}"))
    if args.show_errors > 0:
        from repro.eval.errors import collect_head_errors, format_head_error_report

        errors = collect_head_errors(detector, examples)
        print()
        print(format_head_error_report(errors, max_rows=args.show_errors))
    return 0


def _cmd_patterns(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    rows = [
        [pattern.modifier_concept, pattern.head_concept, weight]
        for pattern, weight in model.patterns.top(args.top)
    ]
    print(
        format_table(
            ["modifier concept", "head concept", "weight"],
            rows,
            title=f"top {len(rows)} of {len(model.patterns)} concept patterns",
        )
    )
    return 0


def _cmd_rewrite(args: argparse.Namespace) -> int:
    from repro.apps.rewriter import QueryRewriter

    model = load_model(args.model)
    rewriter = QueryRewriter(model.detector())
    for query in args.queries:
        ladder = rewriter.relax(query)
        print(query)
        for step, rewrite in enumerate(ladder):
            print(f"  relax[{step}]: {rewrite}")
    return 0


def _cmd_similar(args: argparse.Namespace) -> int:
    from repro.apps.similarity import QueryIntentMatcher

    model = load_model(args.model)
    matcher = QueryIntentMatcher(model.detector())
    comparison = matcher.compare(args.query_a, args.query_b)
    verdict = "same intent" if comparison.score >= 0.75 else "different intent"
    print(f"{args.query_a!r} vs {args.query_b!r}")
    print(f"  head agreement:       {comparison.head_score:.2f}")
    print(f"  constraint agreement: {comparison.constraint_score:.2f}")
    print(f"  preference agreement: {comparison.preference_score:.2f}")
    print(f"  constraint conflicts: {comparison.conflicts}")
    print(f"  similarity:           {comparison.score:.2f}  ({verdict})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
