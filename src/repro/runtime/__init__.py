"""Compiled detection runtime — the fast path beside the reference one.

``HdmModel.compile()`` interns phrases/concepts to integer ids, flattens
the pattern table and typicality distributions into contiguous NumPy
arrays, and returns a :class:`CompiledDetector` producing detections
identical to the reference :class:`~repro.core.detector.HeadModifierDetector`
at a multiple of its throughput.

Batches additionally run **array-at-a-time**: ``detect_batch`` hands the
whole (deduplicated) batch to :class:`VectorizedDetector`
(:mod:`repro.runtime.vectorized`), which segments and head-scores every
query simultaneously over interned token ids — bit-identical to
per-query ``detect`` and several times its throughput at batch ≥ 256.

For serving, the compiled state persists as a binary **snapshot**
(:mod:`repro.runtime.snapshot`): a versioned flat-array file loaded with
``mmap`` so cold-start skips recompilation and concurrent workers share
read-only pages. :class:`DetectorPool` (:mod:`repro.runtime.pool`) keeps
a persistent process pool over a snapshot and serves batches via chunked
dispatch. See ``docs/TOUR.md`` § "Runtime & performance".
"""

from repro.runtime.batch import detect_batch_sharded, shard
from repro.runtime.compiled import (
    DENSE_LIMIT,
    CompiledDetector,
    CompiledSegmenter,
    PatternMatrix,
    PhraseReading,
)
from repro.runtime.intern import UNKNOWN, Interner
from repro.runtime.pool import DetectorPool
from repro.runtime.snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    read_snapshot_header,
    save_snapshot,
)
from repro.runtime.vectorized import SegmentationAutomaton, VectorizedDetector

__all__ = [
    "CompiledDetector",
    "CompiledSegmenter",
    "DetectorPool",
    "PatternMatrix",
    "PhraseReading",
    "SegmentationAutomaton",
    "VectorizedDetector",
    "DENSE_LIMIT",
    "SNAPSHOT_VERSION",
    "Interner",
    "UNKNOWN",
    "detect_batch_sharded",
    "load_snapshot",
    "read_snapshot_header",
    "save_snapshot",
    "shard",
]
