"""Compiled detection runtime — the fast path beside the reference one.

``HdmModel.compile()`` interns phrases/concepts to integer ids, flattens
the pattern table and typicality distributions into contiguous NumPy
arrays, and returns a :class:`CompiledDetector` producing detections
identical to the reference :class:`~repro.core.detector.HeadModifierDetector`
at a multiple of its throughput. See ``docs/TOUR.md`` § "Runtime &
performance".
"""

from repro.runtime.batch import detect_batch_sharded, shard
from repro.runtime.compiled import (
    DENSE_LIMIT,
    CompiledDetector,
    CompiledSegmenter,
    PatternMatrix,
    PhraseReading,
)
from repro.runtime.intern import UNKNOWN, Interner

__all__ = [
    "CompiledDetector",
    "CompiledSegmenter",
    "PatternMatrix",
    "PhraseReading",
    "DENSE_LIMIT",
    "Interner",
    "UNKNOWN",
    "detect_batch_sharded",
    "shard",
]
