"""One-shot parallel batch detection across process shards.

CPython's GIL caps a single detector at one core, so the batch path
offers opt-in process sharding: the detector is pickled **once per
worker** (via the pool initializer, not per task), the deduplicated
texts are split into one contiguous shard per worker, and results are
reassembled in input order. Duplicated texts are detected once, like the
single-process batch path.

This module pays the full pool-startup + model-transfer cost on *every*
call; it remains for arbitrary picklable detectors. For repeated batches
over a compiled model, use the persistent snapshot-backed
:class:`repro.runtime.pool.DetectorPool` (what
``CompiledDetector.detect_batch(workers=...)`` uses), which spawns once
and shares the model read-only between workers.

A worker failure is surfaced as :class:`~repro.errors.ShardError` naming
the offending shard and a preview of its texts; the pool is always shut
down before the error propagates.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.core.detector import Detection
from repro.errors import ShardError

_WORKER_DETECTOR = None


def _init_worker(detector) -> None:
    """Pool initializer: receive the (pickled-once) detector."""
    global _WORKER_DETECTOR
    _WORKER_DETECTOR = detector


def _detect_shard(texts: list[str]) -> list[Detection]:
    """Run one shard inside a worker process.

    Routed through ``detect_batch`` when the detector has one, so
    compiled detectors answer the whole shard through the vectorized
    engine (:class:`repro.runtime.vectorized.VectorizedDetector`)
    instead of a per-text Python loop. Detectors exposing only
    ``detect`` — this module accepts anything picklable — keep the
    per-text loop.
    """
    assert _WORKER_DETECTOR is not None, "worker initialized without a detector"
    batch = getattr(_WORKER_DETECTOR, "detect_batch", None)
    if batch is not None:
        return batch(texts)
    return [_WORKER_DETECTOR.detect(text) for text in texts]


def shard(items: list, num_shards: int) -> list[list]:
    """Split ``items`` into up to ``num_shards`` contiguous, balanced shards."""
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    num_shards = min(num_shards, len(items)) or 1
    base, extra = divmod(len(items), num_shards)
    shards = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


def detect_batch_sharded(detector, texts: list[str], workers: int) -> list[Detection]:
    """Detect ``texts`` across ``workers`` processes, in input order.

    ``detector`` may be the reference or the compiled detector — anything
    picklable with a ``detect`` method.
    """
    if workers <= 1:
        raise ValueError("detect_batch_sharded needs workers > 1")
    unique: list[str] = []
    seen: set[str] = set()
    for text in texts:
        if text not in seen:
            seen.add(text)
            unique.append(text)
    shards = shard(unique, workers)
    by_text: dict[str, Detection] = {}
    index = 0
    executor = ProcessPoolExecutor(
        max_workers=len(shards), initializer=_init_worker, initargs=(detector,)
    )
    try:
        futures = [executor.submit(_detect_shard, s) for s in shards]
        try:
            for index, future in enumerate(futures):
                for text, detection in zip(shards[index], future.result()):
                    by_text[text] = detection
        except Exception as exc:
            for future in futures:
                future.cancel()
            failed = shards[index]
            preview = ", ".join(repr(t) for t in failed[:3])
            if len(failed) > 3:
                preview += ", …"
            raise ShardError(
                f"detection worker failed on shard {index + 1}/{len(shards)} "
                f"({len(failed)} texts: {preview}): {exc}"
            ) from exc
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return [by_text[text] for text in texts]
