"""Parallel batch detection across process shards.

CPython's GIL caps a single detector at one core, so the batch path
offers opt-in process sharding: the detector is pickled **once per
worker** (via the pool initializer, not per task), the deduplicated
texts are split into one contiguous shard per worker, and results are
reassembled in input order. Duplicated texts are detected once, like the
single-process batch path.

Use this for offline sweeps over large logs; for single queries or small
batches the pool startup cost dominates and the in-process path wins.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.core.detector import Detection

_WORKER_DETECTOR = None


def _init_worker(detector) -> None:
    """Pool initializer: receive the (pickled-once) detector."""
    global _WORKER_DETECTOR
    _WORKER_DETECTOR = detector


def _detect_shard(texts: list[str]) -> list[Detection]:
    """Run one shard inside a worker process."""
    assert _WORKER_DETECTOR is not None, "worker initialized without a detector"
    return [_WORKER_DETECTOR.detect(text) for text in texts]


def shard(items: list, num_shards: int) -> list[list]:
    """Split ``items`` into up to ``num_shards`` contiguous, balanced shards."""
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    num_shards = min(num_shards, len(items)) or 1
    base, extra = divmod(len(items), num_shards)
    shards = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


def detect_batch_sharded(detector, texts: list[str], workers: int) -> list[Detection]:
    """Detect ``texts`` across ``workers`` processes, in input order.

    ``detector`` may be the reference or the compiled detector — anything
    picklable with a ``detect`` method.
    """
    if workers <= 1:
        raise ValueError("detect_batch_sharded needs workers > 1")
    unique: list[str] = []
    seen: set[str] = set()
    for text in texts:
        if text not in seen:
            seen.add(text)
            unique.append(text)
    shards = shard(unique, workers)
    with ProcessPoolExecutor(
        max_workers=len(shards), initializer=_init_worker, initargs=(detector,)
    ) as executor:
        shard_results = list(executor.map(_detect_shard, shards))
    by_text = {
        text: detection
        for texts_shard, detections in zip(shards, shard_results)
        for text, detection in zip(texts_shard, detections)
    }
    return [by_text[text] for text in texts]
