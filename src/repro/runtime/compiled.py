"""The compiled detection runtime.

:class:`CompiledDetector` is a drop-in, *behaviour-identical* fast path
beside the readable reference :class:`~repro.core.detector.HeadModifierDetector`.
It inherits the reference control flow (candidate enumeration, connector
heuristic, fallbacks, result assembly) so the two paths cannot drift
structurally, and replaces only the hot inner computations:

- **Interned pattern matrix** — every concept in the
  :class:`~repro.core.concept_patterns.PatternTable` is interned to a
  dense integer id and the table is flattened into a CSR-style
  ``(modifier_id, head_id) → weight`` matrix (dense when small, sorted
  flat keys + binary search when large). A pattern lookup becomes an
  array ``take`` instead of dataclass construction + dict hashing + an
  O(table) ``max_weight`` recomputation.
- **Flattened typicality readings** — conceptualizations of every
  taxonomy instance/concept are precomputed at compile time into
  contiguous id/probability arrays; each phrase owns a slice. Runtime
  phrases outside the taxonomy fall back to the reference
  conceptualizer once and are memoized in a bounded LRU.
- **Interned flat scoring** — ``_pattern_score`` walks the
  ``top_k × top_k`` concept grid over prezipped ``(id, probability)``
  tuples and a flat-key weight map, in the reference iteration order,
  so scores are *bit-identical* to the reference loops. (At top-k ≈ 5
  the grids are so small that NumPy's per-call dispatch costs more than
  the arithmetic; the arrays remain the storage format, and
  :meth:`PatternMatrix.norm` / :meth:`PatternMatrix.raw` expose the
  vectorized gathers for batch tooling.)
- **Compiled segmentation** — the Viterbi segmenter's span scoring is
  precomputed into plain dict lookups keyed by already-normalized
  tokens, eliminating the per-span regex re-normalization that
  dominates reference segmentation cost.
- **Bounded memoization** — phrase readings, context bases, and pair
  affinities are cached in LRUs sized by ``DetectorConfig.cache_size``.

Parity is enforced by ``tests/test_runtime_parity.py``: identical heads,
modifiers, constraints, methods, and scores on the full held-out
evaluation set.
"""

from __future__ import annotations

import math
import os
import re
import tempfile
import weakref

import numpy as np

from repro.core.concept_patterns import PatternTable
from repro.core.conceptualizer import Conceptualizer
from repro.core.detector import Detection, DetectorConfig, HeadModifierDetector
from repro.core.segmentation import (
    CONTENT_KINDS,
    KIND_CONNECTOR,
    KIND_INSTANCE,
    KIND_STOPWORD,
    KIND_SUBJECTIVE,
    KIND_VERB,
    KIND_WORD,
    Segment,
    Segmenter,
)
from repro.mining.pairs import PairCollection
from repro.runtime.intern import UNKNOWN, Interner
from repro.taxonomy.store import ConceptTaxonomy
from repro.text.lexicon import Lexicon, default_lexicon
from repro.text.normalizer import normalize, normalize_term
from repro.utils.lru import LruCache
from repro.utils.mathx import normalize_distribution

#: Above this many (stride × stride) entries the pattern matrix switches
#: from a dense flat array to sorted-key binary search (~16 MB per dense
#: matrix at the limit; raw + normalized are stored separately).
DENSE_LIMIT = 2_000_000

#: Batches smaller than this take the scalar per-query loop instead of
#: the vectorized engine: NumPy's fixed per-batch dispatch cost beats
#: its per-query win below the crossover. Measured on the R11 sweep
#: (1024 held-out queries): vectorized first wins at ~24-32 texts with
#: cold memo caches and ~48 with warm ones, so 32 routes the serving
#: path (cache-missed keys, effectively cold) correctly while staying
#: honest for warm batch tooling. Override per call via
#: ``detect_batch(..., min_vectorized_batch=N)``.
MIN_VECTORIZED_BATCH = 32

#: Characters :func:`repro.text.normalizer.normalize` passes through
#: unchanged (ASCII, so NFKC and lowercasing are identities too).
_CANONICAL_RE = re.compile(r"[a-z0-9$%.' ]*")


def _normalize_fast(text: str) -> str:
    """:func:`normalize`, skipping the regex passes when ``text`` is
    visibly already in normal form (the common case for query traffic)."""
    if (
        _CANONICAL_RE.fullmatch(text)
        and "  " not in text
        and text[:1] != " "
        and text[-1:] != " "
    ):
        return text
    return normalize(text)


class PatternMatrix:
    """The flattened, interned twin of
    :class:`repro.core.concept_patterns.PatternTable`.

    Weights live behind flat integer keys ``modifier_id * stride + head_id``
    where ``stride = len(interner) + 1``; the extra row/column is the
    all-zero slot for concepts outside the table, so unknown concepts
    contribute exactly the 0.0 the reference path's dict ``.get`` returns.

    Two weight views are kept because the reference path uses both:
    ``raw`` (:meth:`repro.core.concept_patterns.PatternTable.weight`,
    context disambiguation) and ``norm`` (``PatternTable.score`` =
    weight / max weight, head scoring).
    """

    def __init__(
        self,
        patterns: PatternTable,
        interner: Interner,
        dense_limit: int = DENSE_LIMIT,
    ) -> None:
        self.stride = len(interner) + 1
        self.zero_id = len(interner)
        max_weight = patterns.max_weight
        keys: list[int] = []
        raw: list[float] = []
        for pattern, weight in patterns.items():
            modifier_id = interner.id_of(pattern.modifier_concept)
            head_id = interner.id_of(pattern.head_concept)
            if modifier_id == UNKNOWN or head_id == UNKNOWN:  # pragma: no cover
                continue  # interner is built from this table; defensive only
            keys.append(modifier_id * self.stride + head_id)
            raw.append(weight)
        key_array = np.asarray(keys, dtype=np.int64)
        raw_array = np.asarray(raw, dtype=np.float64)
        # The same division the reference path performs per lookup, done
        # once per entry here — identical floats either way.
        norm_array = raw_array / max_weight if max_weight > 0 else raw_array.copy()
        self._install(
            key_array,
            raw_array,
            norm_array,
            dense=self.stride * self.stride <= dense_limit,
        )

    @classmethod
    def from_arrays(
        cls,
        keys: np.ndarray,
        raw: np.ndarray,
        norm: np.ndarray,
        stride: int,
        dense: bool,
    ) -> "PatternMatrix":
        """Rebuild a matrix from its flattened arrays (snapshot load path).

        ``keys``/``raw``/``norm`` may be read-only mmap views; they are
        referenced, not copied, except for the dense scatter."""
        matrix = cls.__new__(cls)
        matrix.stride = stride
        matrix.zero_id = stride - 1
        matrix._install(
            np.asarray(keys, dtype=np.int64),
            np.asarray(raw, dtype=np.float64),
            np.asarray(norm, dtype=np.float64),
            dense=dense,
        )
        return matrix

    def _install(
        self,
        key_array: np.ndarray,
        raw_array: np.ndarray,
        norm_array: np.ndarray,
        dense: bool,
    ) -> None:
        # Scalar fast path: one dict probe per (modifier, head) concept
        # pair beats tiny-array gathers in the per-query loops. Absent
        # keys mean weight 0.0, exactly like the reference dict ``.get``.
        self.raw_map: dict[int, float] = dict(
            zip(key_array.tolist(), raw_array.tolist())
        )
        self.norm_map: dict[int, float] = dict(
            zip(key_array.tolist(), norm_array.tolist())
        )
        self.dense = dense
        if self.dense:
            self._raw = np.zeros(self.stride * self.stride, dtype=np.float64)
            self._norm = np.zeros(self.stride * self.stride, dtype=np.float64)
            self._raw[key_array] = raw_array
            self._norm[key_array] = norm_array
        else:
            order = np.argsort(key_array)
            self._keys = key_array[order]
            self._raw = raw_array[order]
            self._norm = norm_array[order]

    def raw(self, keys: np.ndarray) -> np.ndarray:
        """Raw weights behind flat ``keys`` (0.0 where absent)."""
        if self.dense:
            return self._raw[keys]
        return self._sparse_take(self._raw, keys)

    def norm(self, keys: np.ndarray) -> np.ndarray:
        """Max-normalized weights behind flat ``keys`` (0.0 where absent)."""
        if self.dense:
            return self._norm[keys]
        return self._sparse_take(self._norm, keys)

    def _sparse_take(self, values: np.ndarray, keys: np.ndarray) -> np.ndarray:
        if not len(self._keys):
            return np.zeros(len(keys), dtype=np.float64)
        positions = np.searchsorted(self._keys, keys)
        positions[positions >= len(self._keys)] = 0
        found = self._keys[positions] == keys
        return np.where(found, values[positions], 0.0)


class PhraseReading:
    """One phrase's concept readings: strings for display, ids for math.

    The ``concepts`` tuple is exactly what the reference
    :meth:`repro.core.conceptualizer.Conceptualizer.conceptualize`
    returns for the phrase — the parity suite pins the two.
    ``ids``/``probs`` are contiguous array slices (the compiled storage
    format); ``mod_items``/``head_items`` are the same data prezipped
    into flat tuples for the scalar scoring loop — ``mod_items`` carries
    the id pre-multiplied by the matrix stride so a pattern lookup is a
    single integer add.
    """

    __slots__ = ("concepts", "ids", "probs", "mod_items", "head_items")

    def __init__(
        self,
        concepts: tuple[tuple[str, float], ...],
        ids: np.ndarray,
        probs: np.ndarray,
        stride: int,
    ) -> None:
        self.concepts = concepts
        self.ids = ids
        self.probs = probs
        id_list = ids.tolist()
        prob_list = probs.tolist()
        self.mod_items = [
            (id_ * stride, id_, prob) for id_, prob in zip(id_list, prob_list)
        ]
        self.head_items = list(zip(id_list, prob_list))


class _ContextBase:
    """Precompiled ``Conceptualizer.context_base`` output.

    ``items`` preserves the reference dict's insertion order (it seeds
    the no-signal fallback); ``rows`` prezips each sense with its
    stride-scaled concept id for the rescoring loop.
    """

    __slots__ = ("items", "rows")

    def __init__(
        self,
        items: list[tuple[str, float]],
        rows: list[tuple[str, float, int]],
    ) -> None:
        self.items = items
        self.rows = rows


class CompiledSegmenter(Segmenter):
    """Reference Viterbi segmentation over precompiled span scores.

    The DP and tie-breaking are inherited; only ``_span_score`` and
    ``_kind_of`` are replaced with dict lookups precomputed from the
    taxonomy and lexicon. Tokens reaching these hooks are already
    normalized (``Segmenter.segment`` normalizes first), so the only
    residual normalization case is a trailing period — handled on the
    miss path exactly as ``normalize_term`` would.
    """

    def __init__(
        self,
        taxonomy: ConceptTaxonomy | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        super().__init__(taxonomy, lexicon)
        lex = self._lexicon
        # Reference priority is instance > subjective > connector > verb >
        # stopword > unknown; build in reverse so later wins.
        single: dict[str, float] = {}
        kind: dict[str, str] = {}
        for word in lex.stopwords:
            single[word] = 0.5
            kind[word] = KIND_STOPWORD
        for word in lex.intent_verbs:
            single[word] = 0.6
            kind[word] = KIND_VERB
        for word in lex.connectors:
            single[word] = 0.6
            kind[word] = KIND_CONNECTOR
        for word in lex.subjective:
            single[word] = 0.8
            kind[word] = KIND_SUBJECTIVE
        instance_single: dict[str, float] = {}
        multi: dict[str, float] = {}
        if taxonomy is not None:
            for phrase in taxonomy.iter_instances():
                popularity = math.log1p(taxonomy.instance_total(phrase))
                length = len(phrase.split())
                kind[phrase] = KIND_INSTANCE
                if length == 1:
                    score = 1.0 + 0.1 * popularity
                    single[phrase] = score
                    instance_single[phrase] = score
                else:
                    multi[phrase] = length**2 * (1.0 + 0.1 * popularity)
        self._single = single
        self._instance_single = instance_single
        self._multi = multi
        self._kind = kind
        # First tokens of multi-token instances: a span whose first token
        # is not here cannot be in ``multi`` (trailing-period stripping
        # only touches the last token), so the DP skips the join+probe.
        self._multi_first = {phrase.split()[0] for phrase in multi}

    def segment(self, text: str):
        return self.segment_tokens(normalize(text).split())

    def segment_tokens(self, tokens: list[str]) -> list[Segment]:
        """Inlined reference Viterbi over the precompiled score tables.

        ``tokens`` must already be normalized (``normalize(text).split()``
        output — :meth:`segment` does exactly that). Identical DP, scores,
        and tie-breaking (ascending-start iteration, strict improvement)
        to the reference; only the per-span method dispatch and
        re-normalization are gone.
        """
        if not tokens:
            return []
        n = len(tokens)
        single = self._single
        instance_single = self._instance_single
        multi = self._multi
        multi_first = self._multi_first
        max_span = self._max_span
        best: list[tuple[float, int, int] | None] = [None] * (n + 1)
        best[0] = (0.0, 0, -1)
        for end in range(1, n + 1):
            entry_score = entry_segments = entry_start = None
            for start in range(max(0, end - max_span), end - 1):
                if tokens[start] not in multi_first:
                    continue
                prev = best[start]
                if prev is None:
                    continue
                phrase = " ".join(tokens[start:end])
                span_score = multi.get(phrase)
                if span_score is None:
                    if not phrase.endswith("."):
                        continue
                    span_score = multi.get(phrase.rstrip(". "))
                    if span_score is None:
                        continue
                score = prev[0] + span_score
                segments_left = prev[1] - 1
                if (
                    entry_score is None
                    or score > entry_score
                    or (score == entry_score and segments_left > entry_segments)
                ):
                    entry_score, entry_segments, entry_start = (
                        score,
                        segments_left,
                        start,
                    )
            prev = best[end - 1]
            if prev is not None:
                token = tokens[end - 1]
                token_score = single.get(token)
                if token_score is None:
                    token_score = 0.7
                    if token.endswith("."):
                        stripped = instance_single.get(token.rstrip(". "))
                        if stripped is not None:
                            token_score = stripped
                score = prev[0] + token_score
                segments_left = prev[1] - 1
                if (
                    entry_score is None
                    or score > entry_score
                    or (score == entry_score and segments_left > entry_segments)
                ):
                    entry_score, entry_segments, entry_start = (
                        score,
                        segments_left,
                        end - 1,
                    )
            if entry_score is not None:
                best[end] = (entry_score, entry_segments, entry_start)
        # Inlined _backtrack over the precompiled kind table.
        kind_map = self._kind
        segments: list[Segment] = []
        end = n
        while end > 0:
            entry = best[end]
            assert entry is not None  # every prefix is reachable via singles
            start = entry[2]
            phrase = tokens[start] if end - start == 1 else " ".join(tokens[start:end])
            kind = kind_map.get(phrase)
            if kind is None:
                kind = KIND_WORD
                if (
                    phrase.endswith(".")
                    and kind_map.get(phrase.rstrip(". ")) == KIND_INSTANCE
                ):
                    kind = KIND_INSTANCE
            segments.append(Segment(phrase, start, end, kind))
            end = start
        segments.reverse()
        return segments

    def _span_score(self, span: list[str]) -> float | None:
        if len(span) == 1:
            token = span[0]
            score = self._single.get(token)
            if score is not None:
                return score
            if token.endswith("."):
                # normalize_term strips trailing periods before the
                # taxonomy lookup; lexicon words never carry one.
                score = self._instance_single.get(token.rstrip(". "))
                if score is not None:
                    return score
            return 0.7
        phrase = " ".join(span)
        score = self._multi.get(phrase)
        if score is None and phrase.endswith("."):
            score = self._multi.get(phrase.rstrip(". "))
        return score

    def _kind_of(self, phrase: str, num_tokens: int) -> str:
        kind = self._kind.get(phrase)
        if kind is not None:
            return kind
        if phrase.endswith(".") and self._kind.get(phrase.rstrip(". ")) == KIND_INSTANCE:
            return KIND_INSTANCE
        return KIND_WORD


class CompiledDetector(HeadModifierDetector):
    """Behaviour-identical detector running on compiled structures.

    Construct via :meth:`repro.core.model.HdmModel.compile` (preferred)
    or directly with the same arguments as the reference detector.
    ``detect_batch`` additionally accepts ``workers`` to fan shards out
    across processes (see :mod:`repro.runtime.batch`).
    """

    def __init__(
        self,
        patterns: PatternTable,
        conceptualizer: Conceptualizer,
        instance_pairs: PairCollection | None = None,
        constraint_classifier=None,
        segmenter: Segmenter | None = None,
        lexicon: Lexicon | None = None,
        config: DetectorConfig | None = None,
        speller=None,
        dense_limit: int = DENSE_LIMIT,
    ) -> None:
        lexicon = lexicon or default_lexicon()
        if segmenter is None:
            segmenter = CompiledSegmenter(conceptualizer.taxonomy, lexicon)
        super().__init__(
            patterns,
            conceptualizer,
            instance_pairs=instance_pairs,
            constraint_classifier=constraint_classifier,
            segmenter=segmenter,
            lexicon=lexicon,
            config=config,
            speller=speller,
        )
        self._interner = Interner(sorted(patterns.concepts()))
        self._matrix = PatternMatrix(patterns, self._interner, dense_limit)
        self._zero_id = self._matrix.zero_id
        self._concept_ids = self._interner.id_map()
        self._support_map = (
            instance_pairs.support_map() if instance_pairs is not None else None
        )
        cache_size = self._config.cache_size
        self._reading_cache: LruCache[str, PhraseReading] = LruCache(cache_size)
        self._context_cache: LruCache[str, _ContextBase] = LruCache(cache_size)
        self._affinity_cache: LruCache[tuple[str, str], float] = LruCache(cache_size)
        self._modifier_cache: LruCache[
            tuple, tuple[tuple[str, float], ...]
        ] = LruCache(cache_size)
        phrases = self._taxonomy_phrases(conceptualizer.taxonomy)
        self._compiled_readings = self._precompute_readings(phrases)
        self._compiled_context = self._precompute_context_bases(phrases)
        # detect() can hand pre-split tokens straight to the compiled DP
        # only when the segmenter actually is the compiled one.
        self._fast_segmenter = isinstance(self._segmenter, CompiledSegmenter)
        self._automaton = None
        if self._fast_segmenter:
            from repro.runtime.vectorized import SegmentationAutomaton

            self._automaton = SegmentationAutomaton.build(self._segmenter)
        self._engine = None
        self._init_serving_state(snapshot_path=None)

    def _init_serving_state(self, snapshot_path: str | None) -> None:
        """Shared tail of ``__init__`` and :meth:`_restore`: snapshot
        bookkeeping and the (lazily spawned) persistent worker pools."""
        self._snapshot_path = snapshot_path
        self._owns_snapshot = False
        self._pools: dict[int, object] = {}
        # Garbage-collection guards for resources close() also releases:
        # an abandoned detector must not strand live worker processes or
        # its temp snapshot until interpreter exit.
        self._pool_finalizer: weakref.finalize | None = None
        self._snapshot_finalizer: weakref.finalize | None = None

    @classmethod
    def _restore(
        cls,
        *,
        patterns: PatternTable,
        conceptualizer: Conceptualizer,
        instance_pairs: PairCollection | None,
        constraint_classifier,
        lexicon: Lexicon,
        config: DetectorConfig,
        speller,
        interner: Interner,
        matrix: PatternMatrix,
        readings: dict[str, PhraseReading],
        context_bases: dict[str, _ContextBase],
        snapshot_path: str | None,
        automaton=None,
    ) -> "CompiledDetector":
        """Assemble a detector from already-compiled structures
        (:func:`repro.runtime.snapshot.load_snapshot`), skipping the
        whole-taxonomy precomputation that dominates ``__init__``."""
        self = cls.__new__(cls)
        segmenter = CompiledSegmenter(conceptualizer.taxonomy, lexicon)
        HeadModifierDetector.__init__(
            self,
            patterns,
            conceptualizer,
            instance_pairs=instance_pairs,
            constraint_classifier=constraint_classifier,
            segmenter=segmenter,
            lexicon=lexicon,
            config=config,
            speller=speller,
        )
        self._interner = interner
        self._matrix = matrix
        self._zero_id = matrix.zero_id
        self._concept_ids = interner.id_map()
        self._support_map = (
            instance_pairs.support_map() if instance_pairs is not None else None
        )
        cache_size = config.cache_size
        self._reading_cache = LruCache(cache_size)
        self._context_cache = LruCache(cache_size)
        self._affinity_cache = LruCache(cache_size)
        self._modifier_cache = LruCache(cache_size)
        self._compiled_readings = readings
        self._compiled_context = context_bases
        self._fast_segmenter = True
        # Old snapshots carry no automaton sections; such detectors keep
        # working through the per-query segmentation path (detect_batch
        # simply cannot vectorize — see ``vectorized_batch``).
        self._automaton = automaton
        self._engine = None
        self._init_serving_state(snapshot_path=snapshot_path)
        return self

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @staticmethod
    def _taxonomy_phrases(taxonomy: ConceptTaxonomy) -> list[str]:
        """Every distinct instance/concept phrase, instances first."""
        phrases: list[str] = []
        seen: set[str] = set()
        for phrase in taxonomy.iter_instances():
            if phrase not in seen:
                seen.add(phrase)
                phrases.append(phrase)
        for phrase in taxonomy.iter_concepts():
            if phrase not in seen:
                seen.add(phrase)
                phrases.append(phrase)
        return phrases

    def _precompute_readings(self, phrases: list[str]) -> dict[str, PhraseReading]:
        """Flatten every known phrase's typicality readings into slices
        of two contiguous arrays (ids, probabilities)."""
        bulk = self._conceptualizer.conceptualize_many(
            phrases, self._config.top_k_concepts
        )
        if self._config.hierarchy_discount > 0:
            bulk = [
                self._conceptualizer.expand_with_ancestors(
                    readings, self._config.hierarchy_discount
                )
                if readings
                else readings
                for readings in bulk
            ]
        per_phrase = [
            (phrase, tuple(readings)) for phrase, readings in zip(phrases, bulk)
        ]
        flat_ids: list[int] = []
        flat_probs: list[float] = []
        bounds: list[tuple[str, int, int, tuple[tuple[str, float], ...]]] = []
        for phrase, readings in per_phrase:
            start = len(flat_ids)
            for concept, probability in readings:
                flat_ids.append(self._id_or_zero(concept))
                flat_probs.append(probability)
            bounds.append((phrase, start, len(flat_ids), readings))
        ids_array = np.asarray(flat_ids, dtype=np.int64)
        probs_array = np.asarray(flat_probs, dtype=np.float64)
        stride = self._matrix.stride
        compiled: dict[str, PhraseReading] = {}
        for phrase, start, end, readings in bounds:
            compiled[phrase] = PhraseReading(
                readings, ids_array[start:end], probs_array[start:end], stride
            )
        return compiled

    def _precompute_context_bases(self, phrases: list[str]) -> dict[str, _ContextBase]:
        """Precompute the context-disambiguation sense priors for every
        known phrase, so modifier contextualization never re-enters the
        Python conceptualizer for in-taxonomy phrases."""
        return {phrase: self._fresh_context_base(phrase) for phrase in phrases}

    def _fresh_context_base(self, phrase: str) -> _ContextBase:
        """Exactly the reference ``context_base`` computation, interned."""
        base_dict = self._conceptualizer.context_base(
            phrase, self._config.top_k_concepts
        )
        items = list(base_dict.items())
        stride = self._matrix.stride
        rows = [
            (concept, prior, self._id_or_zero(concept) * stride)
            for concept, prior in items
        ]
        return _ContextBase(items, rows)

    def _fresh_reading(self, phrase: str) -> tuple[tuple[str, float], ...]:
        """Exactly the reference ``_concepts_of`` computation, uncached."""
        readings = self._conceptualizer.conceptualize(
            phrase, self._config.top_k_concepts
        )
        if self._config.hierarchy_discount > 0 and readings:
            readings = self._conceptualizer.expand_with_ancestors(
                readings, self._config.hierarchy_discount
            )
        return tuple(readings)

    def _id_or_zero(self, concept: str) -> int:
        id_ = self._interner.id_of(concept)
        return self._zero_id if id_ == UNKNOWN else id_

    # ------------------------------------------------------------------
    # compiled hot paths (overrides)
    # ------------------------------------------------------------------
    def detect(self, text: str) -> Detection:
        """Reference ``detect``, minus one redundant normalization pass.

        The reference normalizes in ``detect`` and again inside
        ``Segmenter.segment``; normalization is idempotent, so handing the
        already-normalized tokens straight to the compiled DP changes
        nothing but the cost. Spelling correction routes through the
        segmenter's own normalization, exactly like the reference.
        """
        query = _normalize_fast(text)
        if self._speller is not None:
            query = self._speller.correct(query)
        if self._fast_segmenter and self._speller is None:
            segments = self._segmenter.segment_tokens(query.split())
        else:
            segments = self._segmenter.segment(query)
        if not segments:
            return Detection(query=query, terms=(), score=0.0, method="empty")
        content = [s for s in segments if s.kind in CONTENT_KINDS]
        if not content:
            return self._all_structural(query, segments)
        if len(content) == 1:
            return self._finish(
                query, segments, head=content[0], score=1.0, method="single"
            )
        head, score, method = self._choose_head(segments, content)
        return self._finish(query, segments, head=head, score=score, method=method)

    def _reading(self, phrase: str) -> PhraseReading:
        # Segment texts are already normalized (modulo a trailing period),
        # so most phrases hit the compiled dict directly — one dict probe,
        # no LRU bookkeeping.
        reading = self._compiled_readings.get(phrase)
        if reading is not None:
            return reading
        reading = self._reading_cache.get(phrase)
        if reading is None:
            reading = self._compiled_readings.get(normalize_term(phrase))
            if reading is None:
                concepts = self._fresh_reading(phrase)
                ids = np.fromiter(
                    (self._id_or_zero(c) for c, _ in concepts),
                    dtype=np.int64,
                    count=len(concepts),
                )
                probs = np.fromiter(
                    (p for _, p in concepts), dtype=np.float64, count=len(concepts)
                )
                reading = PhraseReading(concepts, ids, probs, self._matrix.stride)
            self._reading_cache.put(phrase, reading)
        return reading

    def _concepts_of(self, phrase: str) -> tuple[tuple[str, float], ...]:
        return self._reading(phrase).concepts

    def _pair_affinity(self, modifier: str, head: str) -> float:
        key = (modifier, head)
        affinity = self._affinity_cache.get(key)
        if affinity is None:
            # Inlined reference _pair_affinity/_instance_score over the
            # bound support dict — identical arithmetic, no method hops.
            weight = self._config.instance_weight
            instance = 0.0
            support = self._support_map
            if support is not None:
                forward = support.get(key, 0.0)
                backward = support.get((head, modifier), 0.0)
                denominator = forward + backward + self._config.instance_smoothing
                instance = forward / denominator if denominator > 0 else 0.0
            pattern = self._pattern_score(modifier, head)
            affinity = weight * instance + (1 - weight) * pattern
            self._affinity_cache.put(key, affinity)
        return affinity

    def _pattern_score(self, modifier: str, head: str) -> float:
        mod_items = self._reading(modifier).mod_items
        head_items = self._reading(head).head_items
        norm_weight = self._matrix.norm_map.get
        score = 0.0
        # Reference iteration order and association (m_p·h_p·w, modifier
        # outer); skipping absent keys adds the same +0.0 the reference
        # adds explicitly, so the running sum is bit-identical.
        for m_scaled, m_id, m_prob in mod_items:
            for h_id, h_prob in head_items:
                if m_id == h_id:
                    continue
                weight = norm_weight(m_scaled + h_id)
                if weight is not None:
                    score += m_prob * h_prob * weight
        return score

    def _context_base(self, phrase: str) -> _ContextBase:
        base = self._compiled_context.get(phrase)
        if base is not None:
            return base
        base = self._context_cache.get(phrase)
        if base is None:
            base = self._compiled_context.get(normalize_term(phrase))
            if base is None:
                base = self._fresh_context_base(phrase)
            self._context_cache.put(phrase, base)
        return base

    def _modifier_concepts(
        self, phrase: str, head_concepts: dict[str, float]
    ) -> tuple[tuple[str, float], ...]:
        if not self._config.contextualize_modifiers or not head_concepts:
            return self._concepts_of(phrase)
        cache_key = (phrase, tuple(head_concepts.items()))
        cached = self._modifier_cache.get(cache_key)
        if cached is None:
            cached = self._contextualized_concepts(phrase, head_concepts)
            self._modifier_cache.put(cache_key, cached)
        return cached

    def _contextualized_concepts(
        self, phrase: str, head_concepts: dict[str, float]
    ) -> tuple[tuple[str, float], ...]:
        top_k = self._config.top_k_concepts
        base = self._context_base(phrase)
        if not base.rows:
            return ()
        concept_id = self._concept_ids.get
        zero_id = self._zero_id
        context = [
            (concept_id(concept, zero_id), probability)
            for concept, probability in head_concepts.items()
        ]
        raw_weight = self._matrix.raw_map.get
        epsilon = 1e-6
        rescored: dict[str, float] = {}
        # Reference evidence sum: context terms in head-dict order,
        # ``p_ctx · w`` association; absent keys add the reference's +0.0.
        for concept, prior, scaled in base.rows:
            evidence = 0.0
            for context_id, context_probability in context:
                weight = raw_weight(scaled + context_id)
                if weight is not None:
                    evidence += context_probability * weight
            rescored[concept] = prior * (epsilon + evidence)
        if all(value <= epsilon for value in rescored.values()):
            rescored = dict(base.items)  # no signal: keep the prior
        dist = normalize_distribution(rescored)
        return tuple(sorted(dist.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k])

    def cache_stats(self) -> dict[str, dict]:
        """Hit/miss counters of the runtime memoization caches.

        One entry per LRU (``readings``, ``context``, ``affinity``,
        ``modifier``) with ``size``/``capacity``/``hits``/``misses``/
        ``hit_rate``. Phrases served from the precompiled taxonomy
        tables never touch these caches, so low traffic here is the
        healthy case — the counters matter when live vocabulary falls
        outside the taxonomy (``repro detect --stats`` prints them).
        """
        return {
            "readings": self._reading_cache.stats(),
            "context": self._context_cache.stats(),
            "affinity": self._affinity_cache.stats(),
            "modifier": self._modifier_cache.stats(),
        }

    # ------------------------------------------------------------------
    # snapshots & batch API
    # ------------------------------------------------------------------
    def save_snapshot(self, path, *, lineage: dict | None = None) -> dict:
        """Write this detector as a binary snapshot (see
        :mod:`repro.runtime.snapshot`) and return the written header.
        ``lineage`` is embedded as the optional lineage header key
        (see :mod:`repro.runtime.lineage`)."""
        from repro.runtime.snapshot import save_snapshot

        header = save_snapshot(self, path, lineage=lineage)
        if not self._owns_snapshot:
            self._snapshot_path = str(path)
        return header

    @classmethod
    def load_snapshot(cls, path, verify: bool = True) -> "CompiledDetector":
        """Reconstruct a detector from a snapshot file, sharing the
        mmap'd array payload instead of copying it."""
        from repro.runtime.snapshot import load_snapshot

        return load_snapshot(path, verify=verify)

    @property
    def snapshot_path(self) -> str | None:
        """Path of the snapshot backing this detector's worker pools
        (None until one is saved or :meth:`detect_batch` needs one)."""
        return self._snapshot_path

    @property
    def vectorized_batch(self) -> bool:
        """True when :meth:`detect_batch` runs the array-at-a-time
        :class:`~repro.runtime.vectorized.VectorizedDetector` engine
        (a segmentation automaton is present and no speller is bound)."""
        return self._automaton is not None and self._speller is None

    def _vectorized_engine(self):
        """The lazily built batch engine, or None when unavailable."""
        if not self.vectorized_batch:
            return None
        engine = self._engine
        if engine is None:
            from repro.runtime.vectorized import VectorizedDetector

            engine = self._engine = VectorizedDetector(self)
        return engine

    def detect_batch(
        self,
        texts,
        workers: int | None = None,
        min_vectorized_batch: int | None = None,
    ):
        """Detect over ``texts`` in input order.

        Single-process batches of at least ``min_vectorized_batch``
        texts (default :data:`MIN_VECTORIZED_BATCH`) run through the
        vectorized engine
        (:class:`~repro.runtime.vectorized.VectorizedDetector`) —
        array-at-a-time segmentation and scoring, bit-identical to
        per-query :meth:`detect`. Smaller batches take the scalar loop:
        below the cutoff the engine's fixed NumPy dispatch cost costs
        more than it amortizes (the R11 batch sweep's small-batch
        ``regression`` rows).

        With ``workers`` > 1 the (deduplicated) texts are dispatched in
        small chunks to a *persistent* :class:`~repro.runtime.pool.DetectorPool`
        whose workers map this detector's snapshot read-only instead of
        unpickling private copies. The pool is spawned on first use,
        reused across calls, and shut down by :meth:`close` (or when the
        detector is garbage collected)."""
        texts = list(texts)
        if workers is not None and workers > 1 and len(texts) > 1:
            return self._pool_for(workers).detect_batch(texts)
        cutoff = (
            MIN_VECTORIZED_BATCH
            if min_vectorized_batch is None
            else min_vectorized_batch
        )
        engine = self._vectorized_engine()
        if engine is not None and len(texts) >= max(cutoff, 2):
            return engine.detect_batch(texts)
        return super().detect_batch(texts)

    def _pool_for(self, workers: int):
        pool = self._pools.get(workers)
        if pool is None or pool.closed:
            from repro.runtime.pool import DetectorPool

            pool = DetectorPool(self._ensure_snapshot(), workers)
            self._pools[workers] = pool
            if self._pool_finalizer is None or not self._pool_finalizer.alive:
                # The callback captures the dict, never the detector, so
                # it cannot keep self alive; close() detaches it.
                self._pool_finalizer = weakref.finalize(
                    self, _close_pools, self._pools
                )
        return pool

    def _ensure_snapshot(self) -> str:
        """The snapshot path backing worker pools, written on demand."""
        path = self._snapshot_path
        if path is not None and os.path.exists(path):
            return path
        from repro.runtime.snapshot import save_snapshot

        fd, path = tempfile.mkstemp(prefix="hdm-snapshot-", suffix=".hdms")
        os.close(fd)
        save_snapshot(self, path)
        self._snapshot_path = path
        self._owns_snapshot = True
        # Removes the temp file when the detector is collected without an
        # explicit close(); pools hold only the path.
        self._snapshot_finalizer = weakref.finalize(self, _remove_quietly, path)
        return path

    def close(self) -> None:
        """Shut down any spawned worker pools (blocking, deterministic)
        and delete the detector-owned temp snapshot, if one was written.

        Routed through the same ``weakref.finalize`` guards that fire on
        garbage collection, so explicit close and GC cleanup are one code
        path and each resource is released exactly once."""
        pool_finalizer, self._pool_finalizer = self._pool_finalizer, None
        if pool_finalizer is not None:
            pool_finalizer()  # no-op if already dead
        pools, self._pools = self._pools, {}
        for pool in pools.values():  # pools spawned with no finalizer guard
            pool.close()
        snapshot_finalizer, self._snapshot_finalizer = self._snapshot_finalizer, None
        if self._owns_snapshot:
            if snapshot_finalizer is not None:
                snapshot_finalizer()
            elif self._snapshot_path is not None:
                _remove_quietly(self._snapshot_path)
            self._snapshot_path = None
            self._owns_snapshot = False
        elif snapshot_finalizer is not None:
            snapshot_finalizer.detach()

    def __enter__(self) -> "CompiledDetector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        """Pickle without live pools (process handles don't cross
        processes) and without temp-snapshot ownership (the copy must
        not delete the original's file)."""
        state = self.__dict__.copy()
        state["_pools"] = {}
        state["_owns_snapshot"] = False
        # finalizers are process-local (and unpicklable); the copy gets
        # fresh ones if and when it spawns its own pools/snapshot.
        state["_pool_finalizer"] = None
        state["_snapshot_finalizer"] = None
        # The batch engine is derived state (rebuilt lazily from the
        # automaton on the first detect_batch in the new process).
        state["_engine"] = None
        return state


def _close_pools(pools: dict[int, object]) -> None:
    for pool in pools.values():
        pool.close()
    pools.clear()


def _remove_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
