"""Versioned snapshot lineage: who trained this model, from what.

Each incremental fold emits a *new* snapshot file rather than rewriting
the live one (the serving fleet mmaps the old file until every replica
has swapped). Lineage links those files into a chain the operator can
audit without loading a single model:

- ``generation`` — the trainer's model generation (1 = base build,
  +1 per fold);
- ``parent_crc32`` — the payload CRC of the snapshot this one was
  folded from (``None`` for a base build), so a chain can be verified
  file-by-file;
- ``record_count`` — distinct queries in the accumulated log that
  trained the model.

Lineage is an **optional** header key of the ``HDMSNAP1`` format — the
same compatibility move as the ``vseg_*`` automaton sections: snapshots
written before this module load unchanged (:func:`lineage_of` returns
``None``), and re-saving one through :func:`save_versioned_snapshot`
upgrades it in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ModelError
from repro.runtime.snapshot import read_snapshot_header, save_snapshot

if TYPE_CHECKING:
    from repro.runtime.compiled import CompiledDetector


@dataclass(frozen=True, slots=True)
class SnapshotLineage:
    """The lineage header of one snapshot file."""

    generation: int
    record_count: int
    parent_crc32: int | None = None

    def __post_init__(self) -> None:
        if self.generation < 1:
            raise ModelError("lineage generation must be >= 1")
        if self.record_count < 0:
            raise ModelError("lineage record_count must be >= 0")

    def to_header(self) -> dict[str, int | None]:
        """The JSON-serializable header value."""
        return {
            "generation": self.generation,
            "record_count": self.record_count,
            "parent_crc32": self.parent_crc32,
        }

    @classmethod
    def from_header(cls, header: dict[str, Any]) -> "SnapshotLineage | None":
        """Parse the lineage of a snapshot header; ``None`` when the
        snapshot predates lineage (old files keep loading)."""
        raw = header.get("lineage")
        if raw is None:
            return None
        try:
            parent = raw["parent_crc32"]
            return cls(
                generation=int(raw["generation"]),
                record_count=int(raw["record_count"]),
                parent_crc32=None if parent is None else int(parent),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed lineage header: {raw!r}") from exc


def lineage_of(path: str | Path) -> SnapshotLineage | None:
    """Lineage of a snapshot file, read from the header alone (no model
    load, no payload CRC pass)."""
    return SnapshotLineage.from_header(read_snapshot_header(path))


def model_generation_of(path: str | Path) -> int:
    """The model generation a snapshot carries; 1 for pre-lineage files
    (a snapshot with no history is its own base build)."""
    lineage = lineage_of(path)
    return lineage.generation if lineage is not None else 1


def snapshot_identity(path: str | Path) -> int:
    """The payload CRC32 that identifies a snapshot to its children."""
    return int(read_snapshot_header(path)["payload_crc32"])


def save_versioned_snapshot(
    detector: "CompiledDetector",
    path: str | Path,
    *,
    generation: int,
    record_count: int,
    parent: str | Path | None = None,
) -> dict[str, Any]:
    """Write ``detector`` as a snapshot carrying a lineage header.

    ``parent`` names the snapshot file this model was folded from; its
    payload CRC is embedded so the chain is verifiable. Returns the
    written header.
    """
    lineage = SnapshotLineage(
        generation=generation,
        record_count=record_count,
        parent_crc32=None if parent is None else snapshot_identity(parent),
    )
    return save_snapshot(detector, path, lineage=lineage.to_header())
