"""Persistent sharded serving: a reusable worker pool over a snapshot.

The PR 1 batch path lost to a single core because every ``detect_batch``
call paid the full parallelism tax again: a fresh ``ProcessPoolExecutor``,
the whole compiled model shipped into every worker, and one contiguous
shard per worker so the slowest shard gated the batch.
:class:`DetectorPool` removes all three costs:

- **Persistent workers** — the pool is spawned once (lazily, on the
  first batch) and reused across calls; per-batch overhead drops to task
  dispatch + result pickling.
- **Zero-copy initialization** — workers don't receive a pickled
  detector; their initializer ``load_snapshot``-s the pool's snapshot
  file, so the array payload is ``mmap``-ed read-only and *shared*
  between workers through the page cache (see
  :mod:`repro.runtime.snapshot`).
- **Chunked dispatch** — the deduplicated batch is split into many small
  chunks (default ~4 per worker, capped) instead of one shard per
  worker, so a straggler chunk no longer serializes the whole batch and
  idle workers keep pulling work.

Failure handling is deterministic: a worker exception cancels the
remaining chunks, shuts the executor down, and surfaces as
:class:`~repro.errors.ShardError` naming the offending chunk and a
preview of its texts. A failed pool is left closed; the next
``detect_batch`` through :meth:`repro.runtime.compiled.CompiledDetector.detect_batch`
spawns a fresh one.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor

from repro.core.detector import Detection
from repro.errors import ShardError

#: Target number of chunks handed to each worker per batch. More chunks
#: = finer load balancing; fewer = less dispatch overhead.
CHUNKS_PER_WORKER = 4

#: Upper bound on texts per chunk, so huge batches still interleave.
MAX_CHUNK_SIZE = 64

_WORKER_DETECTOR = None


def _pool_initializer(snapshot_path: str) -> None:
    """Worker initializer: map the shared snapshot read-only.

    CRC verification is skipped — the parent validated the file before
    spawning, and re-hashing it in every worker would fault in all pages.
    """
    global _WORKER_DETECTOR
    from repro.runtime.snapshot import load_snapshot

    _WORKER_DETECTOR = load_snapshot(snapshot_path, verify=False)


def _detect_chunk(texts: list[str]) -> list[Detection]:
    """Detect one chunk inside a worker process.

    Chunks run through the worker detector's ``detect_batch`` so each
    one is answered array-at-a-time by the vectorized engine
    (:class:`repro.runtime.vectorized.VectorizedDetector`) when the
    snapshot carries a segmentation automaton, instead of a per-text
    Python loop.
    """
    detector = _WORKER_DETECTOR
    if detector is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("pool worker was not initialized with a snapshot")
    return detector.detect_batch(texts)


def _preview(texts: list[str], limit: int = 3) -> str:
    shown = ", ".join(repr(text) for text in texts[:limit])
    return shown + (", …" if len(texts) > limit else "")


class DetectorPool:
    """A persistent process pool serving batch detection from a snapshot.

    >>> with DetectorPool("model.hdms", workers=4) as pool:   # doctest: +SKIP
    ...     detections = pool.detect_batch(queries)
    ...     more = pool.detect_batch(more_queries)  # same workers, no respawn

    The pool is a context manager; outside ``with``, call :meth:`close`
    to join the workers deterministically. Workers spawn lazily on the
    first batch (``warm()`` forces it, e.g. before a latency-sensitive
    window).
    """

    def __init__(
        self,
        snapshot_path,
        workers: int,
        chunksize: int | None = None,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        # Fail fast in the parent on a bad path/magic/version, instead of
        # letting every worker die with an opaque BrokenProcessPool.
        from repro.runtime.snapshot import read_snapshot_header

        read_snapshot_header(snapshot_path)
        self._snapshot_path = str(snapshot_path)
        self._workers = workers
        self._chunksize = chunksize
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> str:
        """The snapshot file the workers map."""
        return self._snapshot_path

    @property
    def workers(self) -> int:
        """Configured worker count."""
        return self._workers

    @property
    def closed(self) -> bool:
        """True once the pool has been shut down (pools don't reopen)."""
        return self._closed

    def warm(self) -> None:
        """Spawn and initialize all workers now (otherwise lazy)."""
        executor = self._ensure_executor()
        # One empty chunk per worker forces the executor to spin every
        # process up; each initializer maps the snapshot.
        for future in [
            executor.submit(_detect_chunk, []) for _ in range(self._workers)
        ]:
            future.result()

    def close(self) -> None:
        """Shut the pool down, joining workers. Idempotent."""
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def swap_snapshot(self, snapshot_path) -> None:
        """Hot-swap the pool onto the snapshot at ``snapshot_path``.

        The handover loses no work: a ``detect_batch`` already running
        holds its own executor reference, so its chunks finish on the
        *old* workers (their old-snapshot mmaps stay valid until they
        exit); batches submitted after this call lazily spawn fresh
        workers whose initializer maps the new file. The old executor is
        released without blocking (``shutdown(wait=False)`` — submitted
        chunks still complete), mirroring
        :meth:`~repro.serving.service.DetectionService.swap_snapshot`
        one layer down. A bad file is refused up front and leaves the
        pool serving the old snapshot.
        """
        if self._closed:
            raise ShardError("detector pool is closed")
        from repro.runtime.snapshot import read_snapshot_header

        read_snapshot_header(snapshot_path)
        executor, self._executor = self._executor, None
        self._snapshot_path = str(snapshot_path)
        if executor is not None:
            executor.shutdown(wait=False)

    def __enter__(self) -> "DetectorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ShardError("detector pool is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=self._mp_context,
                initializer=_pool_initializer,
                initargs=(self._snapshot_path,),
            )
        return self._executor

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def detect_batch(self, texts) -> list[Detection]:
        """Detect ``texts`` across the pool, in input order.

        Duplicates are detected once and share the resulting
        :class:`~repro.core.detector.Detection`, matching the
        single-process batch path.
        """
        texts = list(texts)
        if not texts:
            return []
        unique: list[str] = []
        seen: set[str] = set()
        for text in texts:
            if text not in seen:
                seen.add(text)
                unique.append(text)
        chunks = self._chunk(unique)
        executor = self._ensure_executor()
        futures = [executor.submit(_detect_chunk, chunk) for chunk in chunks]
        by_text: dict[str, Detection] = {}
        index = 0
        try:
            for index, future in enumerate(futures):
                for text, detection in zip(chunks[index], future.result()):
                    by_text[text] = detection
        except Exception as exc:
            for future in futures:
                future.cancel()
            self.close()
            chunk = chunks[index]
            raise ShardError(
                f"detection worker failed on chunk {index + 1}/{len(chunks)} "
                f"({len(chunk)} texts: {_preview(chunk)}): {exc}"
            ) from exc
        return [by_text[text] for text in texts]

    def _chunk(self, items: list[str]) -> list[list[str]]:
        size = self._chunksize
        if size is None:
            target = self._workers * CHUNKS_PER_WORKER
            size = max(1, min(MAX_CHUNK_SIZE, math.ceil(len(items) / target)))
        return [items[i : i + size] for i in range(0, len(items), size)]
