"""Zero-copy binary snapshots of the compiled detection runtime.

``CompiledDetector`` construction front-loads all the expensive work —
conceptualizing every taxonomy phrase, flattening the pattern table,
prezipping reading tuples — which makes the detector itself expensive to
ship across process boundaries: pickling it serializes thousands of
small Python objects, and every worker process pays the full
deserialization again. The PR 1 sharded batch path lost to a single
core largely for this reason.

A snapshot is the compiled state laid out flat on disk::

    ┌────────────────────────────────────────────────────────────┐
    │ prelude: magic "HDMSNAP1" · u32 version · u32 header bytes │
    │ header: JSON (config, counts, flags, section table, crc32) │
    │ …padding to 64-byte alignment…                             │
    │ sections: raw little-endian arrays + utf-8 string blobs    │
    └────────────────────────────────────────────────────────────┘

Every numeric structure (interner tables, the stride-indexed pattern
weight matrix, precomputed typicality readings, context-disambiguation
priors, instance-pair supports, taxonomy edges, and the flat-array
segmentation automaton behind the vectorized batch path) is one
contiguous ``int64``/``float64`` section; strings live once in a shared
vocabulary blob and are referenced by id. The ``vseg_*`` automaton
sections are optional: snapshots written before they existed still load
(``has_automaton`` absent from the header), falling back to per-query
segmentation. :func:`load_snapshot` maps the file with
``mmap`` and builds NumPy views directly over the mapping
(``np.frombuffer``), so the array payload is never copied — worker
processes that load the same snapshot share the read-only page-cache
pages instead of each unpickling a private replica, and cold-start cost
is decoding ~a thousand vocabulary strings plus dict construction.

Two side tables have no natural flat layout and are stored as blobs: the
lexicon/classifier JSON, and — when the classifier has live
:class:`~repro.querylog.stats.LogStatistics` bound — one pickled
``stats_pickle`` section (cold classifier state, covered by the payload
CRC like everything else). Because of that section, snapshots carry a
pickle and should only be loaded from trusted sources, the same trust
model as a pickled model file.

Floats round-trip bit-exactly (raw IEEE-754 bytes), so a snapshot-loaded
detector is *bit-identical* to the detector it was saved from — enforced
by ``tests/test_runtime_parity.py`` over the held-out evaluation set.

Format stability: the prelude magic and version gate the whole file; a
wrong magic, unsupported version, truncated payload, or CRC mismatch
raises :class:`~repro.errors.ModelError` with a message naming the file.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import struct
import tempfile
import zlib
from pathlib import Path

import numpy as np

from repro.core.concept_patterns import ConceptPattern, PatternTable
from repro.core.conceptualizer import Conceptualizer
from repro.core.constraints import ConstraintClassifier, LogisticRegression
from repro.core.detector import DetectorConfig
from repro.core.features import ConstraintFeatureExtractor, DroppabilityTables
from repro.errors import ModelError
from repro.mining.pairs import PairCollection
from repro.taxonomy.store import ConceptTaxonomy
from repro.text.lexicon import Lexicon

#: File magic: "HDM SNAPshot", format generation 1 baked into the bytes.
MAGIC = b"HDMSNAP1"

#: Current snapshot format version. Bump on any layout change.
SNAPSHOT_VERSION = 1

#: ``magic (8s) · version (u32) · header length (u32)``, little-endian.
_PRELUDE = struct.Struct("<8sII")

#: Section payloads start on this alignment so mmap'd array views are
#: safely aligned for any dtype we store.
_ALIGN = 64

_I64 = np.dtype("<i8")
_F64 = np.dtype("<f8")

#: Fields of :class:`Lexicon` persisted in the lexicon section.
_LEXICON_FIELDS = (
    "stopwords",
    "connectors",
    "subjective",
    "intent_verbs",
    "adjectives",
    "determiners",
    "prepositions",
    "conjunctions",
    "verbs",
)


class _SectionWriter:
    """Accumulates named sections and their relative offsets."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.table: dict[str, dict] = {}
        self._cursor = 0

    def add_bytes(self, name: str, payload: bytes) -> None:
        pad = (-self._cursor) % _ALIGN
        if pad:
            self.chunks.append(b"\x00" * pad)
            self._cursor += pad
        self.table[name] = {"offset": self._cursor, "bytes": len(payload)}
        self.chunks.append(payload)
        self._cursor += len(payload)

    def add_array(self, name: str, values, dtype: np.dtype) -> None:
        array = np.ascontiguousarray(np.asarray(values, dtype=dtype))
        self.add_bytes(name, array.tobytes())
        self.table[name]["dtype"] = dtype.str
        self.table[name]["count"] = int(array.size)

    def payload(self) -> bytes:
        return b"".join(self.chunks)


class _Vocab:
    """String → dense id for the snapshot's shared string pool."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self.strings: list[str] = []

    def id_of(self, string: str) -> int:
        existing = self._ids.get(string)
        if existing is not None:
            return existing
        assigned = len(self.strings)
        self._ids[string] = assigned
        self.strings.append(string)
        return assigned

    def ids_of(self, strings) -> list[int]:
        return [self.id_of(s) for s in strings]


def save_snapshot(detector, path: str | Path, *, lineage: dict | None = None) -> dict:
    """Serialize a :class:`~repro.runtime.compiled.CompiledDetector` to
    ``path`` and return the written header (for logging/inspection).

    ``lineage``, when given, is embedded verbatim as the optional
    ``lineage`` header key (see :mod:`repro.runtime.lineage`); readers
    that predate it ignore unknown header keys, so lineage-bearing
    snapshots stay loadable everywhere.

    The write is atomic (temp file + rename). Raises
    :class:`~repro.errors.ModelError` for detectors the format cannot
    represent (currently: a custom, non-compiled segmenter).

    Unlike ``save_model``, a classifier with live
    :class:`~repro.querylog.stats.LogStatistics` bound *is* representable:
    the statistics ride along as one pickled side-section so the loaded
    detector is bit-identical to this one, constraint features included.
    """
    from repro.runtime.compiled import CompiledSegmenter

    if not isinstance(detector._segmenter, CompiledSegmenter):
        raise ModelError(
            "snapshot requires the compiled segmenter; detectors built with a "
            "custom segmenter cannot be snapshotted"
        )
    classifier = detector._classifier
    stats = classifier.extractor._stats if classifier is not None else None

    vocab = _Vocab()
    writer = _SectionWriter()
    conceptualizer = detector._conceptualizer
    taxonomy = conceptualizer.taxonomy
    matrix = detector._matrix
    interner = detector._interner

    # --- interner + pattern matrix -----------------------------------
    writer.add_array("pattern_concepts", vocab.ids_of(interner), _I64)
    keys = sorted(matrix.raw_map)
    writer.add_array("pattern_keys", keys, _I64)
    writer.add_array("pattern_raw", [matrix.raw_map[k] for k in keys], _F64)
    writer.add_array("pattern_norm", [matrix.norm_map[k] for k in keys], _F64)

    # --- precomputed readings + context priors ------------------------
    readings = detector._compiled_readings
    contexts = detector._compiled_context
    phrases = list(readings)
    if list(contexts) != phrases:  # pragma: no cover - compile() invariant
        raise ModelError("snapshot: reading/context phrase tables disagree")
    writer.add_array("phrases", vocab.ids_of(phrases), _I64)

    reading_offsets = [0]
    reading_concepts: list[int] = []
    reading_ids: list[int] = []
    reading_probs: list[float] = []
    context_offsets = [0]
    context_concepts: list[int] = []
    context_scaled: list[int] = []
    context_priors: list[float] = []
    for phrase in phrases:
        reading = readings[phrase]
        for (concept, probability), id_ in zip(reading.concepts, reading.ids.tolist()):
            reading_concepts.append(vocab.id_of(concept))
            reading_ids.append(id_)
            reading_probs.append(probability)
        reading_offsets.append(len(reading_concepts))
        for (concept, prior), (_, _, scaled) in zip(
            contexts[phrase].items, contexts[phrase].rows
        ):
            context_concepts.append(vocab.id_of(concept))
            context_scaled.append(scaled)
            context_priors.append(prior)
        context_offsets.append(len(context_concepts))
    writer.add_array("reading_offsets", reading_offsets, _I64)
    writer.add_array("reading_concepts", reading_concepts, _I64)
    writer.add_array("reading_ids", reading_ids, _I64)
    writer.add_array("reading_probs", reading_probs, _F64)
    writer.add_array("context_offsets", context_offsets, _I64)
    writer.add_array("context_concepts", context_concepts, _I64)
    writer.add_array("context_scaled", context_scaled, _I64)
    writer.add_array("context_priors", context_priors, _F64)

    # --- instance-pair supports ---------------------------------------
    support = detector._support_map or {}
    writer.add_array(
        "support_modifiers", [vocab.id_of(m) for m, _ in support], _I64
    )
    writer.add_array("support_heads", [vocab.id_of(h) for _, h in support], _I64)
    writer.add_array("support_values", list(support.values()), _F64)

    # --- taxonomy edges (fallback conceptualization + segmenter) ------
    edge_instances: list[int] = []
    edge_concepts: list[int] = []
    edge_counts: list[float] = []
    for instance, concept, count in taxonomy.iter_edges():
        edge_instances.append(vocab.id_of(instance))
        edge_concepts.append(vocab.id_of(concept))
        edge_counts.append(count)
    writer.add_array("edge_instances", edge_instances, _I64)
    writer.add_array("edge_concepts", edge_concepts, _I64)
    writer.add_array("edge_counts", edge_counts, _F64)
    domains = [
        (vocab.id_of(c), vocab.id_of(taxonomy.domain_of(c)))
        for c in taxonomy.iter_concepts()
        if taxonomy.domain_of(c)
    ]
    writer.add_array("domain_concepts", [c for c, _ in domains], _I64)
    writer.add_array("domain_labels", [d for _, d in domains], _I64)

    # --- segmentation automaton (vectorized batch path) ----------------
    # Optional sections: old snapshots predate them and keep loading;
    # the reader falls back to per-query segmentation when absent. The
    # trailing OOV slot is derived state and is not stored.
    automaton = detector._automaton
    if automaton is None:
        from repro.runtime.vectorized import SegmentationAutomaton

        # Detectors restored from pre-automaton snapshots rebuild theirs
        # here, so a re-save upgrades the file in place.
        automaton = SegmentationAutomaton.build(detector._segmenter)
    writer.add_array("vseg_tokens", vocab.ids_of(automaton.tokens), _I64)
    writer.add_array("vseg_token_scores", automaton.token_scores[:-1], _F64)
    writer.add_array("vseg_token_kinds", automaton.token_kinds[:-1], _I64)
    writer.add_array("vseg_edge_keys", automaton.edge_keys, _I64)
    writer.add_array("vseg_edge_targets", automaton.edge_targets, _I64)
    writer.add_array("vseg_terminal", automaton.terminal, _F64)

    # --- side tables as JSON blobs ------------------------------------
    lexicon = detector._lexicon
    writer.add_bytes(
        "lexicon_json",
        json.dumps(
            {name: sorted(getattr(lexicon, name)) for name in _LEXICON_FIELDS}
        ).encode("utf-8"),
    )
    if classifier is not None:
        droppability = classifier.extractor.droppability
        writer.add_bytes(
            "classifier_json",
            json.dumps(
                {
                    "model": classifier.model.to_dict(),
                    "threshold": classifier.threshold,
                    "concept_droppability": droppability.concept,
                    "instance_droppability": droppability.instance,
                }
            ).encode("utf-8"),
        )
    if stats is not None:
        # The one non-flat section: LogStatistics wraps the full query
        # log (click indexes over arbitrary query strings), which has no
        # fixed-width layout. It is cold classifier state, not hot-path
        # arrays, so a pickle blob under the payload CRC is acceptable.
        writer.add_bytes("stats_pickle", pickle.dumps(stats, protocol=4))

    # --- vocabulary blob (added last: every section interned into it) -
    blob = "".join(vocab.strings).encode("utf-8")
    offsets = [0]
    for string in vocab.strings:
        offsets.append(offsets[-1] + len(string.encode("utf-8")))
    writer.add_array("vocab_offsets", offsets, _I64)
    writer.add_bytes("vocab_blob", blob)

    payload = writer.payload()
    config = detector._config
    header = {
        "format": "hdm-compiled-snapshot",
        "version": SNAPSHOT_VERSION,
        "stride": matrix.stride,
        "dense": matrix.dense,
        "has_pairs": detector._support_map is not None,
        "has_classifier": classifier is not None,
        "has_stats": stats is not None,
        "has_speller": detector._speller is not None,
        "has_automaton": True,
        "vseg_max_span": automaton.max_span,
        "conceptualizer": {
            "smoothing": conceptualizer._scorer._smoothing,
            "max_backoff_tokens": conceptualizer._max_backoff_tokens,
            "self_concept_weight": conceptualizer._self_concept_weight,
        },
        "detector_config": {
            "top_k_concepts": config.top_k_concepts,
            "instance_weight": config.instance_weight,
            "instance_smoothing": config.instance_smoothing,
            "min_evidence": config.min_evidence,
            "use_connector_heuristic": config.use_connector_heuristic,
            "contextualize_modifiers": config.contextualize_modifiers,
            "hierarchy_discount": config.hierarchy_discount,
            "cache_size": config.cache_size,
        },
        "counts": {
            "vocab": len(vocab.strings),
            "patterns": len(keys),
            "phrases": len(phrases),
            "support": len(support),
            "edges": len(edge_counts),
            "vseg_tokens": len(automaton.tokens),
            "vseg_states": int(len(automaton.terminal)),
        },
        "payload_bytes": len(payload),
        "payload_crc32": zlib.crc32(payload),
        "sections": writer.table,
    }
    if lineage is not None:
        header["lineage"] = dict(lineage)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    prelude = _PRELUDE.pack(MAGIC, SNAPSHOT_VERSION, len(header_bytes))
    pad = (-(len(prelude) + len(header_bytes))) % _ALIGN

    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent or Path("."), suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as out:
            out.write(prelude)
            out.write(header_bytes)
            out.write(b"\x00" * pad)
            out.write(payload)
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    return header


def read_snapshot_header(path: str | Path) -> dict:
    """Validate the prelude and return the parsed JSON header.

    Raises :class:`~repro.errors.ModelError` on anything that is not a
    well-formed snapshot of a supported version.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            prelude = handle.read(_PRELUDE.size)
            if len(prelude) < _PRELUDE.size:
                raise ModelError(f"{path}: truncated snapshot (no prelude)")
            magic, version, header_len = _PRELUDE.unpack(prelude)
            if magic != MAGIC:
                raise ModelError(f"{path}: not a detection snapshot (bad magic)")
            if version != SNAPSHOT_VERSION:
                raise ModelError(
                    f"{path}: unsupported snapshot version {version} "
                    f"(this build reads version {SNAPSHOT_VERSION})"
                )
            header_bytes = handle.read(header_len)
    except OSError as exc:
        raise ModelError(f"{path}: unreadable snapshot ({exc})") from exc
    if len(header_bytes) < header_len:
        raise ModelError(f"{path}: truncated snapshot (incomplete header)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ModelError(f"{path}: corrupted snapshot header ({exc})") from exc
    header["_payload_start"] = (
        _PRELUDE.size + header_len + ((-(_PRELUDE.size + header_len)) % _ALIGN)
    )
    return header


def load_snapshot(path: str | Path, verify: bool = True):
    """Reconstruct a :class:`~repro.runtime.compiled.CompiledDetector`
    from a file written by :func:`save_snapshot`.

    The array payload is ``mmap``-ed read-only and exposed as NumPy views
    without copying; concurrent loaders of the same file share pages.
    ``verify=False`` skips the payload CRC check (the page-by-page read
    it forces) — used by pool workers after the parent already verified.
    """
    from repro.runtime.compiled import CompiledDetector

    path = Path(path)
    header = read_snapshot_header(path)
    payload_start = header.pop("_payload_start")
    expected = payload_start + header["payload_bytes"]
    actual = path.stat().st_size
    if actual < expected:
        raise ModelError(
            f"{path}: truncated snapshot ({actual} bytes, expected {expected})"
        )

    with open(path, "rb") as handle:
        # repro: noqa[REP004] -- the mapping must outlive this function: the
        # numpy views built below alias its pages, so it is released by GC
        # when the last view dies, never by an eager close here.
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    if verify:
        crc = zlib.crc32(
            memoryview(mapped)[payload_start : payload_start + header["payload_bytes"]]
        )
        if crc != header["payload_crc32"]:
            raise ModelError(f"{path}: corrupted snapshot (payload CRC mismatch)")

    sections = header["sections"]

    def array(name: str) -> np.ndarray:
        entry = sections[name]
        return np.frombuffer(
            mapped,
            dtype=np.dtype(entry["dtype"]),
            count=entry["count"],
            offset=payload_start + entry["offset"],
        )

    def raw_bytes(name: str) -> bytes:
        entry = sections[name]
        start = payload_start + entry["offset"]
        return bytes(memoryview(mapped)[start : start + entry["bytes"]])

    # --- vocabulary ----------------------------------------------------
    blob = raw_bytes("vocab_blob")
    offsets = array("vocab_offsets").tolist()
    try:
        vocab = [
            blob[offsets[i] : offsets[i + 1]].decode("utf-8")
            for i in range(len(offsets) - 1)
        ]
    except UnicodeDecodeError as exc:
        raise ModelError(f"{path}: corrupted snapshot vocabulary ({exc})") from exc

    # --- taxonomy + conceptualizer ------------------------------------
    domain_of = dict(
        zip(array("domain_concepts").tolist(), array("domain_labels").tolist())
    )
    taxonomy = ConceptTaxonomy()
    for instance, concept, count in zip(
        array("edge_instances").tolist(),
        array("edge_concepts").tolist(),
        array("edge_counts").tolist(),
    ):
        label = domain_of.get(concept)
        taxonomy.add_edge(
            vocab[instance],
            vocab[concept],
            count,
            domain=vocab[label] if label is not None else None,
        )
    params = header["conceptualizer"]
    conceptualizer = Conceptualizer(
        taxonomy,
        smoothing=params["smoothing"],
        max_backoff_tokens=params["max_backoff_tokens"],
        self_concept_weight=params["self_concept_weight"],
    )

    # --- interner + pattern matrix + pattern table --------------------
    from repro.runtime.compiled import PatternMatrix
    from repro.runtime.intern import Interner

    interner = Interner(vocab[i] for i in array("pattern_concepts").tolist())
    stride = header["stride"]
    matrix = PatternMatrix.from_arrays(
        array("pattern_keys"),
        array("pattern_raw"),
        array("pattern_norm"),
        stride=stride,
        dense=header["dense"],
    )
    patterns = PatternTable(
        {
            ConceptPattern(interner.string_of(key // stride), interner.string_of(key % stride)): weight
            for key, weight in matrix.raw_map.items()
        }
    )

    # --- readings + context bases -------------------------------------
    from repro.runtime.compiled import PhraseReading, _ContextBase

    phrases = [vocab[i] for i in array("phrases").tolist()]
    reading_offsets = array("reading_offsets").tolist()
    reading_concepts = array("reading_concepts").tolist()
    reading_ids = array("reading_ids")
    reading_probs = array("reading_probs")
    prob_list = reading_probs.tolist()
    context_offsets = array("context_offsets").tolist()
    context_concepts = array("context_concepts").tolist()
    context_scaled = array("context_scaled").tolist()
    context_priors = array("context_priors").tolist()

    readings: dict[str, PhraseReading] = {}
    contexts: dict[str, _ContextBase] = {}
    for index, phrase in enumerate(phrases):
        start, end = reading_offsets[index], reading_offsets[index + 1]
        concepts = tuple(
            (vocab[reading_concepts[i]], prob_list[i]) for i in range(start, end)
        )
        readings[phrase] = PhraseReading(
            concepts, reading_ids[start:end], reading_probs[start:end], stride
        )
        start, end = context_offsets[index], context_offsets[index + 1]
        items = [
            (vocab[context_concepts[i]], context_priors[i]) for i in range(start, end)
        ]
        rows = [
            (concept, prior, context_scaled[i])
            for (concept, prior), i in zip(items, range(start, end))
        ]
        contexts[phrase] = _ContextBase(items, rows)

    # --- supports, lexicon, classifier, speller -----------------------
    pairs = None
    if header["has_pairs"]:
        mods = array("support_modifiers").tolist()
        heads = array("support_heads").tolist()
        values = array("support_values").tolist()
        pairs = PairCollection.from_support(
            {(vocab[m], vocab[h]): v for m, h, v in zip(mods, heads, values)}
        )

    lexicon_data = json.loads(raw_bytes("lexicon_json").decode("utf-8"))
    lexicon = Lexicon(
        **{name: frozenset(lexicon_data[name]) for name in _LEXICON_FIELDS}
    )

    classifier = None
    if header["has_classifier"]:
        payload = json.loads(raw_bytes("classifier_json").decode("utf-8"))
        stats = (
            pickle.loads(raw_bytes("stats_pickle"))
            if header.get("has_stats")
            else None
        )
        extractor = ConstraintFeatureExtractor(
            conceptualizer,
            stats=stats,
            droppability=DroppabilityTables(
                concept=payload["concept_droppability"],
                instance=payload["instance_droppability"],
            ),
            lexicon=lexicon,
        )
        classifier = ConstraintClassifier(
            extractor,
            LogisticRegression.from_dict(payload["model"]),
            threshold=payload["threshold"],
        )

    speller = None
    if header["has_speller"]:
        from repro.text.spelling import SpellingNormalizer

        speller = SpellingNormalizer.from_taxonomy(taxonomy)

    # --- segmentation automaton (absent in pre-automaton snapshots) ---
    automaton = None
    if header.get("has_automaton"):
        from repro.runtime.vectorized import SegmentationAutomaton

        automaton = SegmentationAutomaton(
            [vocab[i] for i in array("vseg_tokens").tolist()],
            array("vseg_token_scores"),
            array("vseg_token_kinds"),
            array("vseg_edge_keys"),
            array("vseg_edge_targets"),
            array("vseg_terminal"),
            header["vseg_max_span"],
        )

    config = DetectorConfig(**header["detector_config"])
    return CompiledDetector._restore(
        patterns=patterns,
        conceptualizer=conceptualizer,
        instance_pairs=pairs,
        constraint_classifier=classifier,
        lexicon=lexicon,
        config=config,
        speller=speller,
        interner=interner,
        matrix=matrix,
        readings=readings,
        context_bases=contexts,
        snapshot_path=str(path),
        automaton=automaton,
    )
