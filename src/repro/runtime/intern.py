"""String interning for the compiled detection runtime.

The reference path hashes strings (and builds :class:`ConceptPattern`
dataclasses) on every lookup. The compiled path interns each distinct
phrase/concept to a dense integer id once, at compile time, so the hot
path works on int arrays: pattern weights become a flattened matrix
indexed by ``modifier_id * stride + head_id``, and per-phrase concept
readings become contiguous id/probability array slices.

Ids are dense and start at 0; ``UNKNOWN`` (-1 from :meth:`Interner.id_of`)
marks strings never interned. Callers map unknowns to a reserved
all-zero row/column so unknown concepts contribute exactly 0 evidence —
the same result the reference path gets from its dict ``.get(…, 0.0)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

#: Id returned for strings that were never interned.
UNKNOWN = -1


class Interner:
    """A bidirectional string ↔ dense-int mapping.

    >>> interner = Interner(["smartphone", "case"])
    >>> interner.id_of("case")
    1
    >>> interner.string_of(0)
    'smartphone'
    >>> interner.id_of("never seen")
    -1
    """

    __slots__ = ("_ids", "_strings")

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []
        for string in strings:
            self.intern(string)

    def intern(self, string: str) -> int:
        """Return the id of ``string``, assigning the next id if new."""
        existing = self._ids.get(string)
        if existing is not None:
            return existing
        assigned = len(self._strings)
        self._ids[string] = assigned
        self._strings.append(string)
        return assigned

    def id_of(self, string: str) -> int:
        """The id of ``string``, or :data:`UNKNOWN` when never interned."""
        return self._ids.get(string, UNKNOWN)

    def string_of(self, id_: int) -> str:
        """The string behind an id (raises ``IndexError`` for bad ids)."""
        if id_ < 0:
            raise IndexError(f"no string behind id {id_}")
        return self._strings[id_]

    def id_map(self) -> dict[str, int]:
        """The underlying ``string → id`` dict (treat as read-only)."""
        return self._ids

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, string: str) -> bool:
        return string in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._strings)
