"""Array-at-a-time batch detection over the interned vocabulary.

:class:`VectorizedDetector` runs whole batches through segmentation and
head scoring as NumPy array programs, where
:meth:`repro.runtime.compiled.CompiledDetector.detect` walks one query
at a time in Python. Both produce *bit-identical* :class:`Detection`
objects; the per-query compiled path stays in place as the parity twin
the property suite replays every batch against.

The pipeline, per batch of deduplicated queries:

1. **Token interning** — every token becomes a dense integer id from the
   :class:`SegmentationAutomaton`'s vocabulary; out-of-vocabulary tokens
   share one reserved id whose score/kind rows encode the reference
   unknown-token behaviour (score 0.7, kind ``word``).
2. **Batched span matching** — multi-token taxonomy instances live in a
   token-id trie stored as flat sorted ``state·V + token`` edge arrays;
   one :func:`numpy.searchsorted` pass per depth finds every candidate
   span of every query simultaneously.
3. **Lockstep Viterbi** — the segmentation DP advances over all queries
   at once, one token position per step, replicating the reference
   tie-break (strict score improvement, then fewer segments) with
   vectorized compares, so padded positions can never leak into a real
   query's backtrack.
4. **Gathered scoring** — all candidate ``(modifier, head)`` pairs of
   the batch are laid out in reference order and scored with ``take``
   gathers against the :class:`~repro.runtime.compiled.PatternMatrix`
   plus one ``bincount`` per reduction. ``np.bincount`` accumulates
   strictly in input order, so each pair's ``Σ p_m·p_h·w`` and each
   candidate's affinity total add up in exactly the reference order —
   float-for-float the same partial sums, hence bit-identical scores.
5. **Argmax selection** — per-query argmax over ``-inf``-padded
   candidate rows; NumPy's first-wins argmax equals the reference
   stable sort by ``(-score, start)`` because candidates are emitted in
   ascending start order.

Queries the array program cannot reproduce exactly (a ``.`` anywhere —
trailing-period stripping can merge spans — or extreme token counts)
fall back to the scalar compiled path, detection by detection, keeping
the bit-identity guarantee unconditional.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import DetectedTerm, Detection, TermRole
from repro.core.segmentation import (
    KIND_CONNECTOR,
    KIND_INSTANCE,
    KIND_STOPWORD,
    KIND_SUBJECTIVE,
    KIND_VERB,
    KIND_WORD,
)
from repro.errors import ModelError
from repro.runtime.compiled import CompiledSegmenter, _normalize_fast

_NEG = float("-inf")

#: Stable kind-code table (baked into snapshots; append-only).
KIND_BY_CODE: tuple[str, ...] = (
    KIND_INSTANCE,
    KIND_SUBJECTIVE,
    KIND_CONNECTOR,
    KIND_VERB,
    KIND_STOPWORD,
    KIND_WORD,
)
_CODE_OF = {kind: code for code, kind in enumerate(KIND_BY_CODE)}
_CODE_INSTANCE = _CODE_OF[KIND_INSTANCE]
_CODE_SUBJECTIVE = _CODE_OF[KIND_SUBJECTIVE]
_CODE_CONNECTOR = _CODE_OF[KIND_CONNECTOR]
_CODE_WORD = _CODE_OF[KIND_WORD]

#: Queries longer than this fall back to the scalar path: the lockstep
#: DP pads every query to the batch maximum, so one pathological input
#: must not widen the whole batch's arrays.
MAX_BATCH_TOKENS = 48


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start+length)`` blocks, vectorized."""
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    return np.repeat(starts, lengths) + within


class SegmentationAutomaton:
    """Flat-array span automaton compiled from a
    :class:`~repro.runtime.compiled.CompiledSegmenter` (itself the
    compiled twin of :class:`~repro.core.segmentation.Segmenter`).

    Single-token scores/kinds become dense arrays indexed by token id;
    multi-token taxonomy instances become a token-id trie whose edges
    are one sorted ``int64`` array of ``state * (V+1) + token_id`` keys
    (V+1 so the reserved out-of-vocabulary id is addressable but never
    matches) plus aligned target states, and whose per-state ``terminal``
    array carries the span score (``-inf`` when the state completes no
    instance). Everything here serializes losslessly into optional
    snapshot sections (see :mod:`repro.runtime.snapshot`).
    """

    def __init__(
        self,
        tokens: list[str],
        token_scores: np.ndarray,
        token_kinds: np.ndarray,
        edge_keys: np.ndarray,
        edge_targets: np.ndarray,
        terminal: np.ndarray,
        max_span: int,
    ) -> None:
        if len(token_scores) != len(tokens) or len(token_kinds) != len(tokens):
            raise ModelError(
                "segmentation automaton: token table arrays disagree "
                f"({len(tokens)} tokens, {len(token_scores)} scores, "
                f"{len(token_kinds)} kinds)"
            )
        if len(edge_keys) != len(edge_targets):
            raise ModelError(
                "segmentation automaton: edge arrays disagree "
                f"({len(edge_keys)} keys, {len(edge_targets)} targets)"
            )
        self.tokens = tokens
        self.token_ids: dict[str, int] = {t: i for i, t in enumerate(tokens)}
        self.oov_id = len(tokens)
        self.vsize = len(tokens) + 1
        # One trailing OOV slot: unknown single tokens score 0.7 / kind
        # "word", exactly the reference miss path.
        self.token_scores = np.append(
            np.asarray(token_scores, dtype=np.float64), 0.7
        )
        self.token_kinds = np.append(
            np.asarray(token_kinds, dtype=np.int64), _CODE_WORD
        )
        self.edge_keys = np.asarray(edge_keys, dtype=np.int64)
        self.edge_targets = np.asarray(edge_targets, dtype=np.int64)
        self.terminal = np.asarray(terminal, dtype=np.float64)
        self.max_span = max_span
        # Depth-1 transitions as a dense row (the hot first hop).
        root_child = np.full(self.vsize, -1, dtype=np.int64)
        root_mask = self.edge_keys < self.vsize
        root_child[self.edge_keys[root_mask]] = self.edge_targets[root_mask]
        self.root_child = root_child

    @classmethod
    def build(cls, segmenter: CompiledSegmenter) -> "SegmentationAutomaton":
        """Compile ``segmenter``'s span-score dicts into flat arrays."""
        single = segmenter._single
        multi = segmenter._multi
        kind_map = segmenter._kind
        vocabulary = set(single)
        for phrase in multi:
            vocabulary.update(phrase.split())
        tokens = sorted(vocabulary)
        ids = {token: i for i, token in enumerate(tokens)}
        scores = [single.get(token, 0.7) for token in tokens]
        kinds = [_CODE_OF[kind_map.get(token, KIND_WORD)] for token in tokens]
        children: list[dict[int, int]] = [{}]
        terminal: list[float] = [_NEG]
        for phrase in sorted(multi):
            state = 0
            for token in phrase.split():
                token_id = ids[token]
                nxt = children[state].get(token_id)
                if nxt is None:
                    nxt = len(children)
                    children[state][token_id] = nxt
                    children.append({})
                    terminal.append(_NEG)
                state = nxt
            terminal[state] = multi[phrase]
        vsize = len(tokens) + 1
        edge_keys: list[int] = []
        edge_targets: list[int] = []
        # State ids ascend with insertion and phrases are visited sorted,
        # but child ids are not monotone across states; emit state-major,
        # token-minor so the flat key array is globally sorted.
        for state, kids in enumerate(children):
            base = state * vsize
            for token_id in sorted(kids):
                edge_keys.append(base + token_id)
                edge_targets.append(kids[token_id])
        return cls(
            tokens,
            np.asarray(scores, dtype=np.float64),
            np.asarray(kinds, dtype=np.int64),
            np.asarray(edge_keys, dtype=np.int64),
            np.asarray(edge_targets, dtype=np.int64),
            np.asarray(terminal, dtype=np.float64),
            segmenter._max_span,
        )

    def match_spans(self, token_ids: np.ndarray) -> dict[int, np.ndarray]:
        """Span scores for every window of every query, one array per
        span length.

        ``token_ids`` is the padded ``(batch, max_tokens)`` id matrix
        (pads carry the OOV id, which kills any window crossing a query
        boundary). Returns ``{length: (batch, max_tokens) scores}``
        where entry ``[b, i]`` scores ``tokens[i:i+length]`` (``-inf``
        when that window is no taxonomy instance) — the batched twin of
        the span probes inside
        :meth:`~repro.runtime.compiled.CompiledSegmenter.segment_tokens`.
        """
        batch, width = token_ids.shape
        matches: dict[int, np.ndarray] = {}
        if self.max_span < 2 or not len(self.edge_keys) or width < 2:
            return matches
        last_edge = len(self.edge_keys) - 1
        state = self.root_child[token_ids]
        for length in range(2, self.max_span + 1):
            if length - 1 >= width:
                break
            valid_width = width - (length - 1)
            prev = state[:, :valid_width]
            keys = prev * self.vsize + token_ids[:, length - 1 :]
            positions = np.searchsorted(self.edge_keys, keys)
            np.minimum(positions, last_edge, out=positions)
            found = (prev >= 0) & (self.edge_keys[positions] == keys)
            state = np.full((batch, width), -1, dtype=np.int64)
            state[:, :valid_width] = np.where(
                found, self.edge_targets[positions], -1
            )
            alive = state >= 0
            if not alive.any():
                break
            scores = np.where(alive, self.terminal[np.maximum(state, 0)], _NEG)
            if np.isfinite(scores).any():
                matches[length] = scores
        return matches


class VectorizedDetector:
    """Batched, bit-identical twin of
    :meth:`repro.runtime.compiled.CompiledDetector.detect` /
    :meth:`~repro.core.detector.HeadModifierDetector.detect_batch`.

    Construct with a compiled detector that owns a
    :class:`SegmentationAutomaton` (``CompiledDetector.detect_batch``
    does this lazily); :meth:`detect_batch` then answers whole batches
    through the array pipeline described in the module docstring.
    Detections come out element-wise identical — queries the arrays
    cannot reproduce exactly are transparently answered by the scalar
    path, so the guarantee holds for arbitrary input.
    """

    def __init__(self, detector) -> None:
        automaton = detector._automaton
        if automaton is None:
            raise ModelError(
                "vectorized detection needs a segmentation automaton; "
                "this detector was built (or snapshot-loaded) without one"
            )
        if detector._speller is not None:
            raise ModelError(
                "vectorized detection does not support a speller; "
                "use the per-query path"
            )
        self._det = detector
        self._auto = automaton
        self._matrix = detector._matrix
        self._stride = detector._matrix.stride
        self._zero_id = detector._zero_id
        config = detector._config
        self._iw = config.instance_weight
        self._one_minus_iw = 1 - config.instance_weight
        self._smoothing = config.instance_smoothing
        self._min_evidence = config.min_evidence
        self._use_connector = config.use_connector_heuristic
        self._memo_cap = config.cache_size
        # Precomputed reading matrix: one padded row of concept ids /
        # probabilities per known phrase. Pad ids are the matrix zero
        # row and pad probabilities are 0.0, so padded cells contribute
        # exactly the +0.0 the scalar loop's skips never add.
        readings = detector._compiled_readings
        width = max((len(r.ids) for r in readings.values()), default=0)
        self._k = max(width, 1)
        self._ids_mat = np.full((len(readings), self._k), self._zero_id, np.int64)
        self._probs_mat = np.zeros((len(readings), self._k), np.float64)
        self._phrase_row: dict[str, int] = {}
        for row, (phrase, reading) in enumerate(readings.items()):
            count = len(reading.ids)
            self._ids_mat[row, :count] = reading.ids
            self._probs_mat[row, :count] = reading.probs
            self._phrase_row[phrase] = row
        # Instance-pair supports behind a phrase interner + sorted keys.
        support = detector._support_map
        self._support_sid: dict[str, int] = {}
        self._support_keys: np.ndarray | None = None
        self._support_values: np.ndarray | None = None
        self._support_card = 0
        if support:
            names = sorted({m for m, _ in support} | {h for _, h in support})
            sid = {name: i for i, name in enumerate(names)}
            card = len(names)
            flat = np.asarray(
                [sid[m] * card + sid[h] for m, h in support], dtype=np.int64
            )
            values = np.asarray(list(support.values()), dtype=np.float64)
            order = np.argsort(flat)
            self._support_sid = sid
            self._support_keys = flat[order]
            self._support_values = values[order]
            self._support_card = card
        # Term memos: a term is a pure function of its key, so assembled
        # results are shared across detections (they are immutable).
        self._head_terms: dict[str, DetectedTerm] = {}
        self._mod_terms: dict[tuple[str, str], DetectedTerm] = {}
        self._other_terms: dict[tuple[str, int], DetectedTerm] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def detect_batch(self, texts) -> list[Detection]:
        """Detect ``texts`` in input order; element-wise identical to
        ``[detector.detect(t) for t in texts]`` on the per-query
        compiled path (:meth:`~repro.runtime.compiled.CompiledDetector.detect`).

        Duplicates are detected once and share the immutable
        :class:`Detection`, like the reference batch path.
        """
        texts = list(texts)
        results: dict[str, Detection | None] = {}
        vectorizable: list[tuple[str, str, list[str]]] = []
        for text in texts:
            if text in results:
                continue
            results[text] = None
            query = _normalize_fast(text)
            tokens = query.split()
            if not tokens:
                results[text] = Detection(
                    query=query, terms=(), score=0.0, method="empty"
                )
            elif "." in query or len(tokens) > MAX_BATCH_TOKENS:
                # Trailing-period stripping re-normalizes span-by-span;
                # only the scalar path reproduces it exactly.
                results[text] = self._det.detect(text)
            else:
                vectorizable.append((text, query, tokens))
        # Chunked so one huge batch cannot balloon the padded arrays.
        for start in range(0, len(vectorizable), 4096):
            self._detect_chunk(vectorizable[start : start + 4096], results)
        return [results[text] for text in texts]  # type: ignore[misc]

    # ------------------------------------------------------------------
    # the array pipeline
    # ------------------------------------------------------------------
    def _detect_chunk(
        self,
        items: list[tuple[str, str, list[str]]],
        results: dict[str, Detection | None],
    ) -> None:
        if not items:
            return
        segmented = self._segment_chunk([tokens for _, _, tokens in items])
        scored: list[tuple[int, list[tuple[str, int]], list[int], int, bool]] = []
        seg_texts: list[str] = []
        n_counts: list[int] = []
        c_counts: list[int] = []
        for index, (text, query, _) in enumerate(items):
            segments = segmented[index]
            content: list[int] = []
            connector_count = 0
            connector_at = -1
            for position, (_, code) in enumerate(segments):
                if code == _CODE_INSTANCE or code == _CODE_WORD:
                    content.append(position)
                elif code == _CODE_CONNECTOR:
                    connector_count += 1
                    connector_at = position
            if not content:
                results[text] = self._all_structural(query, segments)
                continue
            if len(content) == 1:
                results[text] = self._finish(
                    query, segments, content[0], 1.0, "single"
                )
                continue
            # Reference restriction: one connector with both sides
            # non-empty, and content on the left — candidates become
            # that (possibly complete) prefix of the content list.
            candidates = len(content)
            restricted = False
            if (
                self._use_connector
                and connector_count == 1
                and 0 < connector_at < len(segments) - 1
            ):
                left = 0
                while left < len(content) and content[left] < connector_at:
                    left += 1
                if left:
                    candidates = left
                    restricted = True
            scored.append((index, segments, content, candidates, restricted))
            seg_texts.extend(segments[i][0] for i in content)
            n_counts.append(len(content))
            c_counts.append(candidates)
        if not scored:
            return
        best_local, low, confidence = self._score_heads(
            seg_texts,
            np.asarray(n_counts, dtype=np.int64),
            np.asarray(c_counts, dtype=np.int64),
        )
        for row, (index, segments, content, candidates, restricted) in enumerate(
            scored
        ):
            text, query, _ = items[index]
            results[text] = self._resolve(
                query,
                segments,
                content,
                candidates,
                restricted,
                bool(low[row]),
                int(best_local[row]),
                float(confidence[row]),
            )

    def _segment_chunk(
        self, token_lists: list[list[str]]
    ) -> list[list[tuple[str, int]]]:
        """Lockstep Viterbi over the whole chunk — the batched twin of
        :meth:`~repro.runtime.compiled.CompiledSegmenter.segment_tokens`."""
        auto = self._auto
        batch = len(token_lists)
        lengths = [len(tokens) for tokens in token_lists]
        width = max(lengths)
        token_id = auto.token_ids.get
        oov = auto.oov_id
        flat_ids = [token_id(t, oov) for tokens in token_lists for t in tokens]
        ids = np.full((batch, width), oov, dtype=np.int64)
        length_arr = np.asarray(lengths, dtype=np.int64)
        ends = np.cumsum(length_arr)
        positions = (
            np.repeat(np.arange(batch, dtype=np.int64) * width, length_arr)
            + np.arange(int(ends[-1]), dtype=np.int64)
            - np.repeat(ends - length_arr, length_arr)
        )
        ids.ravel()[positions] = flat_ids
        matches = auto.match_spans(ids)
        token_scores = auto.token_scores[ids]
        # DP tables over [0, width]; padded tails compute garbage that
        # backtracking (anchored at each query's own length) never reads.
        scores = np.full((batch, width + 1), _NEG)
        scores[:, 0] = 0.0
        seg_counts = np.zeros((batch, width + 1), dtype=np.int64)
        back = np.full((batch, width + 1), -1, dtype=np.int64)
        # Longest spans first: the reference probes candidates by
        # ascending start (= descending length), the single token last.
        match_items = sorted(matches.items(), reverse=True)
        for end in range(1, width + 1):
            best_score: np.ndarray | None = None
            best_group = best_start = None
            for length, span_scores in match_items:
                if length > end:
                    continue
                start = end - length
                score = scores[:, start] + span_scores[:, start]
                group = seg_counts[:, start] - 1
                if best_score is None:
                    best_score, best_group = score, group
                    best_start = np.full(batch, start, dtype=np.int64)
                    continue
                better = (score > best_score) | (
                    (score == best_score) & (group > best_group)
                )
                best_score = np.where(better, score, best_score)
                best_group = np.where(better, group, best_group)
                best_start = np.where(better, start, best_start)
            score = scores[:, end - 1] + token_scores[:, end - 1]
            group = seg_counts[:, end - 1] - 1
            if best_score is None:
                scores[:, end] = score
                seg_counts[:, end] = group
                back[:, end] = end - 1
                continue
            better = (score > best_score) | (
                (score == best_score) & (group > best_group)
            )
            scores[:, end] = np.where(better, score, best_score)
            seg_counts[:, end] = np.where(better, group, best_group)
            back[:, end] = np.where(better, end - 1, best_start)
        back_rows = back.tolist()
        kind_rows = auto.token_kinds[ids].tolist()
        segmented: list[list[tuple[str, int]]] = []
        for row, tokens in enumerate(token_lists):
            back_row = back_rows[row]
            kinds = kind_rows[row]
            spans: list[tuple[str, int]] = []
            end = lengths[row]
            while end > 0:
                start = back_row[end]
                if end - start == 1:
                    spans.append((tokens[start], kinds[start]))
                else:
                    spans.append((" ".join(tokens[start:end]), _CODE_INSTANCE))
                end = start
            spans.reverse()
            segmented.append(spans)
        return segmented

    def _score_heads(
        self,
        seg_texts: list[str],
        n_counts: np.ndarray,
        c_counts: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched twin of the scalar ``_head_score`` loop inside
        :meth:`~repro.core.detector.HeadModifierDetector._choose_head`:
        bincount-accumulated affinities in reference order, argmax with
        first-wins ties."""
        det = self._det
        total_segments = len(seg_texts)
        row_of = self._phrase_row.get
        rows = [row_of(text, -1) for text in seg_texts]
        row_arr = np.asarray(rows, dtype=np.int64)
        if min(rows, default=0) >= 0:
            # Every phrase is in the compiled reading matrix (the common
            # warm case): plain row gathers, no scatter needed.
            width = self._k
            seg_ids = self._ids_mat[row_arr]
            seg_probs = self._probs_mat[row_arr]
        else:
            fresh = [
                (i, det._reading(seg_texts[i]))
                for i in range(total_segments)
                if rows[i] < 0
            ]
            width = self._k
            for _, reading in fresh:
                width = max(width, len(reading.ids))
            seg_ids = np.full(
                (total_segments, width), self._zero_id, dtype=np.int64
            )
            seg_probs = np.zeros((total_segments, width), dtype=np.float64)
            known = row_arr >= 0
            seg_ids[known, : self._k] = self._ids_mat[row_arr[known]]
            seg_probs[known, : self._k] = self._probs_mat[row_arr[known]]
            for i, reading in fresh:
                count = len(reading.ids)
                seg_ids[i, :count] = reading.ids
                seg_probs[i, :count] = reading.probs
        # Pair layout: candidate-major, modifiers in content order — the
        # exact reference iteration order, so bincount partial sums match.
        queries = len(n_counts)
        offsets = np.zeros(queries + 1, dtype=np.int64)
        np.cumsum(n_counts, out=offsets[1:])
        cand_global = _concat_ranges(offsets[:-1], c_counts)
        total_cands = len(cand_global)
        reps = np.repeat(n_counts, c_counts)
        pair_mod = _concat_ranges(np.repeat(offsets[:-1], c_counts), reps)
        pair_head = np.repeat(cand_global, reps)
        pair_bin = np.repeat(np.arange(total_cands, dtype=np.int64), reps)
        pairs = len(pair_mod)
        mod_ids = seg_ids[pair_mod]
        head_ids = seg_ids[pair_head]
        keys = (mod_ids * self._stride)[:, :, None] + head_ids[:, None, :]
        weights = self._matrix.norm(keys.reshape(-1)).reshape(pairs, width, width)
        weights[mod_ids[:, :, None] == head_ids[:, None, :]] = 0.0
        grid = (
            seg_probs[pair_mod][:, :, None] * seg_probs[pair_head][:, None, :]
        ) * weights
        pattern = np.bincount(
            np.repeat(np.arange(pairs, dtype=np.int64), width * width),
            weights=grid.reshape(-1),
            minlength=pairs,
        )
        if self._support_keys is not None:
            sid_of = self._support_sid.get
            sids = np.asarray(
                [sid_of(text, -1) for text in seg_texts], dtype=np.int64
            )
            mod_sid = sids[pair_mod]
            head_sid = sids[pair_head]
            valid = (mod_sid >= 0) & (head_sid >= 0)
            card = self._support_card
            # Forward and backward keys probed in one searchsorted pass;
            # keys with an unknown phrase (sid -1) may collide with real
            # entries, but ``valid`` masks them out inside the take.
            both = self._support_take(
                np.concatenate(
                    (mod_sid * card + head_sid, head_sid * card + mod_sid)
                ),
                np.concatenate((valid, valid)),
            )
            forward = both[:pairs]
            backward = both[pairs:]
            denominator = forward + backward + self._smoothing
            with np.errstate(divide="ignore", invalid="ignore"):
                instance = np.where(denominator > 0, forward / denominator, 0.0)
        else:
            instance = np.zeros(pairs, dtype=np.float64)
        affinity = self._iw * instance + self._one_minus_iw * pattern
        affinity[pair_mod == pair_head] = 0.0
        head_scores = np.bincount(pair_bin, weights=affinity, minlength=total_cands)
        # Per-query argmax over -inf-padded candidate rows; first-wins
        # ties replicate the reference stable sort by (-score, start).
        c_max = int(c_counts.max())
        matrix = np.full((queries, c_max), _NEG)
        matrix[
            np.repeat(np.arange(queries, dtype=np.int64), c_counts),
            _concat_ranges(np.zeros(queries, dtype=np.int64), c_counts),
        ] = head_scores
        best_local = matrix.argmax(axis=1)
        rows_idx = np.arange(queries)
        best = matrix[rows_idx, best_local]
        matrix[rows_idx, best_local] = _NEG
        second = matrix.max(axis=1)
        low = best < self._min_evidence
        with np.errstate(divide="ignore", invalid="ignore"):
            raw_margin = (best - second) / best
        margin = np.where((c_counts > 1) & (best > 0), raw_margin, 1.0)
        confidence = np.minimum(1.0, 0.5 + 0.5 * margin)
        return best_local, low, confidence

    def _support_take(self, keys: np.ndarray, valid: np.ndarray) -> np.ndarray:
        assert self._support_keys is not None and self._support_values is not None
        positions = np.searchsorted(self._support_keys, keys)
        np.minimum(positions, len(self._support_keys) - 1, out=positions)
        found = (self._support_keys[positions] == keys) & valid
        return np.where(found, self._support_values[positions], 0.0)

    # ------------------------------------------------------------------
    # per-query resolution (reference control flow, memoized assembly)
    # ------------------------------------------------------------------
    def _resolve(
        self,
        query: str,
        segments: list[tuple[str, int]],
        content: list[int],
        candidates: int,
        restricted: bool,
        low: bool,
        best_local: int,
        confidence: float,
    ) -> Detection:
        if low:
            if restricted:
                return self._finish(
                    query, segments, content[candidates - 1], 0.25, "connector"
                )
            return self._finish(query, segments, content[-1], 0.1, "fallback")
        method = "connector+pattern" if restricted else "pattern"
        return self._finish(
            query, segments, content[best_local], confidence, method
        )

    def _finish(
        self,
        query: str,
        segments: list[tuple[str, int]],
        head_position: int,
        score: float,
        method: str,
    ) -> Detection:
        det = self._det
        head_text = segments[head_position][0]
        head_dict: dict[str, float] | None = None
        terms: list[DetectedTerm] = []
        for position, (text, code) in enumerate(segments):
            if position == head_position:
                term = self._head_terms.get(head_text)
                if term is None:
                    term = DetectedTerm(
                        head_text,
                        TermRole.HEAD,
                        KIND_BY_CODE[code],
                        det._concepts_of(head_text),
                    )
                    self._remember(self._head_terms, head_text, term)
            elif (
                code == _CODE_INSTANCE
                or code == _CODE_WORD
                or code == _CODE_SUBJECTIVE
            ):
                term = self._mod_terms.get((text, head_text))
                if term is None:
                    if head_dict is None:
                        head_dict = dict(det._concepts_of(head_text))
                    term = DetectedTerm(
                        text,
                        TermRole.MODIFIER,
                        KIND_BY_CODE[code],
                        det._modifier_concepts(text, head_dict),
                    )
                    self._remember(self._mod_terms, (text, head_text), term)
            else:
                term = self._other_terms.get((text, code))
                if term is None:
                    term = DetectedTerm(text, TermRole.OTHER, KIND_BY_CODE[code])
                    self._remember(self._other_terms, (text, code), term)
            terms.append(term)
        detection = Detection(
            query=query, terms=tuple(terms), score=score, method=method
        )
        if det._classifier is not None:
            detection = det._classifier.annotate(detection)
        return detection

    def _all_structural(
        self, query: str, segments: list[tuple[str, int]]
    ) -> Detection:
        """Inline twin of
        :meth:`~repro.core.detector.HeadModifierDetector._all_structural`."""
        terms = tuple(
            DetectedTerm(
                text,
                TermRole.MODIFIER if code == _CODE_SUBJECTIVE else TermRole.OTHER,
                KIND_BY_CODE[code],
            )
            for text, code in segments
        )
        return Detection(query=query, terms=terms, score=0.0, method="structural")

    def _remember(self, memo: dict, key, term: DetectedTerm) -> None:
        if len(memo) >= self._memo_cap:
            memo.clear()
        memo[key] = term
