"""Structured explanations of detection decisions.

``Detection.explain()`` says *what* was decided;
:func:`explain_detection` says *why*: every head candidate's score, and
for the winner, the concept patterns that carried the decision with their
contributions. Production debugging ("why did this query pick that
head?") needs exactly this view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import Detection, HeadModifierDetector
from repro.core.segmentation import CONTENT_KINDS


@dataclass(frozen=True)
class PatternContribution:
    """One concept pattern's contribution to a (modifier, head) pair."""

    modifier: str
    modifier_concept: str
    head_concept: str
    probability_mass: float  # P(c_m|m) * P(c_h|h)
    pattern_score: float     # normalized table score
    contribution: float      # product

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.modifier} as [{self.modifier_concept}] -> "
            f"[{self.head_concept}]: {self.contribution:.4f}"
        )


@dataclass(frozen=True)
class CandidateScore:
    """Total evidence for one head candidate."""

    text: str
    score: float
    instance_component: float
    pattern_component: float


@dataclass(frozen=True)
class DetectionExplanation:
    """The decision trace for one query."""

    detection: Detection
    candidates: tuple[CandidateScore, ...]
    winning_patterns: tuple[PatternContribution, ...]

    @property
    def margin(self) -> float:
        """Relative gap between the best and second-best candidate."""
        if len(self.candidates) < 2 or self.candidates[0].score <= 0:
            return 1.0
        return (
            self.candidates[0].score - self.candidates[1].score
        ) / self.candidates[0].score

    def render(self, max_patterns: int = 5) -> str:
        """Multi-line human-readable trace."""
        lines = [f"query: {self.detection.query}"]
        lines.append(f"decision: {self.detection.explain()}")
        lines.append(f"method: {self.detection.method}  margin: {self.margin:.2f}")
        lines.append("head candidates:")
        for candidate in self.candidates:
            lines.append(
                f"  {candidate.text:24} score={candidate.score:.4f} "
                f"(instance={candidate.instance_component:.4f}, "
                f"patterns={candidate.pattern_component:.4f})"
            )
        if self.winning_patterns:
            lines.append("winning evidence:")
            for contribution in self.winning_patterns[:max_patterns]:
                lines.append(f"  {contribution}")
        return "\n".join(lines)


def explain_detection(
    detector: HeadModifierDetector, text: str, top_patterns: int = 10
) -> DetectionExplanation:
    """Detect ``text`` and reconstruct the decision trace.

    Uses only the detector's public configuration plus its pattern table /
    conceptualizer, so the trace matches what ``detect`` computed.
    """
    detection = detector.detect(text)
    segments = detector.segmenter.segment(detection.query)
    content = [s for s in segments if s.kind in CONTENT_KINDS]
    config = detector.config
    conceptualizer = detector.conceptualizer

    def concepts_of(phrase: str) -> list[tuple[str, float]]:
        readings = conceptualizer.conceptualize(phrase, config.top_k_concepts)
        if config.hierarchy_discount > 0 and readings:
            readings = conceptualizer.expand_with_ancestors(
                readings, config.hierarchy_discount
            )
        return list(readings)

    candidates = []
    per_candidate_patterns: dict[str, list[PatternContribution]] = {}
    for candidate in content:
        instance_total = 0.0
        pattern_total = 0.0
        contributions: list[PatternContribution] = []
        for other in content:
            if other is candidate:
                continue
            instance_total += _instance_score(detector, other.text, candidate.text)
            for m_concept, m_prob in concepts_of(other.text):
                for h_concept, h_prob in concepts_of(candidate.text):
                    if m_concept == h_concept:
                        continue
                    pattern_score = detector.patterns.score(m_concept, h_concept)
                    if pattern_score <= 0:
                        continue
                    mass = m_prob * h_prob
                    pattern_total += mass * pattern_score
                    contributions.append(
                        PatternContribution(
                            modifier=other.text,
                            modifier_concept=m_concept,
                            head_concept=h_concept,
                            probability_mass=mass,
                            pattern_score=pattern_score,
                            contribution=mass * pattern_score,
                        )
                    )
        score = (
            config.instance_weight * instance_total
            + (1 - config.instance_weight) * pattern_total
        )
        candidates.append(
            CandidateScore(
                text=candidate.text,
                score=score,
                instance_component=instance_total,
                pattern_component=pattern_total,
            )
        )
        contributions.sort(key=lambda c: -c.contribution)
        per_candidate_patterns[candidate.text] = contributions

    candidates.sort(key=lambda c: (-c.score, c.text))
    winning = (
        tuple(per_candidate_patterns.get(detection.head, [])[:top_patterns])
        if detection.head is not None
        else ()
    )
    return DetectionExplanation(
        detection=detection,
        candidates=tuple(candidates),
        winning_patterns=winning,
    )


def _instance_score(detector: HeadModifierDetector, modifier: str, head: str) -> float:
    # Mirrors HeadModifierDetector._instance_score through public state.
    pairs = detector.instance_pairs
    if pairs is None:
        return 0.0
    forward = pairs.support(modifier, head)
    backward = pairs.support(head, modifier)
    denominator = forward + backward + detector.config.instance_smoothing
    return forward / denominator if denominator > 0 else 0.0
