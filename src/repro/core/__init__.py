"""The paper's primary contribution.

Pipeline (abstract, steps 2-4):

- :mod:`repro.core.conceptualizer` — generalize instances to concepts via
  the isA taxonomy with typicality weighting and multi-word backoff.
- :mod:`repro.core.concept_patterns` — aggregate mined instance pairs into
  *weighted concept patterns*, then prune to a concise, high-coverage set.
- :mod:`repro.core.segmentation` — break a short text into instance-level
  segments (queries do not come pre-segmented).
- :mod:`repro.core.detector` — the runtime head-modifier detector scoring
  candidate (modifier → head) assignments against the pattern table, with
  an instance-level memory and a positional fallback.
- :mod:`repro.core.features` / :mod:`repro.core.constraints` — the
  constraint classifier separating specific modifiers from subjective ones.
- :mod:`repro.core.model` / :mod:`repro.core.pipeline` — bundling,
  persistence, and end-to-end training from a query log.
"""

from repro.core.analysis import (
    compare_tables,
    direction_conflicts,
    pair_coverage,
    summarize_table,
)
from repro.core.compound import CompoundDetection, CompoundDetector
from repro.core.conceptualizer import Conceptualizer
from repro.core.concept_patterns import ConceptPattern, PatternTable, derive_pattern_table
from repro.core.constraints import ConstraintClassifier, LogisticRegression, RuleConstraintClassifier
from repro.core.detector import Detection, DetectorConfig, HeadModifierDetector, TermRole
from repro.core.explain import (
    CandidateScore,
    DetectionExplanation,
    PatternContribution,
    explain_detection,
)
from repro.core.features import ConstraintFeatureExtractor, FEATURE_NAMES
from repro.core.model import HdmModel, load_model, save_model
from repro.core.pipeline import TrainingConfig, train_model, update_model
from repro.core.segmentation import Segment, Segmenter

__all__ = [
    "Conceptualizer",
    "ConceptPattern",
    "PatternTable",
    "derive_pattern_table",
    "Segment",
    "Segmenter",
    "Detection",
    "DetectorConfig",
    "HeadModifierDetector",
    "TermRole",
    "ConstraintFeatureExtractor",
    "FEATURE_NAMES",
    "ConstraintClassifier",
    "RuleConstraintClassifier",
    "LogisticRegression",
    "HdmModel",
    "save_model",
    "load_model",
    "TrainingConfig",
    "train_model",
    "update_model",
    "CompoundDetection",
    "CompoundDetector",
    "explain_detection",
    "DetectionExplanation",
    "CandidateScore",
    "PatternContribution",
    "summarize_table",
    "direction_conflicts",
    "pair_coverage",
    "compare_tables",
]
