"""Compound short texts: titles and captions with several intents.

Queries are usually one intent, but titles often coordinate several:
"iphone 5s smart cover and galaxy s4 screen protector". Running the
detector on the whole string would force one global head; the compound
detector first splits the *segmented* text at coordinator tokens and
detects per clause.

Splitting after segmentation (not on raw tokens) is what keeps
"bed and breakfast" intact: its "and" lives inside one taxonomy-instance
segment and is therefore never a split point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import Detection, HeadModifierDetector
from repro.core.segmentation import Segment

#: Tokens that coordinate clauses when they stand as their own segment.
#: ("with" is deliberately absent: it attaches modifiers, not clauses.)
COORDINATORS = frozenset({"and", "or", "vs", "versus", "plus"})


@dataclass(frozen=True)
class CompoundDetection:
    """Per-clause detections of one compound text."""

    text: str
    clauses: tuple[Detection, ...]

    @property
    def heads(self) -> tuple[str, ...]:
        """Detected heads of all clauses, in order."""
        return tuple(d.head for d in self.clauses if d.head is not None)

    @property
    def constraints(self) -> tuple[str, ...]:
        """Constraint modifiers pooled across all clauses."""
        return tuple(c for d in self.clauses for c in d.constraints)

    @property
    def is_compound(self) -> bool:
        """Whether the text coordinated more than one clause."""
        return len(self.clauses) > 1


class CompoundDetector:
    """Clause splitting + per-clause head/modifier detection."""

    def __init__(self, detector: HeadModifierDetector) -> None:
        self._detector = detector

    def detect(self, text: str) -> CompoundDetection:
        """Detect each coordinated clause of ``text``.

        A text with no coordinators yields exactly one clause, identical
        to plain detection.
        """
        segments = self._detector.segmenter.segment(text)
        clause_texts = [
            " ".join(s.text for s in clause)
            for clause in _split_clauses(segments)
        ]
        detections = tuple(
            self._detector.detect(clause) for clause in clause_texts if clause
        )
        return CompoundDetection(
            text=" ".join(s.text for s in segments), clauses=detections
        )


def _split_clauses(segments: list[Segment]) -> list[list[Segment]]:
    clauses: list[list[Segment]] = []
    current: list[Segment] = []
    for segment in segments:
        if segment.num_tokens == 1 and segment.text in COORDINATORS:
            if current:
                clauses.append(current)
                current = []
            continue
        current.append(segment)
    if current:
        clauses.append(current)
    return clauses
