"""Conceptualization: mapping instance phrases to weighted concepts.

The paper's step 2 lifts instance-level head-modifier pairs to concept
level. The primitive is "given this phrase, what concepts is it an
instance of, with what probability" — typicality ``P(concept | instance)``
from the taxonomy, with two practical additions:

- **head-word backoff** for unknown multi-word phrases: "purple iphone 5s"
  is not in the taxonomy, but its suffix "iphone 5s" is; conceptualizing
  the suffix is the right generalization for noun compounds.
- **context disambiguation** (naive Bayes): "apple" alone is a fruit or a
  company; next to "charger" the concept distribution should tilt to the
  company. Given candidate concepts for the context term, senses of the
  target that co-occur in the pattern table get boosted.
- **concept self-readings**: short texts use concept words directly
  ("smartphone case"); a phrase that *is* a concept name reads as that
  concept, blended with any instance readings it also has. In Probase the
  same falls out of concepts being nodes of one network.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.taxonomy.store import ConceptTaxonomy
from repro.taxonomy.typicality import TypicalityScorer
from repro.text.normalizer import normalize_term
from repro.utils.lru import LruCache
from repro.utils.mathx import normalize_distribution


class Conceptualizer:
    """Weighted instance → concept mapping with backoff."""

    def __init__(
        self,
        taxonomy: ConceptTaxonomy,
        smoothing: float = 0.0,
        max_backoff_tokens: int = 2,
        self_concept_weight: float = 0.6,
        cache_size: int | None = None,
    ) -> None:
        """``self_concept_weight`` is the probability mass given to the
        self-reading when the phrase is itself a concept name (the rest
        goes to its instance readings, if any). ``cache_size`` bounds an
        optional memo of ``(phrase, top_k) → readings``: conceptualization
        is pure, so training pipelines that revisit the same phrases
        thousands of times (pattern derivation, droppability tables,
        feature extraction) pay each distinct phrase once. ``None``
        disables memoization; pass ``DetectorConfig.cache_size`` to share
        the serving-side bound."""
        if not 0 <= self_concept_weight <= 1:
            raise ValueError("self_concept_weight must be in [0, 1]")
        self._taxonomy = taxonomy
        self._scorer = TypicalityScorer(taxonomy, smoothing=smoothing)
        self._max_backoff_tokens = max_backoff_tokens
        self._self_concept_weight = self_concept_weight
        self._cache: LruCache[tuple[str, int], tuple[tuple[str, float], ...]] | None = (
            LruCache(cache_size) if cache_size is not None else None
        )

    @property
    def taxonomy(self) -> ConceptTaxonomy:
        """The underlying isA taxonomy."""
        return self._taxonomy

    @property
    def scorer(self) -> TypicalityScorer:
        """The typicality scorer over the taxonomy."""
        return self._scorer

    def conceptualize(self, phrase: str, top_k: int = 5) -> list[tuple[str, float]]:
        """Top concepts of ``phrase`` with probabilities, best first.

        Falls back to progressively shorter suffixes for unknown
        multi-word phrases; the backoff result is attenuated by how much
        of the phrase was discarded.

        >>> # doctest-style illustration; see tests for executable checks
        """
        if self._cache is None:
            return self._conceptualize_uncached(phrase, top_k)
        key = (phrase, top_k)
        readings = self._cache.get(key)
        if readings is None:
            readings = tuple(self._conceptualize_uncached(phrase, top_k))
            self._cache.put(key, readings)
        # Hand out a fresh list so callers cannot corrupt the memo.
        return list(readings)

    def conceptualize_many(
        self, phrases: Iterable[str], top_k: int = 5
    ) -> list[list[tuple[str, float]]]:
        """Readings for each phrase, aligned with the input order.

        Bulk entry point for training and the compiled runtime: duplicate
        phrases are resolved once per call even when memoization is
        disabled. Returned lists are independent copies.
        """
        seen: dict[str, list[tuple[str, float]]] = {}
        results = []
        for phrase in phrases:
            readings = seen.get(phrase)
            if readings is None:
                readings = self.conceptualize(phrase, top_k)
                seen[phrase] = readings
            results.append(list(readings))
        return results

    def _conceptualize_uncached(
        self, phrase: str, top_k: int
    ) -> list[tuple[str, float]]:
        norm = normalize_term(phrase)
        is_concept = (
            self._self_concept_weight > 0 and self._taxonomy.has_concept(norm)
        )
        if self._taxonomy.has_instance(norm):
            readings = self._scorer.top_concepts(norm, top_k if not is_concept else top_k + 1)
            if not is_concept:
                return readings
            return self._blend_self_reading(norm, readings, top_k)
        if is_concept:
            return [(norm, 1.0)]
        return self._backoff(norm, top_k)

    def expand_with_ancestors(
        self,
        readings: list[tuple[str, float]],
        discount: float,
    ) -> list[tuple[str, float]]:
        """Add super-concept readings, attenuated by ``discount`` per level.

        A reading ``(smartphone, p)`` gains ``(device, p * discount * P(device|smartphone))``
        when the taxonomy records the concept as an instance of a
        super-concept (the Probase hierarchy encoding). One level only —
        deeper ancestry dilutes meaning faster than it generalizes.
        """
        if not 0 <= discount <= 1:
            raise ValueError("discount must be in [0, 1]")
        expanded: dict[str, float] = {}
        for concept, probability in readings:
            expanded[concept] = expanded.get(concept, 0.0) + probability
            if discount == 0:
                continue
            for parent, parent_probability in self._scorer.concept_distribution(
                concept
            ).items():
                expanded[parent] = (
                    expanded.get(parent, 0.0)
                    + probability * discount * parent_probability
                )
        return sorted(expanded.items(), key=lambda kv: (-kv[1], kv[0]))

    def _blend_self_reading(
        self, concept: str, readings: list[tuple[str, float]], top_k: int
    ) -> list[tuple[str, float]]:
        w = self._self_concept_weight
        blended = {concept: w}
        for reading, probability in readings:
            if reading != concept:
                blended[reading] = blended.get(reading, 0.0) + (1 - w) * probability
        ranked = sorted(blended.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top_k]

    def is_known(self, phrase: str) -> bool:
        """Whether the phrase (or a backoff suffix of it) conceptualizes."""
        return bool(self.conceptualize(phrase, top_k=1))

    def conceptualize_with_context(
        self,
        phrase: str,
        context_concepts: dict[str, float],
        compatibility,
        top_k: int = 5,
    ) -> list[tuple[str, float]]:
        """Disambiguate ``phrase`` using a context term's concepts.

        ``compatibility(concept, context_concept)`` returns a non-negative
        affinity (typically a pattern-table weight). Each sense ``c`` is
        rescored as ``P(c|phrase) * (eps + Σ_ctx P(ctx) * compat(c, ctx))``
        — naive-Bayes style evidence combination.
        """
        base = self.context_base(phrase, top_k)
        if not base or not context_concepts:
            return sorted(base.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
        epsilon = 1e-6
        rescored = {}
        for concept, prior in base.items():
            evidence = sum(
                p_ctx * compatibility(concept, ctx)
                for ctx, p_ctx in context_concepts.items()
            )
            rescored[concept] = prior * (epsilon + evidence)
        if all(v <= epsilon for v in rescored.values()):
            rescored = base  # no signal: keep the prior
        dist = normalize_distribution(rescored)
        return sorted(dist.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]

    def context_base(self, phrase: str, top_k: int = 5) -> dict[str, float]:
        """The over-generated sense prior that context disambiguation
        rescores: more senses than ``top_k`` so a contextually-right but
        a-priori-unlikely sense can climb into the final top ``k``.

        Split out so the compiled runtime can memoize it per phrase and
        produce results identical to :meth:`conceptualize_with_context`.
        """
        return dict(self.conceptualize(phrase, top_k=max(top_k * 3, 10)))

    def _backoff(self, norm: str, top_k: int) -> list[tuple[str, float]]:
        tokens = norm.split()
        if len(tokens) < 2:
            return []
        limit = min(len(tokens) - 1, self._max_backoff_tokens)
        for n_dropped in range(1, limit + 1):
            suffix = " ".join(tokens[n_dropped:])
            if self._taxonomy.has_instance(suffix) or self._taxonomy.has_concept(suffix):
                attenuation = 1.0 / (1.0 + n_dropped)
                return [
                    (concept, p * attenuation)
                    for concept, p in self.conceptualize(suffix, top_k)
                ]
        return []
