"""End-to-end training: query log + taxonomy → :class:`HdmModel`.

Mirrors the paper's offline pipeline:

1. mine instance-level head-modifier pairs from the log;
2. conceptualize them and derive the weighted concept-pattern table;
3. prune the table to a concise high-mass prefix;
4. build the concept-droppability table and train the constraint
   classifier with distant supervision from click behaviour.

No step reads gold labels.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.concept_patterns import derive_pattern_table
from repro.core.conceptualizer import Conceptualizer
from repro.core.constraints import ConstraintClassifier, LogisticRegression
from repro.core.detector import DetectorConfig
from repro.core.features import (
    ConstraintFeatureExtractor,
    build_droppability_tables,
)
from repro.core.model import HdmModel
from repro.core.segmentation import Segmenter
from repro.errors import ModelError
from repro.mining.pairs import MinedPair, MiningConfig, PairCollection, mine_pairs
from repro.querylog.models import QueryLog
from repro.querylog.stats import LogStatistics, host_path_similarity
from repro.taxonomy.store import ConceptTaxonomy


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of the offline pipeline."""

    mining: MiningConfig = field(default_factory=MiningConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Concepts considered per instance side during pattern derivation.
    top_k_concepts: int = 5
    #: Super-concept attenuation during derivation (0 = no hierarchy
    #: backoff; pair with DetectorConfig.hierarchy_discount).
    hierarchy_discount: float = 0.0
    #: Fraction of pattern mass kept after pruning (1.0 = keep all).
    pattern_mass: float = 0.99
    #: Hard cap on pattern count after mass pruning (None = no cap).
    max_patterns: int | None = None
    train_classifier: bool = True
    #: Distant-supervision label boundary on drop-similarity.
    drop_label_threshold: float = 0.5
    classifier_epochs: int = 400
    classifier_learning_rate: float = 0.5
    classifier_l2: float = 1e-3
    constraint_threshold: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.pattern_mass <= 1:
            raise ModelError("pattern_mass must be in (0, 1]")
        if not 0 < self.drop_label_threshold < 1:
            raise ModelError("drop_label_threshold must be in (0, 1)")


def train_model(
    log: QueryLog,
    taxonomy: ConceptTaxonomy,
    config: TrainingConfig | None = None,
    *,
    workers: int = 1,
    vectorized: bool = False,
    timings: dict[str, float] | None = None,
) -> HdmModel:
    """Run the full offline pipeline and return the trained bundle.

    ``workers`` > 1 shards pair mining across that many processes
    (:mod:`repro.training.parallel`); ``vectorized`` routes derivation and
    classifier training through the batched-numpy stages
    (:mod:`repro.training.vectorized`). Both switches are output-identical
    to the reference — same pattern table to the bit, same detections —
    so they are purely a throughput choice. ``timings``, when given, is
    filled with per-stage wall seconds (``mine``, ``derive``, ``features``,
    ``classifier``, ``total``).
    """
    config = config or TrainingConfig()
    if workers < 1:
        raise ModelError(f"workers must be positive, got {workers}")
    record_stage = _stage_recorder(timings)
    started = time.perf_counter()
    stats = LogStatistics(log)
    conceptualizer = Conceptualizer(
        taxonomy,
        cache_size=config.detector.cache_size if vectorized else None,
    )
    segmenter = Segmenter(taxonomy)

    with record_stage("mine"):
        if workers > 1:
            # repro: noqa[REP007] -- sanctioned inversion: the pipeline
            # dispatches to the parallel fast path only when asked for
            # workers; deferred so single-worker runs stay light.
            from repro.training.parallel import mine_pairs_sharded

            pairs = mine_pairs_sharded(log, config.mining, workers=workers)
        else:
            pairs = mine_pairs(log, config.mining)
    with record_stage("derive"):
        if vectorized:
            # repro: noqa[REP007] -- sanctioned inversion: opt-in numpy
            # fast path; deferred so core never hard-requires numpy.
            from repro.training.vectorized import derive_pattern_table_vectorized

            patterns = derive_pattern_table_vectorized(
                pairs,
                conceptualizer,
                config.top_k_concepts,
                hierarchy_discount=config.hierarchy_discount,
            )
        else:
            patterns = derive_pattern_table(
                pairs,
                conceptualizer,
                config.top_k_concepts,
                hierarchy_discount=config.hierarchy_discount,
            )
        if config.pattern_mass < 1.0:
            patterns = patterns.pruned_to_mass(config.pattern_mass)
        if config.max_patterns is not None:
            patterns = patterns.pruned_to_count(config.max_patterns)

    classifier = None
    if config.train_classifier:
        if vectorized:
            classifier = _train_constraint_classifier_vectorized(
                stats, conceptualizer, config, record_stage
            )
        else:
            classifier = _train_constraint_classifier(
                stats, conceptualizer, segmenter, config, record_stage
            )

    if timings is not None:
        timings["total"] = time.perf_counter() - started
    return HdmModel(
        taxonomy=taxonomy,
        patterns=patterns,
        pairs=pairs,
        classifier=classifier,
        detector_config=config.detector,
    )


def _stage_recorder(timings: dict[str, float] | None):
    """A context-manager factory accumulating stage wall time."""

    @contextlib.contextmanager
    def record_stage(name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            if timings is not None:
                timings[name] = (
                    timings.get(name, 0.0) + time.perf_counter() - started
                )

    return record_stage


def constraint_training_rows(
    stats: LogStatistics,
    segmenter: Segmenter,
    drop_label_threshold: float = 0.5,
) -> tuple[list[tuple[str, str]], list[int], list[float]]:
    """Distant-supervision rows for the constraint classifier.

    Rows are (query, modifier-segment) pairs with drop evidence in the
    log; the label is whether dropping the segment changed clicks (1 =
    constraint). Head-like segments are excluded — dropping the head
    always changes results, which says nothing about modifiers. Weights
    are query volumes. Public so ablation experiments can retrain on
    feature subsets.
    """
    rows: list[tuple[str, str]] = []
    labels: list[int] = []
    weights: list[float] = []
    for record in stats.log.records():
        if len(record.tokens) < 2:
            continue
        for segment in segmenter.segment(record.query):
            if segment.num_tokens >= len(record.tokens):
                continue
            similarity = stats.drop_similarity(record.query, segment.text)
            if similarity is None:
                continue
            if _is_head_like(stats.log, record, segment.text):
                continue
            rows.append((record.query, segment.text))
            labels.append(int(similarity < drop_label_threshold))
            weights.append(float(record.frequency))
    return rows, labels, weights


def update_model(
    model: HdmModel,
    new_log: QueryLog,
    config: TrainingConfig | None = None,
    decay: float = 1.0,
) -> HdmModel:
    """Incrementally fold a new log slice into an existing model.

    Mines the new slice, merges the pair memory, derives the slice's
    pattern contribution and merges it into the existing table (derivation
    is linear in support, so this approximates a batch retrain on the
    union without touching the old log). ``decay`` < 1 down-weights the
    *existing* patterns and pairs first — a rolling-window deployment.

    The constraint classifier is retrained on the new slice when the
    original model had one and the slice carries enough evidence;
    otherwise the existing classifier is kept.
    """
    config = config or TrainingConfig()
    if not 0 < decay <= 1:
        raise ModelError("decay must be in (0, 1]")
    conceptualizer = Conceptualizer(model.taxonomy)
    segmenter = Segmenter(model.taxonomy)
    stats = LogStatistics(new_log)

    new_pairs = mine_pairs(new_log, config.mining)
    merged_pairs = model.pairs.copy()
    if decay < 1.0:
        scaled = PairCollection()
        for modifier, head, support in merged_pairs.items():
            scaled.add(MinedPair(modifier, head, support * decay, "decayed"))
        merged_pairs = scaled
    merged_pairs.merge(new_pairs)

    new_patterns = derive_pattern_table(
        new_pairs,
        conceptualizer,
        config.top_k_concepts,
        hierarchy_discount=config.hierarchy_discount,
    )
    merged_patterns = (
        model.patterns.scaled(decay) if decay < 1.0 else model.patterns.scaled(1.0)
    )
    merged_patterns.merge(new_patterns)
    if config.pattern_mass < 1.0:
        merged_patterns = merged_patterns.pruned_to_mass(config.pattern_mass)
    if config.max_patterns is not None:
        merged_patterns = merged_patterns.pruned_to_count(config.max_patterns)

    classifier = model.classifier
    if classifier is not None and config.train_classifier:
        retrained = _train_constraint_classifier(
            stats, conceptualizer, segmenter, config
        )
        if retrained is not None:
            classifier = retrained

    return HdmModel(
        taxonomy=model.taxonomy,
        patterns=merged_patterns,
        pairs=merged_pairs,
        classifier=classifier,
        detector_config=model.detector_config,
    )


def _train_constraint_classifier(
    stats: LogStatistics,
    conceptualizer: Conceptualizer,
    segmenter: Segmenter,
    config: TrainingConfig,
    record_stage=None,
) -> ConstraintClassifier | None:
    """Distant-supervision training of the constraint classifier."""
    record_stage = record_stage or _stage_recorder(None)
    with record_stage("features"):
        droppability = build_droppability_tables(stats, conceptualizer, segmenter)
        extractor = ConstraintFeatureExtractor(
            conceptualizer, stats=stats, droppability=droppability
        )
        rows, labels, weights = constraint_training_rows(
            stats, segmenter, config.drop_label_threshold
        )
        if len(rows) < 10 or len(set(labels)) < 2:
            return None  # not enough distant supervision in this log
        features = extractor.extract_batch(rows)
    with record_stage("classifier"):
        model = LogisticRegression(
            learning_rate=config.classifier_learning_rate,
            epochs=config.classifier_epochs,
            l2=config.classifier_l2,
        ).fit(features, np.asarray(labels, float), np.asarray(weights, float))
    return ConstraintClassifier(extractor, model, threshold=config.constraint_threshold)


def _train_constraint_classifier_vectorized(
    stats: LogStatistics,
    conceptualizer: Conceptualizer,
    config: TrainingConfig,
    record_stage,
) -> ConstraintClassifier | None:
    """Output-identical fast path: one shared drop-evidence pass (the
    reference walks the log once for the droppability tables and again
    for the training rows), the parity-tested compiled segmenter, and
    batched feature extraction."""
    # repro: noqa[REP007] -- sanctioned inversion: opt-in vectorized
    # classifier training borrows the parity-tested compiled segmenter.
    from repro.runtime.compiled import CompiledSegmenter

    # repro: noqa[REP007] -- sanctioned inversion: shared drop-evidence
    # pass lives with the other training fast paths.
    from repro.training.evidence import collect_drop_evidence

    # repro: noqa[REP007] -- sanctioned inversion: opt-in numpy fast
    # path; deferred so core never hard-requires numpy.
    from repro.training.vectorized import (
        build_droppability_tables_vectorized,
        training_rows_from_evidence,
    )

    with record_stage("features"):
        segmenter = CompiledSegmenter(conceptualizer.taxonomy)
        evidence = collect_drop_evidence(stats.log, segmenter)
        droppability = build_droppability_tables_vectorized(evidence, conceptualizer)
        extractor = ConstraintFeatureExtractor(
            conceptualizer, stats=stats, droppability=droppability
        )
        rows, labels, weights = training_rows_from_evidence(
            evidence, config.drop_label_threshold
        )
        if len(rows) < 10 or len(set(labels)) < 2:
            return None  # not enough distant supervision in this log
        features = extractor.extract_training_batch(
            rows, [e.similarity for e in evidence]
        )
    with record_stage("classifier"):
        model = LogisticRegression(
            learning_rate=config.classifier_learning_rate,
            epochs=config.classifier_epochs,
            l2=config.classifier_l2,
        ).fit(features, np.asarray(labels, float), np.asarray(weights, float))
    return ConstraintClassifier(extractor, model, threshold=config.constraint_threshold)


def _is_head_like(log: QueryLog, record, segment_text: str) -> bool:
    segment_record = log.lookup(segment_text)
    if segment_record is None or not segment_record.clicks:
        return False
    return host_path_similarity(record.clicks, segment_record.clicks) >= 0.6
