"""The trained model bundle and its persistence.

:class:`HdmModel` packages everything the runtime needs — taxonomy,
weighted concept patterns, instance-pair memory, and the constraint
classifier — and builds detectors from it. ``save_model`` /
``load_model`` persist a bundle as a directory of versioned files so a
model trained once can be shipped without its training log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.concept_patterns import PatternTable
from repro.core.conceptualizer import Conceptualizer
from repro.core.constraints import ConstraintClassifier, LogisticRegression
from repro.core.detector import DetectorConfig, HeadModifierDetector
from repro.core.features import ConstraintFeatureExtractor, DroppabilityTables
from repro.core.segmentation import Segmenter
from repro.errors import ModelError
from repro.mining.pairs import PairCollection
from repro.querylog.stats import LogStatistics
from repro.taxonomy.serialization import load_taxonomy_tsv, save_taxonomy_tsv
from repro.taxonomy.store import ConceptTaxonomy

_MANIFEST = "manifest.json"
_TAXONOMY = "taxonomy.tsv.gz"
_PATTERNS = "patterns.tsv.gz"
_PAIRS = "pairs.tsv.gz"
_CLASSIFIER = "classifier.json"
_VERSION = 1


@dataclass
class HdmModel:
    """A trained head-modifier-constraint model."""

    taxonomy: ConceptTaxonomy
    patterns: PatternTable
    pairs: PairCollection
    classifier: ConstraintClassifier | None = None
    detector_config: DetectorConfig = field(default_factory=DetectorConfig)

    def conceptualizer(self) -> Conceptualizer:
        """A conceptualizer over the bundled taxonomy."""
        return Conceptualizer(self.taxonomy)

    def detector(
        self,
        stats: LogStatistics | None = None,
        config: DetectorConfig | None = None,
        correct_spelling: bool = False,
    ) -> HeadModifierDetector:
        """Build a ready-to-use detector.

        ``stats`` optionally re-binds the constraint features to a live
        query log (deployed systems have one; offline callers don't).
        ``correct_spelling`` attaches a taxonomy-vocabulary speller for
        typo robustness (small per-query cost).
        """
        conceptualizer = self.conceptualizer()
        classifier = self.classifier
        if classifier is not None and stats is not None:
            classifier = classifier.with_stats(stats)
        speller = None
        if correct_spelling:
            from repro.text.spelling import SpellingNormalizer

            speller = SpellingNormalizer.from_taxonomy(self.taxonomy)
        return HeadModifierDetector(
            patterns=self.patterns,
            conceptualizer=conceptualizer,
            instance_pairs=self.pairs,
            constraint_classifier=classifier,
            segmenter=Segmenter(self.taxonomy),
            config=config or self.detector_config,
            speller=speller,
        )

    def compile(
        self,
        stats: LogStatistics | None = None,
        config: DetectorConfig | None = None,
        correct_spelling: bool = False,
        snapshot_path: str | Path | None = None,
    ):
        """Build the compiled fast-path detector (see :mod:`repro.runtime`).

        Interns all phrases/concepts to integer ids and flattens the
        pattern table, typicality distributions, and pair supports into
        contiguous arrays; taxonomy phrases additionally compile into a
        flat-array segmentation automaton so ``detect_batch`` can run
        whole batches array-at-a-time
        (:class:`~repro.runtime.vectorized.VectorizedDetector`). The
        result detects identically to :meth:`detector` (enforced by the
        runtime parity suite) at a multiple of its throughput, and its
        ``detect_batch`` accepts ``workers`` for persistent
        snapshot-backed process sharding. The compiled detector snapshots
        the model — recompile after mutating taxonomy/patterns/pairs.

        ``snapshot_path`` additionally writes the compiled state as a
        binary snapshot (:mod:`repro.runtime.snapshot`); later sessions
        can skip compilation entirely via
        ``CompiledDetector.load_snapshot(path)``, and worker pools map
        the file read-only instead of re-pickling the model.
        """
        # repro: noqa[REP007] -- sanctioned inversion: compile() is the
        # hand-off point where the reference model builds its runtime
        # twin; deferred so plain core use never loads numpy.
        from repro.runtime.compiled import CompiledDetector

        classifier = self.classifier
        if classifier is not None and stats is not None:
            classifier = classifier.with_stats(stats)
        speller = None
        if correct_spelling:
            from repro.text.spelling import SpellingNormalizer

            speller = SpellingNormalizer.from_taxonomy(self.taxonomy)
        compiled = CompiledDetector(
            patterns=self.patterns,
            conceptualizer=self.conceptualizer(),
            instance_pairs=self.pairs,
            constraint_classifier=classifier,
            config=config or self.detector_config,
            speller=speller,
        )
        if snapshot_path is not None:
            compiled.save_snapshot(snapshot_path)
        return compiled


def save_model(model: HdmModel, directory: str | Path) -> None:
    """Persist a model bundle into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_taxonomy_tsv(model.taxonomy, directory / _TAXONOMY)
    model.patterns.save(directory / _PATTERNS)
    model.pairs.save(directory / _PAIRS)
    manifest = {
        "version": _VERSION,
        "has_classifier": model.classifier is not None,
        "detector_config": {
            "top_k_concepts": model.detector_config.top_k_concepts,
            "instance_weight": model.detector_config.instance_weight,
            "instance_smoothing": model.detector_config.instance_smoothing,
            "min_evidence": model.detector_config.min_evidence,
            "use_connector_heuristic": model.detector_config.use_connector_heuristic,
            "contextualize_modifiers": model.detector_config.contextualize_modifiers,
            "hierarchy_discount": model.detector_config.hierarchy_discount,
            "cache_size": model.detector_config.cache_size,
        },
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    if model.classifier is not None:
        droppability = model.classifier.extractor.droppability
        payload = {
            "model": model.classifier.model.to_dict(),
            "threshold": model.classifier.threshold,
            "concept_droppability": droppability.concept,
            "instance_droppability": droppability.instance,
        }
        (directory / _CLASSIFIER).write_text(json.dumps(payload))


def load_model(directory: str | Path) -> HdmModel:
    """Load a bundle written by :func:`save_model`.

    The loaded classifier has no log statistics bound; pass ``stats`` to
    :meth:`HdmModel.detector` to re-attach them.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise ModelError(f"{directory}: not a model bundle (missing {_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != _VERSION:
        raise ModelError(f"{directory}: unsupported model version {manifest.get('version')}")
    taxonomy = load_taxonomy_tsv(directory / _TAXONOMY)
    patterns = PatternTable.load(directory / _PATTERNS)
    pairs = PairCollection.load(directory / _PAIRS)
    config = DetectorConfig(**manifest["detector_config"])
    classifier = None
    if manifest.get("has_classifier"):
        payload = json.loads((directory / _CLASSIFIER).read_text())
        extractor = ConstraintFeatureExtractor(
            Conceptualizer(taxonomy),
            stats=None,
            droppability=DroppabilityTables(
                concept=payload["concept_droppability"],
                instance=payload["instance_droppability"],
            ),
        )
        classifier = ConstraintClassifier(
            extractor,
            LogisticRegression.from_dict(payload["model"]),
            threshold=payload["threshold"],
        )
    return HdmModel(
        taxonomy=taxonomy,
        patterns=patterns,
        pairs=pairs,
        classifier=classifier,
        detector_config=config,
    )
