"""The runtime head-modifier detector.

Given a short text, the detector:

1. segments it (:class:`repro.core.segmentation.Segmenter`);
2. scores every content segment as head candidate: for candidate ``h``,
   each other content segment ``m`` contributes an interpolation of
   *instance-level memory* (mined pair support) and *concept-pattern*
   evidence ``Σ P(c_m|m) P(c_h|h) · w(c_m → c_h)``;
3. applies the connector heuristic ("cases **for** iphone 5s" names the
   head side) when present;
4. falls back to the rightmost content segment (English compounds are
   head-final) when no semantic evidence exists;
5. optionally classifies each modifier as constraint / non-constraint.

The result is a :class:`Detection` with per-segment roles, concept
readings, and a confidence score.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.concept_patterns import PatternTable
from repro.core.conceptualizer import Conceptualizer
from repro.core.segmentation import (
    CONTENT_KINDS,
    KIND_CONNECTOR,
    KIND_SUBJECTIVE,
    Segment,
    Segmenter,
)
from repro.errors import ModelError
from repro.mining.pairs import PairCollection
from repro.text.lexicon import Lexicon, default_lexicon
from repro.text.normalizer import normalize
from repro.utils.lru import LruCache


class TermRole(enum.Enum):
    """Role of one segment in the detected structure."""

    HEAD = "head"
    MODIFIER = "modifier"
    OTHER = "other"


@dataclass(frozen=True, slots=True)
class DetectedTerm:
    """One segment with its detected role and concept readings."""

    text: str
    role: TermRole
    kind: str
    concepts: tuple[tuple[str, float], ...] = ()
    is_constraint: bool | None = None

    @property
    def top_concept(self) -> str | None:
        """Most probable concept reading, if any."""
        return self.concepts[0][0] if self.concepts else None


@dataclass(frozen=True)
class Detection:
    """Full detection result for one short text."""

    query: str
    terms: tuple[DetectedTerm, ...]
    score: float
    method: str

    @property
    def head(self) -> str | None:
        """Text of the head segment (None when undetected)."""
        for term in self.terms:
            if term.role is TermRole.HEAD:
                return term.text
        return None

    @property
    def head_term(self) -> DetectedTerm | None:
        """The head's full term record (None when undetected)."""
        for term in self.terms:
            if term.role is TermRole.HEAD:
                return term
        return None

    @property
    def modifiers(self) -> tuple[str, ...]:
        """Texts of all modifier segments, in query order."""
        return tuple(t.text for t in self.terms if t.role is TermRole.MODIFIER)

    @property
    def modifier_terms(self) -> tuple[DetectedTerm, ...]:
        """Full term records of all modifiers."""
        return tuple(t for t in self.terms if t.role is TermRole.MODIFIER)

    @property
    def constraints(self) -> tuple[str, ...]:
        """Texts of modifiers flagged as constraints."""
        return tuple(
            t.text
            for t in self.terms
            if t.role is TermRole.MODIFIER and t.is_constraint
        )

    def explain(self) -> str:
        """Human-readable one-line breakdown (for examples and debugging)."""
        parts = []
        for term in self.terms:
            tag = term.role.value
            if term.role is TermRole.MODIFIER and term.is_constraint is not None:
                tag += ":constraint" if term.is_constraint else ":preference"
            concept = f" ({term.top_concept})" if term.top_concept else ""
            parts.append(f"[{term.text} → {tag}{concept}]")
        return " ".join(parts)


@dataclass(frozen=True)
class DetectorConfig:
    """Detector knobs (defaults follow the ablations in EXPERIMENTS.md)."""

    top_k_concepts: int = 5
    #: Interpolation between instance-level memory and concept patterns.
    instance_weight: float = 0.35
    #: Smoothing count in the instance-support ratio.
    instance_smoothing: float = 5.0
    #: Below this best-candidate score the detector falls back to position.
    min_evidence: float = 1e-4
    use_connector_heuristic: bool = True
    #: Disambiguate modifier concepts using the detected head's concepts.
    contextualize_modifiers: bool = True
    #: Attenuation for super-concept readings during pattern matching
    #: (0 disables hierarchy backoff). Pair with the same setting in
    #: TrainingConfig so the table contains the coarse patterns.
    hierarchy_discount: float = 0.0
    #: Bound on memoization caches (concept readings, compiled affinities).
    #: Long-running services see unbounded vocabulary; the caches evict
    #: least-recently-used phrases past this size.
    cache_size: int = 50_000

    def __post_init__(self) -> None:
        if not 0 <= self.instance_weight <= 1:
            raise ModelError("instance_weight must be in [0, 1]")
        if self.top_k_concepts <= 0:
            raise ModelError("top_k_concepts must be positive")
        if not 0 <= self.hierarchy_discount <= 1:
            raise ModelError("hierarchy_discount must be in [0, 1]")
        if self.cache_size <= 0:
            raise ModelError("cache_size must be positive")


class HeadModifierDetector:
    """Scores head candidates against the weighted concept-pattern table."""

    def __init__(
        self,
        patterns: PatternTable,
        conceptualizer: Conceptualizer,
        instance_pairs: PairCollection | None = None,
        constraint_classifier=None,
        segmenter: Segmenter | None = None,
        lexicon: Lexicon | None = None,
        config: DetectorConfig | None = None,
        speller=None,
    ) -> None:
        """``speller`` is an optional
        :class:`repro.text.spelling.SpellingNormalizer` applied to the
        normalized text before segmentation (typo robustness)."""
        self._patterns = patterns
        self._conceptualizer = conceptualizer
        self._pairs = instance_pairs
        self._classifier = constraint_classifier
        self._lexicon = lexicon or default_lexicon()
        self._segmenter = segmenter or Segmenter(conceptualizer.taxonomy, self._lexicon)
        self._config = config or DetectorConfig()
        self._speller = speller
        self._concept_cache: LruCache[str, tuple[tuple[str, float], ...]] = LruCache(
            self._config.cache_size
        )

    @property
    def patterns(self) -> PatternTable:
        """The weighted concept-pattern table in use."""
        return self._patterns

    @property
    def conceptualizer(self) -> Conceptualizer:
        """The conceptualizer in use."""
        return self._conceptualizer

    @property
    def segmenter(self) -> Segmenter:
        """The segmenter in use."""
        return self._segmenter

    @property
    def instance_pairs(self) -> PairCollection | None:
        """The mined instance-pair memory (None when disabled)."""
        return self._pairs

    @property
    def config(self) -> DetectorConfig:
        """The detector's configuration."""
        return self._config

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def detect(self, text: str) -> Detection:
        """Detect head, modifiers, and (when a classifier is attached)
        constraints in ``text``."""
        query = normalize(text)
        if self._speller is not None:
            query = self._speller.correct(query)
        segments = self._segmenter.segment(query)
        if not segments:
            return Detection(query=query, terms=(), score=0.0, method="empty")
        content = [s for s in segments if s.kind in CONTENT_KINDS]
        if not content:
            return self._all_structural(query, segments)
        if len(content) == 1:
            return self._finish(query, segments, head=content[0], score=1.0, method="single")
        head, score, method = self._choose_head(segments, content)
        return self._finish(query, segments, head=head, score=score, method=method)

    def detect_batch(self, texts) -> list[Detection]:
        """Detect over an iterable of texts, preserving input order.

        Exact-duplicate texts are detected once and share the (immutable)
        :class:`Detection` — real query traffic is heavily duplicated, and
        re-normalizing/re-segmenting the same string is pure waste.
        """
        memo: dict[str, Detection] = {}
        results: list[Detection] = []
        for text in texts:
            detection = memo.get(text)
            if detection is None:
                detection = self.detect(text)
                memo[text] = detection
            results.append(detection)
        return results

    # ------------------------------------------------------------------
    # head choice
    # ------------------------------------------------------------------
    def _choose_head(
        self, segments: list[Segment], content: list[Segment]
    ) -> tuple[Segment, float, str]:
        candidates = content
        connector_side = self._connector_head_side(segments)
        if connector_side is not None:
            side_content = [s for s in connector_side if s.kind in CONTENT_KINDS]
            if side_content:
                candidates = side_content
        scored = [
            (self._head_score(candidate, content), candidate) for candidate in candidates
        ]
        scored.sort(key=lambda sc: (-sc[0], sc[1].start))
        best_score, best = scored[0]
        if best_score < self._config.min_evidence:
            if connector_side is not None and candidates is not content:
                # Connector names the side; position picks within it.
                return candidates[-1], 0.25, "connector"
            return content[-1], 0.1, "fallback"
        margin = 1.0
        if len(scored) > 1 and best_score > 0:
            margin = (best_score - scored[1][0]) / best_score
        confidence = min(1.0, 0.5 + 0.5 * margin)
        method = "connector+pattern" if candidates is not content else "pattern"
        return best, confidence, method

    def _connector_head_side(self, segments: list[Segment]) -> list[Segment] | None:
        """Segments on the head side of a single connector, if present."""
        if not self._config.use_connector_heuristic:
            return None
        connector_positions = [
            i for i, s in enumerate(segments) if s.kind == KIND_CONNECTOR
        ]
        if len(connector_positions) != 1:
            return None
        index = connector_positions[0]
        left, right = segments[:index], segments[index + 1 :]
        if not left or not right:
            return None
        return left

    def _head_score(self, candidate: Segment, content: list[Segment]) -> float:
        total = 0.0
        for other in content:
            if other is candidate:
                continue
            total += self._pair_affinity(modifier=other.text, head=candidate.text)
        return total

    def _pair_affinity(self, modifier: str, head: str) -> float:
        """Interpolated evidence that ``modifier`` modifies ``head``."""
        cfg = self._config
        instance = self._instance_score(modifier, head)
        pattern = self._pattern_score(modifier, head)
        return cfg.instance_weight * instance + (1 - cfg.instance_weight) * pattern

    def _instance_score(self, modifier: str, head: str) -> float:
        if self._pairs is None:
            return 0.0
        forward = self._pairs.support(modifier, head)
        backward = self._pairs.support(head, modifier)
        denominator = forward + backward + self._config.instance_smoothing
        return forward / denominator if denominator > 0 else 0.0

    def _pattern_score(self, modifier: str, head: str) -> float:
        modifier_concepts = self._concepts_of(modifier)
        head_concepts = self._concepts_of(head)
        score = 0.0
        for m_concept, m_prob in modifier_concepts:
            for h_concept, h_prob in head_concepts:
                if m_concept == h_concept:
                    continue
                score += m_prob * h_prob * self._patterns.score(m_concept, h_concept)
        return score

    def _concepts_of(self, phrase: str) -> tuple[tuple[str, float], ...]:
        cached = self._concept_cache.get(phrase)
        if cached is None:
            readings = self._conceptualizer.conceptualize(
                phrase, self._config.top_k_concepts
            )
            if self._config.hierarchy_discount > 0 and readings:
                readings = self._conceptualizer.expand_with_ancestors(
                    readings, self._config.hierarchy_discount
                )
            cached = tuple(readings)
            self._concept_cache.put(phrase, cached)
        return cached

    # ------------------------------------------------------------------
    # assembling the result
    # ------------------------------------------------------------------
    def _finish(
        self,
        query: str,
        segments: list[Segment],
        head: Segment,
        score: float,
        method: str,
    ) -> Detection:
        head_concepts = self._concepts_of(head.text)
        head_concept_dict = dict(head_concepts)
        terms = []
        for segment in segments:
            if segment is head:
                terms.append(
                    DetectedTerm(segment.text, TermRole.HEAD, segment.kind, head_concepts)
                )
            elif segment.kind in CONTENT_KINDS or segment.kind == KIND_SUBJECTIVE:
                concepts = self._modifier_concepts(segment.text, head_concept_dict)
                terms.append(
                    DetectedTerm(segment.text, TermRole.MODIFIER, segment.kind, concepts)
                )
            else:
                terms.append(DetectedTerm(segment.text, TermRole.OTHER, segment.kind))
        detection = Detection(query=query, terms=tuple(terms), score=score, method=method)
        if self._classifier is not None:
            detection = self._classifier.annotate(detection)
        return detection

    def _modifier_concepts(
        self, phrase: str, head_concepts: dict[str, float]
    ) -> tuple[tuple[str, float], ...]:
        if not self._config.contextualize_modifiers or not head_concepts:
            return self._concepts_of(phrase)
        ranked = self._conceptualizer.conceptualize_with_context(
            phrase,
            head_concepts,
            compatibility=lambda cm, ch: self._patterns.weight(cm, ch),
            top_k=self._config.top_k_concepts,
        )
        return tuple(ranked)

    def _all_structural(self, query: str, segments: list[Segment]) -> Detection:
        """No content segments at all (e.g. "best of the best")."""
        terms = tuple(
            DetectedTerm(
                s.text,
                TermRole.MODIFIER if s.kind == KIND_SUBJECTIVE else TermRole.OTHER,
                s.kind,
            )
            for s in segments
        )
        return Detection(query=query, terms=terms, score=0.0, method="structural")
