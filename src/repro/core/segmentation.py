"""Short-text segmentation.

Queries arrive as flat token strings; before head/modifier reasoning the
detector must know that "new york hotels" is ["new york", "hotels"], not
three tokens. The segmenter runs a Viterbi dynamic program over token
positions where multi-token spans are only allowed when they are taxonomy
instances, scored to prefer long, popular dictionary matches.

Each output :class:`Segment` is tagged with a *kind* so the detector can
route it: taxonomy instances and unknown words can bear head/modifier
roles; subjective adjectives are modifier-only; connectors, intent verbs,
and stopwords are structural.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.taxonomy.store import ConceptTaxonomy
from repro.text.lexicon import Lexicon, default_lexicon
from repro.text.normalizer import normalize

#: Segment kinds, in routing order.
KIND_INSTANCE = "instance"
KIND_SUBJECTIVE = "subjective"
KIND_CONNECTOR = "connector"
KIND_VERB = "verb"
KIND_STOPWORD = "stopword"
KIND_WORD = "word"

#: Kinds that may carry a head or modifier role.
CONTENT_KINDS = frozenset({KIND_INSTANCE, KIND_WORD})


@dataclass(frozen=True, slots=True)
class Segment:
    """A contiguous token span of the query."""

    text: str
    start: int
    end: int
    kind: str

    @property
    def num_tokens(self) -> int:
        """Number of tokens the segment spans."""
        return self.end - self.start

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.text


class Segmenter:
    """Dictionary-driven Viterbi segmenter."""

    def __init__(
        self,
        taxonomy: ConceptTaxonomy | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        self._taxonomy = taxonomy
        self._lexicon = lexicon or default_lexicon()
        self._max_span = taxonomy.max_instance_tokens() if taxonomy else 1
        self._max_span = max(1, self._max_span)

    def segment(self, text: str) -> list[Segment]:
        """Segment ``text`` into the best-scoring span sequence.

        The DP maximizes total span score; ties prefer fewer segments
        (i.e. longer dictionary matches).
        """
        tokens = normalize(text).split()
        if not tokens:
            return []
        n = len(tokens)
        # best[i] = (score, -segments, backpointer_start) for prefix of length i
        best: list[tuple[float, int, int] | None] = [None] * (n + 1)
        best[0] = (0.0, 0, -1)
        for end in range(1, n + 1):
            for start in range(max(0, end - self._max_span), end):
                prev = best[start]
                if prev is None:
                    continue
                span_score = self._span_score(tokens[start:end])
                if span_score is None:
                    continue
                candidate = (prev[0] + span_score, prev[1] - 1, start)
                if best[end] is None or candidate[:2] > best[end][:2]:
                    best[end] = candidate
        return self._backtrack(tokens, best)

    def _span_score(self, span: list[str]) -> float | None:
        """Score of one candidate span; ``None`` when disallowed."""
        phrase = " ".join(span)
        if len(span) == 1:
            return self._single_token_score(phrase)
        if self._taxonomy is not None and self._taxonomy.has_instance(phrase):
            popularity = math.log1p(self._taxonomy.instance_total(phrase))
            return len(span) ** 2 * (1.0 + 0.1 * popularity)
        return None  # multi-token spans must be dictionary instances

    def _single_token_score(self, token: str) -> float:
        if self._taxonomy is not None and self._taxonomy.has_instance(token):
            return 1.0 + 0.1 * math.log1p(self._taxonomy.instance_total(token))
        if self._lexicon.is_subjective(token):
            return 0.8
        if token in self._lexicon.connectors:
            return 0.6
        if token in self._lexicon.intent_verbs:
            return 0.6
        if self._lexicon.is_stopword(token):
            return 0.5
        return 0.7  # unknown word

    def _kind_of(self, phrase: str, num_tokens: int) -> str:
        if self._taxonomy is not None and self._taxonomy.has_instance(phrase):
            return KIND_INSTANCE
        if num_tokens > 1:
            return KIND_WORD  # pragma: no cover - multi-token spans are instances
        if self._lexicon.is_subjective(phrase):
            return KIND_SUBJECTIVE
        if phrase in self._lexicon.connectors:
            return KIND_CONNECTOR
        if phrase in self._lexicon.intent_verbs:
            return KIND_VERB
        if self._lexicon.is_stopword(phrase):
            return KIND_STOPWORD
        return KIND_WORD

    def _backtrack(
        self, tokens: list[str], best: list[tuple[float, int, int] | None]
    ) -> list[Segment]:
        segments: list[Segment] = []
        end = len(tokens)
        while end > 0:
            entry = best[end]
            assert entry is not None  # every prefix is reachable via singles
            start = entry[2]
            phrase = " ".join(tokens[start:end])
            segments.append(
                Segment(phrase, start, end, self._kind_of(phrase, end - start))
            )
            end = start
        segments.reverse()
        return segments
