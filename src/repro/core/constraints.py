"""Constraint vs. non-constraint classification of modifiers.

Two classifiers:

- :class:`ConstraintClassifier` — the paper's approach: a trained model
  over the semantic + behavioural features of
  :mod:`repro.core.features`. Training labels come from *distant
  supervision*: in the log, dropping a modifier either left the click
  distribution intact (non-constraint) or changed it (constraint), so no
  human labels are required.
- :class:`RuleConstraintClassifier` — the lexicon baseline: subjective
  adjectives and intent verbs are non-constraints, everything else is a
  constraint.

The logistic regression is implemented from scratch on numpy (full-batch
gradient descent with L2); the model is tiny, so simplicity beats pulling
in a solver.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import Detection, DetectedTerm, TermRole
from repro.core.features import ConstraintFeatureExtractor
from repro.errors import ModelError, NotFittedError
from repro.text.lexicon import Lexicon, default_lexicon


class LogisticRegression:
    """Minimal L2-regularized logistic regression (full-batch GD)."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 400,
        l2: float = 1e-3,
    ) -> None:
        if learning_rate <= 0 or epochs <= 0 or l2 < 0:
            raise ModelError("invalid logistic regression hyperparameters")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        """Fit on ``features`` (n×d) against binary ``labels`` (n,)."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or labels.ndim != 1 or len(features) != len(labels):
            raise ModelError("features must be (n, d) and labels (n,)")
        if len(features) == 0:
            raise ModelError("cannot fit on an empty training set")
        if not set(np.unique(labels)) <= {0.0, 1.0}:
            raise ModelError("labels must be binary")
        n, d = features.shape
        weight = (
            np.ones(n) if sample_weight is None else np.asarray(sample_weight, float)
        )
        if weight.shape != (n,) or (weight < 0).any():
            raise ModelError("sample_weight must be non-negative with shape (n,)")
        weight = weight / max(weight.sum(), 1e-12)
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.epochs):
            z = features @ w + b
            p = _sigmoid(z)
            residual = (p - labels) * weight
            grad_w = features.T @ residual + self.l2 * w
            grad_b = residual.sum()
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights = w
        self.bias = b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1) for each row."""
        if self.weights is None:
            raise NotFittedError("LogisticRegression is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        return _sigmoid(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    # -- persistence --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the fitted model."""
        if self.weights is None:
            raise NotFittedError("cannot serialize an unfitted model")
        return {
            "weights": self.weights.tolist(),
            "bias": self.bias,
            "learning_rate": self.learning_rate,
            "epochs": self.epochs,
            "l2": self.l2,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogisticRegression":
        """Rebuild a fitted model from :meth:`to_dict` output."""
        model = cls(
            learning_rate=data["learning_rate"],
            epochs=data["epochs"],
            l2=data["l2"],
        )
        model.weights = np.asarray(data["weights"], dtype=np.float64)
        model.bias = float(data["bias"])
        return model


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


class ConstraintClassifier:
    """Feature-based constraint detector applied to detection modifiers."""

    def __init__(
        self,
        extractor: ConstraintFeatureExtractor,
        model: LogisticRegression,
        threshold: float = 0.5,
    ) -> None:
        if not 0 < threshold < 1:
            raise ModelError("threshold must be in (0, 1)")
        self._extractor = extractor
        self._model = model
        self._threshold = threshold

    @property
    def extractor(self) -> ConstraintFeatureExtractor:
        """The feature extractor this classifier scores with."""
        return self._extractor

    @property
    def model(self) -> LogisticRegression:
        """The fitted logistic-regression model."""
        return self._model

    @property
    def threshold(self) -> float:
        """Decision threshold on the constraint probability."""
        return self._threshold

    def constraint_probability(self, query: str, modifier: str) -> float:
        """P(``modifier`` is a constraint of ``query``)."""
        features = self._extractor.extract(query, modifier)
        return float(self._model.predict_proba(features)[0])

    def is_constraint(self, query: str, modifier: str) -> bool:
        """Whether ``modifier`` is a constraint of ``query``."""
        return self.constraint_probability(query, modifier) >= self._threshold

    def annotate(self, detection: Detection) -> Detection:
        """Return ``detection`` with every modifier's constraint flag set."""
        terms = tuple(
            self._annotate_term(detection.query, term) for term in detection.terms
        )
        return Detection(
            query=detection.query,
            terms=terms,
            score=detection.score,
            method=detection.method,
        )

    def _annotate_term(self, query: str, term: DetectedTerm) -> DetectedTerm:
        if term.role is not TermRole.MODIFIER:
            return term
        return DetectedTerm(
            text=term.text,
            role=term.role,
            kind=term.kind,
            concepts=term.concepts,
            is_constraint=self.is_constraint(query, term.text),
        )

    def with_stats(self, stats) -> "ConstraintClassifier":
        """A copy whose features use different (or no) log statistics."""
        return ConstraintClassifier(
            self._extractor.with_stats(stats), self._model, self._threshold
        )

    def calibrated(
        self,
        rows: list[tuple[str, str]],
        labels: list[bool],
        grid: int = 19,
    ) -> "ConstraintClassifier":
        """A copy whose threshold maximizes F1 on a validation set.

        ``rows`` are (query, modifier) pairs with binary ``labels``
        (True = constraint). The default 0.5 threshold is right when the
        distant-supervision label balance matches deployment; calibration
        fixes it when it does not.
        """
        if len(rows) != len(labels) or not rows:
            raise ModelError("rows and labels must be non-empty and aligned")
        probabilities = [
            self.constraint_probability(query, modifier) for query, modifier in rows
        ]
        best_threshold, best_f1 = self._threshold, -1.0
        for step in range(1, grid + 1):
            threshold = step / (grid + 1)
            tp = fp = fn = 0
            for probability, label in zip(probabilities, labels):
                predicted = probability >= threshold
                if predicted and label:
                    tp += 1
                elif predicted and not label:
                    fp += 1
                elif not predicted and label:
                    fn += 1
            precision = tp / (tp + fp) if tp + fp else 0.0
            recall = tp / (tp + fn) if tp + fn else 0.0
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            if f1 > best_f1:
                best_threshold, best_f1 = threshold, f1
        return ConstraintClassifier(self._extractor, self._model, best_threshold)


class RuleConstraintClassifier:
    """Lexicon baseline: subjective/verb modifiers are non-constraints."""

    def __init__(self, lexicon: Lexicon | None = None) -> None:
        self._lexicon = lexicon or default_lexicon()

    def is_constraint(self, query: str, modifier: str) -> bool:
        """Constraint unless every word is subjective or an intent verb."""
        words = modifier.split()
        non_constraint = all(
            self._lexicon.is_subjective(w) or w in self._lexicon.intent_verbs
            for w in words
        )
        return not non_constraint

    def constraint_probability(self, query: str, modifier: str) -> float:
        """1.0 or 0.0 — the rule is binary."""
        return 1.0 if self.is_constraint(query, modifier) else 0.0

    def annotate(self, detection: Detection) -> Detection:
        """Return ``detection`` with rule-based constraint flags set."""
        terms = tuple(
            DetectedTerm(
                text=t.text,
                role=t.role,
                kind=t.kind,
                concepts=t.concepts,
                is_constraint=(
                    self.is_constraint(detection.query, t.text)
                    if t.role is TermRole.MODIFIER
                    else t.is_constraint
                ),
            )
            for t in detection.terms
        )
        return Detection(
            query=detection.query,
            terms=terms,
            score=detection.score,
            method=detection.method,
        )
