"""Weighted concept patterns — the paper's central artifact.

An instance pair like (``iphone 5s`` → ``smart cover``) says nothing about
(``galaxy s4`` → ``screen protector``); its conceptualization
(``smartphone`` → ``phone accessory``) covers both. Aggregating the
conceptualizations of *all* mined instance pairs, weighted by pair support
and sense typicality, yields a table of weighted concept patterns:

    w(c_m → c_h) = Σ_pairs support(m, h) · P(c_m | m) · P(c_h | h)

The table is then **pruned** to the smallest prefix (by weight) covering a
target fraction of total mass — the paper's "concise" property: a few
hundred patterns generalize millions of instance pairs.
"""

from __future__ import annotations

import gzip
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.core.conceptualizer import Conceptualizer
from repro.errors import ModelError
from repro.mining.pairs import PairCollection


@dataclass(frozen=True, slots=True)
class ConceptPattern:
    """A directed concept-level head-modifier pattern."""

    modifier_concept: str
    head_concept: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.modifier_concept}] -> [{self.head_concept}]"


class PatternTable:
    """Weighted concept patterns with lookup, pruning, and persistence."""

    def __init__(self, weights: dict[ConceptPattern, float] | None = None) -> None:
        self._weights: dict[ConceptPattern, float] = {}
        for pattern, weight in (weights or {}).items():
            self.add(pattern, weight)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, pattern: ConceptPattern, weight: float) -> None:
        """Accumulate ``weight`` onto a pattern."""
        if weight <= 0:
            raise ModelError(f"pattern weight must be positive: {pattern}")
        self._weights[pattern] = self._weights.get(pattern, 0.0) + weight

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def weight(self, modifier_concept: str, head_concept: str) -> float:
        """Raw accumulated weight of a pattern (0 when absent)."""
        return self._weights.get(ConceptPattern(modifier_concept, head_concept), 0.0)

    def score(self, modifier_concept: str, head_concept: str) -> float:
        """Normalized pattern strength in [0, 1]: weight / max weight.

        Normalizing by the maximum keeps scores comparable across tables
        of different sizes (pruning sweeps, log-size sweeps).
        """
        if not self._weights:
            return 0.0
        return self.weight(modifier_concept, head_concept) / self.max_weight

    def directionality(self, concept_a: str, concept_b: str) -> float:
        """Signed preference for ``a → b`` over ``b → a`` in [-1, 1]."""
        forward = self.weight(concept_a, concept_b)
        backward = self.weight(concept_b, concept_a)
        total = forward + backward
        if total == 0:
            return 0.0
        return (forward - backward) / total

    @property
    def max_weight(self) -> float:
        """Largest single pattern weight (normalization base for scores)."""
        return max(self._weights.values(), default=0.0)

    @property
    def total_weight(self) -> float:
        """Sum of all pattern weights (the table's evidence mass)."""
        return sum(self._weights.values())

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, pattern: ConceptPattern) -> bool:
        return pattern in self._weights

    def items(self) -> list[tuple[ConceptPattern, float]]:
        """All ``(pattern, weight)`` entries in insertion order.

        Unlike :meth:`top` this does not sort — it is the cheap export
        used by the compiled runtime to flatten the table into arrays.
        """
        return list(self._weights.items())

    def concepts(self) -> set[str]:
        """Every concept mentioned on either side of a pattern."""
        vocabulary: set[str] = set()
        for pattern in self._weights:
            vocabulary.add(pattern.modifier_concept)
            vocabulary.add(pattern.head_concept)
        return vocabulary

    def top(self, n: int | None = None) -> list[tuple[ConceptPattern, float]]:
        """Patterns by descending weight (deterministic tie-break)."""
        ordered = sorted(
            self._weights.items(),
            key=lambda kv: (-kv[1], kv[0].modifier_concept, kv[0].head_concept),
        )
        return ordered if n is None else ordered[:n]

    def merge(self, other: "PatternTable", scale: float = 1.0) -> None:
        """Accumulate another table's weights into this one.

        Derivation is linear in pair support, so merging the table derived
        from a new log slice is equivalent to re-deriving from the merged
        pair collections — the basis of incremental model updates.
        ``scale`` discounts the incoming table (e.g. time-decay old data
        by merging into a scaled copy instead).
        """
        if scale <= 0:
            raise ModelError("scale must be positive")
        for pattern, weight in other.top():
            self.add(pattern, weight * scale)

    def scaled(self, factor: float) -> "PatternTable":
        """A copy with every weight multiplied by ``factor``."""
        if factor <= 0:
            raise ModelError("factor must be positive")
        return PatternTable({p: w * factor for p, w in self.top()})

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def pruned_to_count(self, max_patterns: int) -> "PatternTable":
        """Keep only the ``max_patterns`` heaviest patterns."""
        if max_patterns <= 0:
            raise ModelError("max_patterns must be positive")
        return PatternTable(dict(self.top(max_patterns)))

    def pruned_to_mass(self, mass: float) -> "PatternTable":
        """Keep the smallest weight-ordered prefix covering ``mass`` of the
        total weight (the paper's conciseness knob)."""
        if not 0 < mass <= 1:
            raise ModelError("mass must be in (0, 1]")
        target = self.total_weight * mass
        kept: dict[ConceptPattern, float] = {}
        accumulated = 0.0
        for pattern, weight in self.top():
            kept[pattern] = weight
            accumulated += weight
            if accumulated >= target:
                break
        return PatternTable(kept)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the table as TSV (gzip when the suffix is ``.gz``)."""
        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            with _open_write(tmp, gz=path.suffix == ".gz") as out:
                out.write("# repro-patterns v1\n")
                for pattern, weight in self.top():
                    out.write(
                        f"{pattern.modifier_concept}\t{pattern.head_concept}\t{weight!r}\n"
                    )
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "PatternTable":
        """Read a table written by :meth:`save`.

        Raises :class:`ModelError` on malformed or truncated files.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(path)
        try:
            return cls._load(path)
        except (EOFError, OSError, UnicodeDecodeError) as exc:
            raise ModelError(f"{path}: unreadable pattern file ({exc})") from exc

    @classmethod
    def _load(cls, path: Path) -> "PatternTable":
        table = cls()
        with _open_read(path, gz=path.suffix == ".gz") as handle:
            header = handle.readline().rstrip("\n")
            if header != "# repro-patterns v1":
                raise ModelError(f"{path}: not a pattern table (header {header!r})")
            for line_no, line in enumerate(handle, start=2):
                line = line.rstrip("\n")
                if not line:
                    continue
                fields = line.split("\t")
                if len(fields) != 3:
                    raise ModelError(f"{path}:{line_no}: malformed pattern line")
                try:
                    weight = float(fields[2])
                except ValueError as exc:
                    raise ModelError(f"{path}:{line_no}: bad weight {fields[2]!r}") from exc
                table.add(ConceptPattern(fields[0], fields[1]), weight)
        return table


def derive_pattern_table(
    pairs: PairCollection,
    conceptualizer: Conceptualizer,
    top_k_concepts: int = 5,
    hierarchy_discount: float = 0.0,
) -> PatternTable:
    """Aggregate mined instance pairs into a weighted concept pattern table.

    Each pair contributes its support, spread over the cross product of
    the modifier's and head's top-``k`` concept readings weighted by
    typicality. Pairs whose sides do not conceptualize are skipped — they
    are exactly the composite/noise pairs mining could not avoid, and
    dropping them here is what makes the concept level *cleaner* than the
    instance level.

    With ``hierarchy_discount`` > 0, every contribution to ``(c_m → c_h)``
    is also credited, attenuated, to the concepts' *super-concepts* (e.g.
    (smartphone → phone accessory) also feeds (device → accessory)).
    These coarse patterns cover sibling-concept combinations never mined
    directly — experiment A4.
    """
    table = PatternTable()
    expand = hierarchy_discount > 0
    for modifier, head, support in pairs.items():
        modifier_concepts = conceptualizer.conceptualize(modifier, top_k_concepts)
        if not modifier_concepts:
            continue
        head_concepts = conceptualizer.conceptualize(head, top_k_concepts)
        if not head_concepts:
            continue
        if expand:
            modifier_concepts = conceptualizer.expand_with_ancestors(
                modifier_concepts, hierarchy_discount
            )
            head_concepts = conceptualizer.expand_with_ancestors(
                head_concepts, hierarchy_discount
            )
        for m_concept, m_prob in modifier_concepts:
            for h_concept, h_prob in head_concepts:
                if m_concept == h_concept:
                    continue
                weight = support * m_prob * h_prob
                if weight > 0:
                    table.add(ConceptPattern(m_concept, h_concept), weight)
    return table


def _open_write(path: Path, gz: bool) -> IO[str]:
    if gz:
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path, gz: bool) -> IO[str]:
    if gz:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")
