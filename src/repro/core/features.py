"""Feature extraction for the constraint classifier.

Constraints are *specific* modifiers (brands, models, places, years) whose
removal changes what the short text asks for; non-constraints are
*subjective* or generic preferences. The features capture both faces:

- lexical subjectivity (the word itself is evaluative),
- semantic specificity (how narrow/typical the modifier's concepts are),
- behavioural droppability (what happened in the log when users dropped
  it — directly per query when log statistics are available, otherwise
  generalized through a droppability table learned at training time, at
  instance level where evidence exists and at *concept* level beyond it).

The concept-droppability table is the same generalization move as the
concept patterns: evidence observed on some instances transfers to unseen
instances of the same concept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.conceptualizer import Conceptualizer
from repro.querylog.stats import LogStatistics, host_path_similarity
from repro.text.lexicon import Lexicon, default_lexicon

FEATURE_NAMES: tuple[str, ...] = (
    "subjective",
    "intent_verb",
    "known_instance",
    "ambiguity",
    "concept_breadth",
    "specificity",
    "numeric",
    "multiword",
    "drop_similarity",
    "drop_evidence_missing",
    "instance_droppability",
    "concept_droppability",
    "idf",
)

#: Ambiguity / breadth entropies are squashed into [0, 1] at these scales.
_AMBIGUITY_SCALE = 2.0
_BREADTH_SCALE = 4.0
_IDF_SCALE = 10.0

#: The only two features that depend on the query, not just the modifier.
_DROP_SIMILARITY = FEATURE_NAMES.index("drop_similarity")
_DROP_EVIDENCE_MISSING = FEATURE_NAMES.index("drop_evidence_missing")


def _squash(value: float, scale: float) -> float:
    """Clamp a non-negative quantity into [0, 1] at the given scale."""
    return min(1.0, max(0.0, value) / scale)


@dataclass(frozen=True)
class DroppabilityTables:
    """Training-time aggregates of click-drop behaviour.

    ``instance`` maps a modifier phrase to its mean observed drop
    similarity; ``concept`` generalizes the same evidence to concept level
    for phrases never observed as droppable segments.
    """

    concept: dict[str, float] = field(default_factory=dict)
    instance: dict[str, float] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when neither table holds any evidence."""
        return not self.concept and not self.instance


class ConstraintFeatureExtractor:
    """Maps (query, modifier) to a dense feature vector."""

    def __init__(
        self,
        conceptualizer: Conceptualizer,
        stats: LogStatistics | None = None,
        droppability: DroppabilityTables | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        self._conceptualizer = conceptualizer
        self._stats = stats
        self._droppability = droppability or DroppabilityTables()
        self._lexicon = lexicon or default_lexicon()

    @property
    def num_features(self) -> int:
        """Dimensionality of the feature vector."""
        return len(FEATURE_NAMES)

    @property
    def droppability(self) -> DroppabilityTables:
        """The droppability tables bound to this extractor."""
        return self._droppability

    def with_stats(self, stats: LogStatistics | None) -> "ConstraintFeatureExtractor":
        """A copy bound to different (or no) log statistics."""
        return ConstraintFeatureExtractor(
            self._conceptualizer, stats, self._droppability, self._lexicon
        )

    def extract(self, query: str, modifier: str) -> np.ndarray:
        """Feature vector for ``modifier`` inside ``query``."""
        vector = self._modifier_vector(modifier)
        drop_sim, drop_missing = self._drop_evidence(query, modifier)
        vector[_DROP_SIMILARITY] = drop_sim
        vector[_DROP_EVIDENCE_MISSING] = drop_missing
        return vector

    def _modifier_vector(self, modifier: str) -> np.ndarray:
        """All features that depend only on the modifier (fresh array;
        the two drop-evidence slots are left as placeholders)."""
        words = modifier.split()
        concepts = self._conceptualizer.conceptualize(modifier, top_k=3)
        top_concept = concepts[0][0] if concepts else None

        subjective = float(all(self._lexicon.is_subjective(w) for w in words))
        intent_verb = float(all(w in self._lexicon.intent_verbs for w in words))
        known = float(bool(concepts))
        ambiguity = _squash(
            self._conceptualizer.scorer.instance_ambiguity(modifier), _AMBIGUITY_SCALE
        )
        breadth = (
            _squash(self._conceptualizer.scorer.concept_breadth(top_concept), _BREADTH_SCALE)
            if top_concept
            else 0.0
        )
        specificity = self._specificity(modifier)
        numeric = float(any(any(ch.isdigit() for ch in w) for w in words))
        multiword = float(len(words) > 1)
        instance_drop = self._droppability.instance.get(modifier, 0.5)
        concept_drop = self._concept_droppability_of(concepts)
        idf = self._idf(modifier)

        return np.array(
            [
                subjective,
                intent_verb,
                known,
                ambiguity,
                breadth,
                specificity,
                numeric,
                multiword,
                0.0,  # drop_similarity placeholder
                0.0,  # drop_evidence_missing placeholder
                instance_drop,
                concept_drop,
                idf,
            ],
            dtype=np.float64,
        )

    def extract_batch(self, rows: list[tuple[str, str]]) -> np.ndarray:
        """Feature matrix for ``(query, modifier)`` rows."""
        if not rows:
            return np.zeros((0, self.num_features))
        return np.vstack([self.extract(q, m) for q, m in rows])

    def extract_training_batch(
        self,
        rows: list[tuple[str, str]],
        drop_similarities: list[float],
    ) -> np.ndarray:
        """Feature matrix for rows whose drop similarity is already known.

        The training pipeline measured every row's drop similarity while
        collecting evidence, so re-deriving it here (the only per-query
        feature) would be pure waste; everything else is a function of the
        modifier alone and is memoized per distinct modifier. Bit-identical
        to :meth:`extract_batch` on the same rows.
        """
        if not rows:
            return np.zeros((0, self.num_features))
        matrix = np.empty((len(rows), self.num_features), dtype=np.float64)
        vectors: dict[str, np.ndarray] = {}
        for index, (_, modifier) in enumerate(rows):
            vector = vectors.get(modifier)
            if vector is None:
                vector = self._modifier_vector(modifier)
                vectors[modifier] = vector
            matrix[index] = vector
        matrix[:, _DROP_SIMILARITY] = drop_similarities
        # Rows come from observed evidence: drop similarity always exists.
        matrix[:, _DROP_EVIDENCE_MISSING] = 0.0
        return matrix

    # ------------------------------------------------------------------
    # individual features
    # ------------------------------------------------------------------
    def _specificity(self, modifier: str) -> float:
        """1 for rare/narrow instances, → 0 for extremely popular ones."""
        taxonomy = self._conceptualizer.taxonomy
        total = taxonomy.instance_total(modifier)
        if total <= 0:
            return 0.5  # unknown: neutral
        return 1.0 / (1.0 + math.log1p(total) / 3.0)

    def _drop_evidence(self, query: str, modifier: str) -> tuple[float, float]:
        if self._stats is None:
            return 0.5, 1.0
        similarity = self._stats.drop_similarity(query, modifier)
        if similarity is None:
            return 0.5, 1.0
        return similarity, 0.0

    def _concept_droppability_of(self, concepts: list[tuple[str, float]]) -> float:
        if not concepts or not self._droppability.concept:
            return 0.5
        weighted = 0.0
        mass = 0.0
        for concept, prob in concepts:
            value = self._droppability.concept.get(concept)
            if value is not None:
                weighted += prob * value
                mass += prob
        return weighted / mass if mass > 0 else 0.5

    def _idf(self, modifier: str) -> float:
        if self._stats is None:
            return 0.5
        return min(1.0, self._stats.phrase_idf(modifier) / _IDF_SCALE)


def build_droppability_tables(
    log_stats: LogStatistics,
    conceptualizer: Conceptualizer,
    segmenter,
    min_concept_evidence: float = 3.0,
    min_instance_evidence: float = 2.0,
    head_similarity_cutoff: float = 0.6,
) -> DroppabilityTables:
    """Aggregate per-query drop evidence into droppability tables.

    For every log query and every non-head segment with drop evidence, the
    observed click similarity (query vs. query-without-segment) is credited
    to the segment (instance level) and its concepts (weighted by query
    volume and typicality). Head-like segments (whose own standalone clicks
    match the query's) are excluded — dropping the head always changes
    results, but that says nothing about modifier droppability.
    """
    log = log_stats.log
    concept_sums: dict[str, float] = {}
    concept_mass: dict[str, float] = {}
    instance_sums: dict[str, float] = {}
    instance_mass: dict[str, float] = {}
    for record in log.records():
        if len(record.tokens) < 2:
            continue
        for segment in segmenter.segment(record.query):
            if segment.num_tokens >= len(record.tokens):
                continue
            similarity = log_stats.drop_similarity(record.query, segment.text)
            if similarity is None:
                continue
            if _is_head_like(log, record, segment.text, head_similarity_cutoff):
                continue
            instance_sums[segment.text] = (
                instance_sums.get(segment.text, 0.0) + record.frequency * similarity
            )
            instance_mass[segment.text] = (
                instance_mass.get(segment.text, 0.0) + record.frequency
            )
            for concept, prob in conceptualizer.conceptualize(segment.text, top_k=3):
                weight = record.frequency * prob
                concept_sums[concept] = concept_sums.get(concept, 0.0) + weight * similarity
                concept_mass[concept] = concept_mass.get(concept, 0.0) + weight
    return DroppabilityTables(
        concept={
            c: concept_sums[c] / concept_mass[c]
            for c in concept_sums
            if concept_mass[c] >= min_concept_evidence
        },
        instance={
            i: instance_sums[i] / instance_mass[i]
            for i in instance_sums
            if instance_mass[i] >= min_instance_evidence
        },
    )


def _is_head_like(log, record, segment_text: str, cutoff: float) -> bool:
    segment_record = log.lookup(segment_text)
    if segment_record is None or not segment_record.clicks:
        return False
    return host_path_similarity(record.clicks, segment_record.clicks) >= cutoff
