"""Analysis utilities over trained artifacts.

Tools for inspecting what training produced: how concentrated the pattern
table is, whether any concept pair is directionally ambiguous, how much of
the mined pair support the patterns explain, and how two tables differ
(e.g. across training-log sizes). Used by the ``inspect_patterns``
example and by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.concept_patterns import ConceptPattern, PatternTable
from repro.core.conceptualizer import Conceptualizer
from repro.mining.pairs import PairCollection
from repro.utils.mathx import safe_div


@dataclass(frozen=True)
class TableSummary:
    """Shape statistics of a pattern table."""

    num_patterns: int
    total_weight: float
    max_weight: float
    #: Smallest number of patterns covering 50% / 90% of total weight.
    patterns_for_half_mass: int
    patterns_for_90_mass: int
    #: Number of distinct modifier / head concepts involved.
    num_modifier_concepts: int
    num_head_concepts: int


def summarize_table(table: PatternTable) -> TableSummary:
    """Concentration and vocabulary statistics of a pattern table."""
    ordered = table.top()
    total = table.total_weight
    half = _prefix_for_mass(ordered, total * 0.5)
    ninety = _prefix_for_mass(ordered, total * 0.9)
    return TableSummary(
        num_patterns=len(table),
        total_weight=total,
        max_weight=table.max_weight,
        patterns_for_half_mass=half,
        patterns_for_90_mass=ninety,
        num_modifier_concepts=len({p.modifier_concept for p, _ in ordered}),
        num_head_concepts=len({p.head_concept for p, _ in ordered}),
    )


def _prefix_for_mass(ordered: list[tuple[ConceptPattern, float]], target: float) -> int:
    accumulated = 0.0
    for index, (_, weight) in enumerate(ordered, start=1):
        accumulated += weight
        if accumulated >= target:
            return index
    return len(ordered)


@dataclass(frozen=True)
class DirectionConflict:
    """A concept pair carrying weight in both directions.

    Genuine patterns are strongly directional (smartphone → accessory,
    never the reverse); weight in both directions flags mining noise or a
    true bidirectional relation worth inspecting.
    """

    concept_a: str
    concept_b: str
    forward_weight: float
    backward_weight: float

    @property
    def balance(self) -> float:
        """0 = fully one-directional, 1 = perfectly balanced."""
        hi = max(self.forward_weight, self.backward_weight)
        lo = min(self.forward_weight, self.backward_weight)
        return safe_div(lo, hi)


def direction_conflicts(
    table: PatternTable, min_balance: float = 0.2
) -> list[DirectionConflict]:
    """Concept pairs whose weaker direction is at least ``min_balance`` of
    the stronger one, most balanced first."""
    seen: set[frozenset[str]] = set()
    conflicts = []
    for pattern, forward in table.top():
        backward = table.weight(pattern.head_concept, pattern.modifier_concept)
        if backward <= 0:
            continue
        key = frozenset((pattern.modifier_concept, pattern.head_concept))
        if key in seen:
            continue
        seen.add(key)
        conflict = DirectionConflict(
            pattern.modifier_concept, pattern.head_concept, forward, backward
        )
        if conflict.balance >= min_balance:
            conflicts.append(conflict)
    conflicts.sort(key=lambda c: (-c.balance, c.concept_a, c.concept_b))
    return conflicts


def pair_coverage(
    pairs: PairCollection,
    table: PatternTable,
    conceptualizer: Conceptualizer,
    top_k_concepts: int = 5,
) -> float:
    """Fraction of mined-pair support explained by the pattern table.

    A pair is *explained* when some concept reading of its sides hits a
    pattern in the table. The gap to 1.0 is the support lost to pruning
    plus the composite/noise pairs that never conceptualized.
    """
    explained = 0.0
    total = 0.0
    for modifier, head, support in pairs.items():
        total += support
        modifier_concepts = conceptualizer.conceptualize(modifier, top_k_concepts)
        head_concepts = conceptualizer.conceptualize(head, top_k_concepts)
        hit = any(
            ConceptPattern(mc, hc) in table
            for mc, _ in modifier_concepts
            for hc, _ in head_concepts
        )
        if hit:
            explained += support
    return safe_div(explained, total)


@dataclass(frozen=True)
class TableDiff:
    """Weight-rank comparison of two pattern tables."""

    only_in_a: tuple[ConceptPattern, ...]
    only_in_b: tuple[ConceptPattern, ...]
    common: int
    #: Spearman-style agreement of the common patterns' rank orders, in
    #: [-1, 1]; 1 means identical ordering.
    rank_agreement: float


def compare_tables(a: PatternTable, b: PatternTable) -> TableDiff:
    """Structural diff of two tables (e.g. small-log vs large-log)."""
    rank_a = {pattern: rank for rank, (pattern, _) in enumerate(a.top())}
    rank_b = {pattern: rank for rank, (pattern, _) in enumerate(b.top())}
    common = sorted(set(rank_a) & set(rank_b), key=lambda p: rank_a[p])
    only_a = tuple(p for p, _ in a.top() if p not in rank_b)
    only_b = tuple(p for p, _ in b.top() if p not in rank_a)
    agreement = _spearman(
        [rank_a[p] for p in common], [rank_b[p] for p in common]
    )
    return TableDiff(
        only_in_a=only_a,
        only_in_b=only_b,
        common=len(common),
        rank_agreement=agreement,
    )


def _spearman(xs: list[int], ys: list[int]) -> float:
    n = len(xs)
    if n < 2:
        return 1.0 if n == 1 else 0.0
    d_squared = sum((x - y) ** 2 for x, y in zip(_ranks(xs), _ranks(ys)))
    return 1.0 - 6.0 * d_squared / (n * (n * n - 1))


def _ranks(values: list[int]) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    for rank, index in enumerate(order):
        ranks[index] = float(rank)
    return ranks
