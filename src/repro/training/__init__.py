"""Fast offline training: sharded mining + vectorized derivation.

Everything in this package is output-equivalent to the reference pipeline
in :mod:`repro.core.pipeline` — bit-identical pattern tables, droppability
tables, classifier weights, and therefore detections. The reference loops
stay untouched as the readable specification; this package is how a
production log refresh actually runs. Entry point:
``train_model(log, taxonomy, workers=N, vectorized=True)``.
"""

from repro.training.evidence import (
    DropEvidence,
    SimilarityCache,
    collect_drop_evidence,
)
from repro.training.parallel import (
    default_miners,
    merge_shard_batches,
    mine_pairs_sharded,
    mine_shard,
    shard_of,
)
from repro.training.vectorized import (
    build_droppability_tables_vectorized,
    derive_pattern_table_vectorized,
    training_rows_from_evidence,
)

__all__ = [
    "DropEvidence",
    "SimilarityCache",
    "collect_drop_evidence",
    "default_miners",
    "merge_shard_batches",
    "mine_pairs_sharded",
    "mine_shard",
    "shard_of",
    "build_droppability_tables_vectorized",
    "derive_pattern_table_vectorized",
    "training_rows_from_evidence",
]
