"""Sharded, multi-process pair mining with deterministic merge.

A production log refresh cannot wait on a single-core mining pass, so the
log is sharded by a stable hash of the query string (a per-intent/session
proxy: one surface form always lands on the same shard) and each shard is
mined in its own worker process. Workers receive the log once, via the
executor initializer — the same pickle-once idiom as
:mod:`repro.runtime.batch` — and a failed shard surfaces as a
:class:`~repro.errors.ShardError` naming the shard, mirroring
:class:`~repro.runtime.pool.DetectorPool`.

Determinism is stronger than "same multiset of pairs": workers tag every
mined batch with the record's position in the log, and the parent replays
the batches miner-major in record order. That reproduces the exact
``PairCollection.add`` sequence of the sequential reference — identical
support sums (to the bit: float accumulation order is preserved) and
identical insertion order — for any worker count.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.errors import ShardError
from repro.mining.pairs import (
    DeletionMiner,
    LexicalPatternMiner,
    MinedPair,
    MiningConfig,
    PairCollection,
)
from repro.querylog.models import QueryLog

#: A mined batch: (record position in the log, pairs mined from it).
RecordBatch = tuple[int, list[MinedPair]]

MinerFactory = Callable[[MiningConfig], Sequence]


def default_miners(config: MiningConfig) -> tuple:
    """The same miner lineup :func:`repro.mining.pairs.mine_pairs` uses."""
    return (DeletionMiner(config), LexicalPatternMiner(config))


def shard_of(query: str, num_shards: int) -> int:
    """Stable shard of a query string (crc32: identical across processes)."""
    return zlib.crc32(query.encode("utf-8")) % num_shards


def mine_shard(
    log: QueryLog,
    miners: Sequence,
    shard_index: int,
    num_shards: int,
) -> list[list[RecordBatch]]:
    """Mine one shard; per-miner record batches tagged for ordered replay."""
    batches: list[list[RecordBatch]] = [[] for _ in miners]
    for position, record in enumerate(log.records()):
        if shard_of(record.query, num_shards) != shard_index:
            continue
        for miner_index, miner in enumerate(miners):
            mined = list(miner.mine_record(log, record))
            if mined:
                batches[miner_index].append((position, mined))
    return batches


def merge_shard_batches(
    shard_results: Iterable[list[list[RecordBatch]]],
) -> PairCollection:
    """Replay shard outputs in the reference's exact ``add`` order.

    The sequential reference runs miner 0 over all records, then miner 1;
    so the merge concatenates each miner's batches across shards, sorts by
    record position, and replays. Sorting is total (positions are unique
    per miner), hence the result is independent of shard assignment.
    """
    per_miner: dict[int, list[RecordBatch]] = {}
    for shard_result in shard_results:
        for miner_index, batches in enumerate(shard_result):
            per_miner.setdefault(miner_index, []).extend(batches)
    collection = PairCollection()
    for miner_index in sorted(per_miner):
        for _, mined in sorted(per_miner[miner_index], key=lambda batch: batch[0]):
            for pair in mined:
                collection.add(pair)
    return collection


_WORKER_STATE: tuple[QueryLog, tuple] | None = None


def _init_mining_worker(
    log: QueryLog, config: MiningConfig, miner_factory: MinerFactory | None
) -> None:
    global _WORKER_STATE
    factory = miner_factory or default_miners
    _WORKER_STATE = (log, tuple(factory(config)))


def _mine_shard_in_worker(shard_index: int, num_shards: int) -> list[list[RecordBatch]]:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    log, miners = _WORKER_STATE
    return mine_shard(log, miners, shard_index, num_shards)


def mine_pairs_sharded(
    log: QueryLog,
    config: MiningConfig | None = None,
    workers: int = 2,
    miner_factory: MinerFactory | None = None,
    mp_context=None,
) -> PairCollection:
    """Mine ``log`` across ``workers`` processes; output is bit-identical
    to :func:`repro.mining.pairs.mine_pairs` for any worker count.

    ``miner_factory`` must be a picklable callable building the miner
    lineup inside each worker (defaults to :func:`default_miners`). A
    worker failure cancels the remaining shards and raises
    :class:`ShardError` naming the failed shard.
    """
    config = config or MiningConfig()
    if workers < 1:
        raise ShardError(f"workers must be positive, got {workers}")
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context,
        initializer=_init_mining_worker,
        initargs=(log, config, miner_factory),
    )
    futures = [
        executor.submit(_mine_shard_in_worker, shard, workers)
        for shard in range(workers)
    ]
    shard_results = []
    try:
        for shard, future in enumerate(futures):
            try:
                shard_results.append(future.result())
            except Exception as exc:
                for pending in futures:
                    pending.cancel()
                raise ShardError(
                    f"mining worker failed on shard {shard + 1}/{workers}: {exc}"
                ) from exc
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return merge_shard_batches(shard_results).filtered(config.min_pair_support)
