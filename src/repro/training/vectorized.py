"""Batched-numpy training stages, bit-identical to the reference loops.

The reference derivation and droppability passes are per-pair / per-row
Python loops over dict accumulators. Here each pass is restated as array
work over interned concept ids (:class:`repro.runtime.intern.Interner`,
the same move the compiled serving runtime makes):

1. conceptualize each *distinct* phrase once (``conceptualize_many``),
   flatten the readings into id/probability arrays with slice offsets;
2. expand the per-item contribution stream with ``repeat`` + a ragged
   ``arange`` so contributions appear in exactly the reference's
   iteration order;
3. reduce with ``np.bincount``, which adds elements sequentially — the
   same float additions, in the same order, as the reference's
   ``dict.get(k, 0.0) + w`` accumulation, so sums are bit-identical,
   not merely close;
4. rebuild the output dicts in first-seen key order (``np.unique`` over
   the stream plus an argsort of first occurrence), matching the
   insertion order of the reference dicts.

Step 4 matters beyond aesthetics: ``PatternTable.pruned_to_mass`` sums
``total_weight`` in insertion order, so reproducing the order reproduces
the prune boundary exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.concept_patterns import ConceptPattern, PatternTable
from repro.core.conceptualizer import Conceptualizer
from repro.core.features import DroppabilityTables
from repro.mining.pairs import PairCollection
from repro.runtime.intern import Interner
from repro.training.evidence import DropEvidence


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated (the within-group index)."""
    if len(counts) == 0 or counts.sum() == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(ends[-1], dtype=np.int64) - np.repeat(ends - counts, counts)


class _ReadingArrays:
    """Flattened concept readings of a distinct-phrase list.

    ``starts[i]:starts[i] + lengths[i]`` slices the id/probability arrays
    for phrase ``i``; ids index ``interner``.
    """

    __slots__ = ("interner", "ids", "probs", "starts", "lengths")

    def __init__(
        self,
        phrases: list[str],
        readings: list[list[tuple[str, float]]],
    ) -> None:
        self.interner = Interner()
        flat_ids: list[int] = []
        flat_probs: list[float] = []
        starts = np.empty(len(phrases) + 1, dtype=np.int64)
        position = 0
        for index, phrase_readings in enumerate(readings):
            starts[index] = position
            for concept, prob in phrase_readings:
                flat_ids.append(self.interner.intern(concept))
                flat_probs.append(prob)
                position += 1
        starts[len(phrases)] = position
        self.ids = np.asarray(flat_ids, dtype=np.int64)
        self.probs = np.asarray(flat_probs, dtype=np.float64)
        self.starts = starts[:-1]
        self.lengths = np.diff(starts)


def _first_seen_order(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique keys in first-occurrence order plus the inverse mapping.

    ``np.unique`` sorts; re-ordering by each key's first index restores
    the order a sequential dict would have inserted them in.
    """
    unique, first_index, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    order = np.argsort(first_index, kind="stable")
    rank_of_sorted = np.empty(len(unique), dtype=np.int64)
    rank_of_sorted[order] = np.arange(len(unique), dtype=np.int64)
    return unique[order], rank_of_sorted[inverse]


def derive_pattern_table_vectorized(
    pairs: PairCollection,
    conceptualizer: Conceptualizer,
    top_k_concepts: int = 5,
    hierarchy_discount: float = 0.0,
) -> PatternTable:
    """Vectorized :func:`repro.core.concept_patterns.derive_pattern_table`."""
    triples = list(pairs.items())
    if not triples:
        return PatternTable()

    phrase_ids = Interner()
    modifiers = np.empty(len(triples), dtype=np.int64)
    heads = np.empty(len(triples), dtype=np.int64)
    support = np.empty(len(triples), dtype=np.float64)
    for index, (modifier, head, pair_support) in enumerate(triples):
        modifiers[index] = phrase_ids.intern(modifier)
        heads[index] = phrase_ids.intern(head)
        support[index] = pair_support

    phrases = list(phrase_ids)
    readings = conceptualizer.conceptualize_many(phrases, top_k_concepts)
    if hierarchy_discount > 0:
        readings = [
            conceptualizer.expand_with_ancestors(r, hierarchy_discount) if r else r
            for r in readings
        ]
    arrays = _ReadingArrays(phrases, readings)

    # The reference walks, per pair, modifier readings outer and head
    # readings inner. repeat + ragged arange reproduces that exact row
    # stream: row r of pair p is (m_reading r // H_p, h_reading r % H_p).
    m_counts = arrays.lengths[modifiers]
    h_counts = arrays.lengths[heads]
    rows_per_pair = m_counts * h_counts
    pair_of_row = np.repeat(np.arange(len(triples), dtype=np.int64), rows_per_pair)
    row_in_pair = _ragged_arange(rows_per_pair)
    if len(pair_of_row) == 0:
        return PatternTable()
    h_count_of_row = h_counts[pair_of_row]
    m_slot = arrays.starts[modifiers][pair_of_row] + row_in_pair // h_count_of_row
    h_slot = arrays.starts[heads][pair_of_row] + row_in_pair % h_count_of_row
    m_concept = arrays.ids[m_slot]
    h_concept = arrays.ids[h_slot]
    # Same association order as the reference: (support * m_prob) * h_prob.
    weights = (support[pair_of_row] * arrays.probs[m_slot]) * arrays.probs[h_slot]

    keep = (m_concept != h_concept) & (weights > 0)
    stride = np.int64(len(arrays.interner))
    keys = m_concept[keep] * stride + h_concept[keep]
    weights = weights[keep]
    if len(keys) == 0:
        return PatternTable()

    unique_keys, slot_of_row = _first_seen_order(keys)
    sums = np.bincount(slot_of_row, weights=weights, minlength=len(unique_keys))
    table_weights: dict[ConceptPattern, float] = {}
    for key, weight in zip(unique_keys.tolist(), sums.tolist()):
        pattern = ConceptPattern(
            arrays.interner.string_of(key // int(stride)),
            arrays.interner.string_of(key % int(stride)),
        )
        table_weights[pattern] = weight
    return PatternTable(table_weights)


def build_droppability_tables_vectorized(
    evidence: list[DropEvidence],
    conceptualizer: Conceptualizer,
    min_concept_evidence: float = 3.0,
    min_instance_evidence: float = 2.0,
) -> DroppabilityTables:
    """Vectorized :func:`repro.core.features.build_droppability_tables`
    over a pre-collected evidence stream."""
    if not evidence:
        return DroppabilityTables()

    segment_ids = Interner()
    segments = np.fromiter(
        (segment_ids.intern(e.segment) for e in evidence),
        dtype=np.int64,
        count=len(evidence),
    )
    frequency = np.asarray([e.frequency for e in evidence], dtype=np.float64)
    similarity = np.asarray([e.similarity for e in evidence], dtype=np.float64)

    # Instance level. bincount over segment ids (= first-seen order, the
    # reference dict's insertion order) adds in stream order.
    instance_sums = np.bincount(
        segments, weights=frequency * similarity, minlength=len(segment_ids)
    )
    instance_mass = np.bincount(segments, weights=frequency, minlength=len(segment_ids))

    # Concept level: conceptualize each distinct segment once, then expand
    # the contribution stream back to evidence rows.
    distinct_segments = list(segment_ids)
    readings = conceptualizer.conceptualize_many(distinct_segments, top_k=3)
    arrays = _ReadingArrays(distinct_segments, readings)
    concepts_per_row = arrays.lengths[segments]
    row_of_slot = np.repeat(np.arange(len(evidence), dtype=np.int64), concepts_per_row)
    slot = arrays.starts[segments][row_of_slot] + _ragged_arange(concepts_per_row)
    concept_of_slot = arrays.ids[slot]
    # Reference order: weight = frequency * prob; sums += weight * similarity.
    weight = frequency[row_of_slot] * arrays.probs[slot]
    if len(concept_of_slot):
        concept_sums = np.bincount(
            concept_of_slot,
            weights=weight * similarity[row_of_slot],
            minlength=len(arrays.interner),
        )
        concept_mass = np.bincount(
            concept_of_slot, weights=weight, minlength=len(arrays.interner)
        )
    else:
        concept_sums = concept_mass = np.zeros(0, dtype=np.float64)

    # Concept ids were interned per distinct segment in first-seen segment
    # order, which equals first appearance in the evidence stream — so
    # iterating ids ascending reproduces the reference dict order.
    concept = {
        arrays.interner.string_of(cid): float(concept_sums[cid] / concept_mass[cid])
        for cid in range(len(arrays.interner))
        if concept_mass[cid] >= min_concept_evidence
    }
    instance = {
        segment_ids.string_of(sid): float(instance_sums[sid] / instance_mass[sid])
        for sid in range(len(segment_ids))
        if instance_mass[sid] >= min_instance_evidence
    }
    return DroppabilityTables(concept=concept, instance=instance)


def training_rows_from_evidence(
    evidence: list[DropEvidence],
    drop_label_threshold: float = 0.5,
) -> tuple[list[tuple[str, str]], list[int], list[float]]:
    """The distant-supervision rows the evidence stream already encodes
    (same triple as :func:`repro.core.pipeline.constraint_training_rows`)."""
    rows = [(e.query, e.segment) for e in evidence]
    labels = [int(e.similarity < drop_label_threshold) for e in evidence]
    weights = [float(e.frequency) for e in evidence]
    return rows, labels, weights
