"""O(delta) incremental training: fold query-log deltas into a model.

A production log grows continuously; retraining from scratch on every
refresh costs O(full log). :class:`IncrementalTrainer` folds a *delta*
of new records into a persisted training state and emits a model
**bit-identical** to ``train_model(merged_log, vectorized=True)`` —
same pairs, same pattern table, same classifier weights, same
detections — at O(delta + dirty) heavy cost. Four ideas make exactness
and speed coexist:

- **Per-record memoization.** Pair mining and drop-evidence collection
  are per-record kernels whose only cross-record inputs are
  ``log.lookup`` probes (the deletion miner tests sub-queries against
  the log; evidence compares clicks of reduced queries). The trainer
  caches each record's mined batches and evidence rows *plus the exact
  set of lookup keys the computation touched*.
- **Probe-tracked invalidation.** A delta changes the lookup result of
  exactly the keys it writes. Records whose cached probe set intersects
  those keys — plus the delta records themselves — are recomputed
  against the merged log; every other record's cache is provably still
  valid. Probes only ever read *clicks*, so a frequency-only merge
  invalidates nobody but the merged record itself.
- **Ordered replay.** ``PairCollection.add`` is a left fold over IEEE
  floats, so supports are *replayed* from the cached batches in the
  sequential reference's miner-major, record-position order — the same
  contract :func:`repro.training.parallel.merge_shard_batches` keeps
  for sharded mining. Replay is a cheap O(n) pass over already-mined
  pairs; the expensive kernels run only for dirty records. The replayed
  collection is kept **unfiltered**: a pair below ``min_pair_support``
  today may cross the threshold after a future fold.
- **Cheap global stages re-run in full.** Pattern derivation,
  droppability bincounts, feature assembly, and the classifier fit are
  re-run per fold — they are the fast vectorized stages, the per-phrase
  conceptualization they lean on stays warm in the trainer's LRU across
  folds, and the static (taxonomy-only) feature slots are memoized per
  modifier. Term counters fold incrementally (integer arithmetic is
  order-free, hence exact).

The honest complexity claim is O(delta + dirty) mining/evidence work
plus O(n) replay and vectorized reductions — not a literal O(delta).
``benchmarks/bench_r13_incremental.py`` measures the realized speedup
and asserts parity before timing anything.
"""

from __future__ import annotations

import pickle
import struct
import time
import zlib
from pathlib import Path

import numpy as np

from repro.core.conceptualizer import Conceptualizer
from repro.core.constraints import ConstraintClassifier, LogisticRegression
from repro.core.features import FEATURE_NAMES, ConstraintFeatureExtractor
from repro.core.model import HdmModel
from repro.core.pipeline import TrainingConfig, _stage_recorder
from repro.errors import ModelError
from repro.mining.pairs import MinedPair, PairCollection
from repro.querylog.models import QueryLog, QueryRecord
from repro.querylog.stats import LogStatistics
from repro.taxonomy.store import ConceptTaxonomy
from repro.text.normalizer import normalize
from repro.training.evidence import DropEvidence, SimilarityCache
from repro.training.parallel import default_miners
from repro.training.vectorized import (
    build_droppability_tables_vectorized,
    derive_pattern_table_vectorized,
    training_rows_from_evidence,
)

#: Magic prefix + version of the persisted training state.
STATE_MAGIC = b"HDMSTATE1"
STATE_VERSION = 1
_STATE_PRELUDE = struct.Struct("<9sIQI")  # magic, version, payload len, crc32

#: Feature slots that change between folds (droppability tables and IDF
#: move with the log); everything else in the vector is a pure function
#: of the taxonomy + lexicon and is memoized across folds.
_DROP_SIMILARITY_SLOT = FEATURE_NAMES.index("drop_similarity")
_DROP_MISSING_SLOT = FEATURE_NAMES.index("drop_evidence_missing")
_INSTANCE_DROP_SLOT = FEATURE_NAMES.index("instance_droppability")
_CONCEPT_DROP_SLOT = FEATURE_NAMES.index("concept_droppability")
_IDF_SLOT = FEATURE_NAMES.index("idf")


class _ProbeLog:
    """Observable-log facade that records every lookup key.

    Miners see the same records as the real log; every ``lookup`` lands
    its normalized key in :attr:`probes` — including misses, which is
    what makes invalidation sound: a miss that later becomes a hit is a
    change the mined output may depend on.
    """

    __slots__ = ("_log", "_normalize", "probes")

    def __init__(self, log: QueryLog, normalize_fn) -> None:
        self._log = log
        self._normalize = normalize_fn
        self.probes: set[str] = set()

    def begin(self) -> None:
        self.probes = set()

    def lookup(self, query: str) -> QueryRecord | None:
        key = self._normalize(query)
        self.probes.add(key)
        return self._log.lookup_exact(key)


class _RecordingSimilarityCache(SimilarityCache):
    """A :class:`SimilarityCache` that records probe keys per record."""

    def __init__(self, log: QueryLog, normalize_fn) -> None:
        super().__init__(log)
        self._normalize_fn = normalize_fn
        self.probes: set[str] = set()

    def begin(self) -> None:
        self.probes = set()

    def lookup(self, text: str) -> QueryRecord | None:
        self.probes.add(self._normalize_fn(text))
        return super().lookup(text)


class _StaticFeatureCache:
    """Per-modifier feature vectors memoized across folds.

    The static slots of ``ConstraintFeatureExtractor._modifier_vector``
    depend only on the taxonomy and lexicon; the three fold-dependent
    slots (instance/concept droppability, IDF) are refilled per call
    with the *fold's* extractor — evaluating the exact expressions the
    reference evaluates, on the exact cached readings — so the returned
    matrix is bit-identical to ``extract_training_batch``.
    """

    def __init__(self, conceptualizer: Conceptualizer) -> None:
        self._conceptualizer = conceptualizer
        # No stats / droppability: the dynamic slots come out as their
        # 0.5 placeholders and are overwritten below.
        self._static = ConstraintFeatureExtractor(conceptualizer)
        self._vectors: dict[str, np.ndarray] = {}
        self._readings: dict[str, tuple[tuple[str, float], ...]] = {}

    def training_matrix(
        self,
        rows: list[tuple[str, str]],
        drop_similarities: list[float],
        extractor: ConstraintFeatureExtractor,
    ) -> np.ndarray:
        matrix = np.empty((len(rows), len(FEATURE_NAMES)), dtype=np.float64)
        droppability = extractor.droppability
        filled: dict[str, np.ndarray] = {}
        for index, (_, modifier) in enumerate(rows):
            vector = filled.get(modifier)
            if vector is None:
                base = self._vectors.get(modifier)
                if base is None:
                    base = self._static._modifier_vector(modifier)
                    self._vectors[modifier] = base
                    self._readings[modifier] = tuple(
                        self._conceptualizer.conceptualize(modifier, top_k=3)
                    )
                vector = base.copy()
                vector[_INSTANCE_DROP_SLOT] = droppability.instance.get(modifier, 0.5)
                vector[_CONCEPT_DROP_SLOT] = extractor._concept_droppability_of(
                    list(self._readings[modifier])
                )
                vector[_IDF_SLOT] = extractor._idf(modifier)
                filled[modifier] = vector
            matrix[index] = vector
        matrix[:, _DROP_SIMILARITY_SLOT] = drop_similarities
        # Rows come from observed evidence: drop similarity always exists.
        matrix[:, _DROP_MISSING_SLOT] = 0.0
        return matrix


class IncrementalTrainer:
    """Stateful trainer that folds query-log deltas at O(delta) cost.

    Construction runs the full (base) pipeline over ``log`` and caches
    the per-record state folds need; the trainer takes ownership of
    ``log`` and mutates it on every :meth:`fold`. :meth:`save` /
    :meth:`load` persist the whole state between refreshes.
    """

    def __init__(
        self,
        log: QueryLog,
        taxonomy: ConceptTaxonomy,
        config: TrainingConfig | None = None,
        *,
        timings: dict[str, float] | None = None,
    ) -> None:
        config = config or TrainingConfig()
        self._config = config
        self._taxonomy = taxonomy
        self._log = log
        self._generation = 1
        self._norm_memo: dict[str, str] = {}
        self._init_derived()
        self._stats = LogStatistics(log)
        #: Per miner: record key -> mined pairs of that record.
        self._mined: list[dict[str, tuple[MinedPair, ...]]] = [
            {} for _ in self._miners
        ]
        #: Record key -> drop-evidence rows of that record.
        self._evidence: dict[str, tuple[DropEvidence, ...]] = {}
        #: Record key -> every lookup key its kernels probed.
        self._probes: dict[str, frozenset[str]] = {}
        #: Inverse of ``_probes``: lookup key -> records that probed it.
        self._probe_index: dict[str, set[str]] = {}
        self._model: HdmModel | None = None

        record_stage = _stage_recorder(timings)
        started = time.perf_counter()
        with record_stage("mine"):
            probe_log = _ProbeLog(log, self._normalize)
            cache = _RecordingSimilarityCache(log, self._normalize)
            for record in log.records():
                self._refresh_record(record, probe_log, cache)
        self._build_model(record_stage)
        if timings is not None:
            timings["total"] = time.perf_counter() - started

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def model(self) -> HdmModel:
        """The model of the latest build (base training or last fold)."""
        if self._model is None:
            raise ModelError(
                "no model built yet — fold a delta or call rebuild()"
            )
        return self._model

    @property
    def generation(self) -> int:
        """Model generation: 1 for the base build, +1 per fold."""
        return self._generation

    @property
    def log(self) -> QueryLog:
        """The accumulated log (base plus every folded delta)."""
        return self._log

    @property
    def config(self) -> TrainingConfig:
        """The training configuration shared by base build and folds."""
        return self._config

    @property
    def stats(self) -> LogStatistics:
        """Statistics over the accumulated log (incrementally folded)."""
        return self._stats

    def fold(
        self,
        delta: QueryLog,
        *,
        timings: dict[str, float] | None = None,
    ) -> HdmModel:
        """Fold ``delta`` into the state and return the refreshed model.

        The result is bit-identical to ``train_model`` with
        ``vectorized=True`` on the log obtained by adding ``delta``'s
        records (in order) to the accumulated log. Only dirty records —
        the delta's own queries plus records whose cached probes touch a
        changed key — pay the mining/evidence kernels again.
        """
        record_stage = _stage_recorder(timings)
        started = time.perf_counter()
        with record_stage("mine"):
            changed, probe_changed = self._ingest(delta)
            dirty = set(changed)
            for probe in probe_changed:
                hit = self._probe_index.get(probe)
                if hit:
                    dirty.update(hit)
            probe_log = _ProbeLog(self._log, self._normalize)
            cache = _RecordingSimilarityCache(self._log, self._normalize)
            for key in sorted(dirty):
                record = self._log.lookup_exact(key)
                assert record is not None  # records are never removed
                self._refresh_record(record, probe_log, cache)
        self._generation += 1
        model = self._build_model(record_stage)
        if timings is not None:
            timings["total"] = time.perf_counter() - started
            timings["dirty_records"] = float(len(dirty))
        return model

    def rebuild(
        self, *, timings: dict[str, float] | None = None
    ) -> HdmModel:
        """Rebuild the model from the cached state (e.g. after load)."""
        record_stage = _stage_recorder(timings)
        started = time.perf_counter()
        model = self._build_model(record_stage)
        if timings is not None:
            timings["total"] = time.perf_counter() - started
        return model

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the training state (atomic write-then-rename).

        The payload is a pickle: like the snapshot's ``stats_pickle``
        section, state files are a **trusted-source** format — load only
        files your own pipeline wrote. A CRC32 guards against
        truncation/corruption, not against hostile input.
        """
        path = Path(path)
        payload = pickle.dumps(
            {
                "config": self._config,
                "taxonomy": self._taxonomy,
                "log": self._log,
                "generation": self._generation,
                "mined": self._mined,
                "evidence": self._evidence,
                "probes": self._probes,
                "feature_vectors": self._features._vectors,
                "feature_readings": self._features._readings,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        prelude = _STATE_PRELUDE.pack(
            STATE_MAGIC, STATE_VERSION, len(payload), zlib.crc32(payload)
        )
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as out:
                out.write(prelude)
                out.write(payload)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "IncrementalTrainer":
        """Load a state written by :meth:`save` (trusted sources only).

        The returned trainer has no built model yet — :meth:`fold` a
        delta or call :meth:`rebuild` first.
        """
        path = Path(path)
        with open(path, "rb") as handle:
            prelude = handle.read(_STATE_PRELUDE.size)
            if len(prelude) != _STATE_PRELUDE.size:
                raise ModelError(f"{path}: truncated training state")
            magic, version, length, crc = _STATE_PRELUDE.unpack(prelude)
            if magic != STATE_MAGIC:
                raise ModelError(f"{path}: not a training state file")
            if version != STATE_VERSION:
                raise ModelError(
                    f"{path}: unsupported state version {version}"
                )
            payload = handle.read(length)
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise ModelError(f"{path}: corrupt training state (CRC mismatch)")
        state = pickle.loads(payload)

        trainer = cls.__new__(cls)
        trainer._config = state["config"]
        trainer._taxonomy = state["taxonomy"]
        trainer._log = state["log"]
        trainer._generation = state["generation"]
        trainer._norm_memo = {}
        trainer._init_derived()
        trainer._stats = LogStatistics(trainer._log)
        trainer._mined = state["mined"]
        trainer._evidence = state["evidence"]
        trainer._probes = state["probes"]
        trainer._probe_index = {}
        for key, probes in trainer._probes.items():
            for probe in probes:
                trainer._probe_index.setdefault(probe, set()).add(key)
        trainer._features._vectors = state["feature_vectors"]
        trainer._features._readings = state["feature_readings"]
        trainer._model = None
        return trainer

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _init_derived(self) -> None:
        """(Re)build the transient state derived from config + taxonomy."""
        from repro.runtime.compiled import CompiledSegmenter

        self._conceptualizer = Conceptualizer(
            self._taxonomy, cache_size=self._config.detector.cache_size
        )
        self._segmenter = CompiledSegmenter(self._taxonomy)
        self._miners = default_miners(self._config.mining)
        self._features = _StaticFeatureCache(self._conceptualizer)

    def _normalize(self, text: str) -> str:
        key = self._norm_memo.get(text)
        if key is None:
            key = normalize(text)
            self._norm_memo[text] = key
        return key

    def _ingest(self, delta: QueryLog) -> tuple[set[str], set[str]]:
        """Merge ``delta`` into the log; return (changed keys, keys whose
        *lookup-visible* state changed for other records).

        The second set is the invalidation frontier: new keys (a miss
        became a hit) and keys whose clicks grew. Probes never read a
        foreign record's frequency, so frequency-only merges stay out.
        """
        changed: set[str] = set()
        probe_changed: set[str] = set()
        for record in delta.records():
            key = record.query  # QueryLog stores normalized keys
            new_query = self._log.lookup_exact(key) is None
            self._log.add_record(
                key,
                record.frequency,
                record.clicks,
                gold=delta.gold_labels.get(key),
            )
            self._stats.absorb(record, new_query=new_query)
            changed.add(key)
            if new_query or record.clicks:
                probe_changed.add(key)
        for session in delta.sessions():
            self._log.add_session(session)
        return changed, probe_changed

    def _refresh_record(
        self,
        record: QueryRecord,
        probe_log: _ProbeLog,
        cache: _RecordingSimilarityCache,
    ) -> None:
        """Re-run both kernels for one record; update caches and index."""
        key = record.query
        probe_log.begin()
        batches: list[tuple[MinedPair, ...]] = []
        for miner in self._miners:
            batches.append(tuple(miner.mine_record(probe_log, record)))
        cache.begin()
        evidence = self._collect_record_evidence(record, cache)
        probes = frozenset(probe_log.probes | cache.probes)

        old = self._probes.get(key, frozenset())
        for stale in old - probes:
            bucket = self._probe_index.get(stale)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._probe_index[stale]
        for fresh in probes - old:
            self._probe_index.setdefault(fresh, set()).add(key)
        self._probes[key] = probes

        for index, batch in enumerate(batches):
            if batch:
                self._mined[index][key] = batch
            else:
                self._mined[index].pop(key, None)
        if evidence:
            self._evidence[key] = evidence
        else:
            self._evidence.pop(key, None)

    def _collect_record_evidence(
        self, record: QueryRecord, cache: SimilarityCache
    ) -> tuple[DropEvidence, ...]:
        """One record's slice of :func:`collect_drop_evidence`."""
        if len(record.tokens) < 2:
            return ()
        rows: list[DropEvidence] = []
        for segment in self._segmenter.segment(record.query):
            if segment.num_tokens >= len(record.tokens):
                continue
            similarity = cache.drop_similarity(record, segment.text)
            if similarity is None:
                continue
            if cache.is_head_like(record, segment.text):
                continue
            rows.append(
                DropEvidence(
                    record.query, segment.text, similarity, record.frequency
                )
            )
        return tuple(rows)

    def _replay_pairs(self) -> PairCollection:
        """Replay cached batches in the reference's exact add order."""
        collection = PairCollection()
        add = collection.add
        for mined in self._mined:
            for record in self._log.records():
                batch = mined.get(record.query)
                if batch:
                    for pair in batch:
                        add(pair)
        return collection

    def _evidence_stream(self) -> list[DropEvidence]:
        """Cached evidence concatenated in log (= reference scan) order."""
        stream: list[DropEvidence] = []
        for record in self._log.records():
            rows = self._evidence.get(record.query)
            if rows:
                stream.extend(rows)
        return stream

    def _build_model(self, record_stage) -> HdmModel:
        config = self._config
        with record_stage("mine"):
            pairs = self._replay_pairs().filtered(config.mining.min_pair_support)
        with record_stage("derive"):
            patterns = derive_pattern_table_vectorized(
                pairs,
                self._conceptualizer,
                config.top_k_concepts,
                hierarchy_discount=config.hierarchy_discount,
            )
            if config.pattern_mass < 1.0:
                patterns = patterns.pruned_to_mass(config.pattern_mass)
            if config.max_patterns is not None:
                patterns = patterns.pruned_to_count(config.max_patterns)
        classifier = None
        if config.train_classifier:
            classifier = self._train_classifier(record_stage)
        self._model = HdmModel(
            taxonomy=self._taxonomy,
            patterns=patterns,
            pairs=pairs,
            classifier=classifier,
            detector_config=config.detector,
        )
        return self._model

    def _train_classifier(self, record_stage) -> ConstraintClassifier | None:
        config = self._config
        with record_stage("features"):
            evidence = self._evidence_stream()
            droppability = build_droppability_tables_vectorized(
                evidence, self._conceptualizer
            )
            extractor = ConstraintFeatureExtractor(
                self._conceptualizer, stats=self._stats, droppability=droppability
            )
            rows, labels, weights = training_rows_from_evidence(
                evidence, config.drop_label_threshold
            )
            if len(rows) < 10 or len(set(labels)) < 2:
                return None  # not enough distant supervision in this log
            features = self._features.training_matrix(
                rows, [e.similarity for e in evidence], extractor
            )
        with record_stage("classifier"):
            model = LogisticRegression(
                learning_rate=config.classifier_learning_rate,
                epochs=config.classifier_epochs,
                l2=config.classifier_l2,
            ).fit(features, np.asarray(labels, float), np.asarray(weights, float))
        return ConstraintClassifier(
            extractor, model, threshold=config.constraint_threshold
        )
