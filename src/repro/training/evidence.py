"""Single-pass drop-evidence collection for the fast training path.

The reference pipeline walks the log twice with identical filtering:
:func:`repro.core.features.build_droppability_tables` aggregates the
droppability tables, then :func:`repro.core.pipeline.constraint_training_rows`
re-segments every query and recomputes every drop similarity to emit the
distant-supervision rows. Both passes need exactly the same facts per
(query, segment): the observed drop similarity and the query volume.

:func:`collect_drop_evidence` computes those facts once and hands the
stream to both consumers. A :class:`SimilarityCache` memoizes the pure
per-record quantities (normalized lookups, collapsed host+path
histograms, cosine norms) so each is paid once per record instead of once
per comparison. Every arithmetic operation matches the reference
(`querylog.stats._cosine`) term for term, so the cached similarities are
bit-identical, not merely close.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.querylog.models import QueryLog, QueryRecord
from repro.querylog.stats import _remove_segment
from repro.querylog.urls import url_host_path
from repro.utils.mathx import safe_div

#: Host+path similarity above which a segment counts as head-like and is
#: excluded from drop evidence (same constant as the reference pipeline).
HEAD_SIMILARITY_CUTOFF = 0.6


@dataclass(frozen=True, slots=True)
class DropEvidence:
    """One observed segment drop: the unit both training consumers share."""

    query: str
    segment: str
    similarity: float
    frequency: int


class SimilarityCache:
    """Memoized click-similarity primitives over one log.

    All methods reproduce ``querylog.stats`` bit-for-bit: the same dict
    iteration orders, the same ``sqrt``/``safe_div`` expressions — only
    redundant recomputation is removed.
    """

    def __init__(self, log: QueryLog) -> None:
        self._log = log
        self._lookup: dict[str, QueryRecord | None] = {}
        self._norms: dict[str, float] = {}
        self._collapsed: dict[str, Counter[str]] = {}
        self._collapsed_norms: dict[str, float] = {}

    def lookup(self, text: str) -> QueryRecord | None:
        """`log.lookup` with the normalization cost paid once per string."""
        try:
            return self._lookup[text]
        except KeyError:
            record = self._log.lookup(text)
            self._lookup[text] = record
            return record

    def drop_similarity(self, record: QueryRecord, segment: str) -> float | None:
        """``LogStatistics.drop_similarity(record.query, segment)``."""
        reduced = _remove_segment(record.query, segment)
        if reduced is None:
            return None
        reduced_record = self.lookup(reduced)
        if reduced_record is None:
            return None
        return self.click_similarity(record, reduced_record)

    def click_similarity(self, a: QueryRecord, b: QueryRecord) -> float:
        """Full-URL cosine between two records' click histograms."""
        if not a.clicks or not b.clicks:
            return 0.0
        dot = sum(count * b.clicks.get(url, 0) for url, count in a.clicks.items())
        return safe_div(dot, self._norm_of(a) * self._norm_of(b))

    def host_path_similarity(self, a: QueryRecord, b: QueryRecord) -> float:
        """Host+path cosine between two records' click histograms."""
        collapsed_a = self._collapsed_of(a)
        collapsed_b = self._collapsed_of(b)
        if not collapsed_a or not collapsed_b:
            return 0.0
        dot = sum(
            count * collapsed_b.get(url, 0) for url, count in collapsed_a.items()
        )
        return safe_div(
            dot, self._collapsed_norms[a.query] * self._collapsed_norms[b.query]
        )

    def is_head_like(
        self,
        record: QueryRecord,
        segment: str,
        cutoff: float = HEAD_SIMILARITY_CUTOFF,
    ) -> bool:
        """Whether the segment's own clicks match the full query's."""
        segment_record = self.lookup(segment)
        if segment_record is None or not segment_record.clicks:
            return False
        return self.host_path_similarity(record, segment_record) >= cutoff

    def _norm_of(self, record: QueryRecord) -> float:
        norm = self._norms.get(record.query)
        if norm is None:
            norm = math.sqrt(sum(c * c for c in record.clicks.values()))
            self._norms[record.query] = norm
        return norm

    def _collapsed_of(self, record: QueryRecord) -> Counter[str]:
        collapsed = self._collapsed.get(record.query)
        if collapsed is None:
            collapsed = Counter()
            for url, count in record.clicks.items():
                collapsed[url_host_path(url)] += count
            self._collapsed[record.query] = collapsed
            self._collapsed_norms[record.query] = math.sqrt(
                sum(c * c for c in collapsed.values())
            )
        return collapsed


def collect_drop_evidence(
    log: QueryLog,
    segmenter,
    head_similarity_cutoff: float = HEAD_SIMILARITY_CUTOFF,
) -> list[DropEvidence]:
    """Every (query, segment) drop observation, in reference scan order.

    Applies exactly the reference filters: multi-token queries only,
    proper sub-segments only, drop evidence must exist in the log, and
    head-like segments are excluded. The returned stream feeds both the
    droppability tables and the distant-supervision rows.
    """
    cache = SimilarityCache(log)
    evidence: list[DropEvidence] = []
    for record in log.records():
        if len(record.tokens) < 2:
            continue
        for segment in segmenter.segment(record.query):
            if segment.num_tokens >= len(record.tokens):
                continue
            similarity = cache.drop_similarity(record, segment.text)
            if similarity is None:
                continue
            if cache.is_head_like(record, segment.text, head_similarity_cutoff):
                continue
            evidence.append(
                DropEvidence(record.query, segment.text, similarity, record.frequency)
            )
    return evidence
