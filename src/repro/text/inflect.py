"""Tiny English inflection helpers.

Hearst patterns mention concepts in the plural ("cities such as ...");
taxonomy entries are singular. These two functions are intentionally naive —
they only need to round-trip the vocabulary this library generates, and the
corpus generator uses :func:`pluralize` so :func:`singularize` sees exactly
its own output plus common web forms.
"""

from __future__ import annotations

_IRREGULAR_PLURALS = {
    "people": "person",
    "children": "child",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "media": "medium",
}

_IRREGULAR_SINGULARS = {v: k for k, v in _IRREGULAR_PLURALS.items()}

_ES_ENDINGS = ("ch", "sh", "ss", "x", "z")
#: Words ending in "s" that are already singular.
_S_SINGULARS = frozenset({"series", "species", "news", "glasses", "jeans"})


def pluralize(word: str) -> str:
    """Pluralize the last word of a (possibly multi-word) term.

    >>> pluralize("city")
    'cities'
    >>> pluralize("smart watch")
    'smart watches'
    """
    head, _, last = word.rpartition(" ")
    prefix = head + " " if head else ""
    if last in _IRREGULAR_SINGULARS:
        return prefix + _IRREGULAR_SINGULARS[last]
    if last in _S_SINGULARS:
        return prefix + last
    if last.endswith("y") and len(last) > 1 and last[-2] not in "aeiou":
        return prefix + last[:-1] + "ies"
    if last.endswith(_ES_ENDINGS):
        return prefix + last + "es"
    return prefix + last + "s"


def singularize(word: str) -> str:
    """Invert :func:`pluralize` for the vocabulary used in this library.

    >>> singularize("cities")
    'city'
    >>> singularize("smart watches")
    'smart watch'
    """
    head, _, last = word.rpartition(" ")
    prefix = head + " " if head else ""
    if last in _IRREGULAR_PLURALS:
        return prefix + _IRREGULAR_PLURALS[last]
    if last in _S_SINGULARS:
        return prefix + last
    if last.endswith("ies") and len(last) > 4:
        return prefix + last[:-3] + "y"
    for ending in _ES_ENDINGS:
        if last.endswith(ending + "es"):
            return prefix + last[: -2]
    if last.endswith("s") and not last.endswith("ss") and len(last) > 3:
        return prefix + last[:-1]
    return prefix + last
