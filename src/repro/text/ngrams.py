"""N-gram helpers used by log statistics and segmentation."""

from __future__ import annotations

from collections.abc import Iterator, Sequence


def token_ngrams(tokens: Sequence[str], max_n: int, min_n: int = 1) -> Iterator[tuple[str, ...]]:
    """Yield all n-grams of ``tokens`` with ``min_n <= n <= max_n``.

    >>> sorted(" ".join(g) for g in token_ngrams(["a", "b", "c"], max_n=2))
    ['a', 'a b', 'b', 'b c', 'c']
    """
    if min_n <= 0 or max_n < min_n:
        raise ValueError("need 0 < min_n <= max_n")
    for n in range(min_n, max_n + 1):
        for start in range(len(tokens) - n + 1):
            yield tuple(tokens[start : start + n])


def character_ngrams(text: str, n: int) -> list[str]:
    """Character n-grams of a string (used for typo features in tests)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(text) < n:
        return []
    return [text[i : i + n] for i in range(len(text) - n + 1)]
