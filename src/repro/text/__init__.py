"""Lightweight NLP substrate: tokenization, normalization, POS, chunking.

Short texts (queries, ad keywords, titles) need only shallow processing; the
paper's point is that deep grammar is *unreliable* on them. This package
provides the shallow tools the core method needs plus the grammar-based
machinery the syntactic baseline needs.
"""

from repro.text.chunker import NounPhrase, chunk_noun_phrases, np_head
from repro.text.lexicon import Lexicon, default_lexicon
from repro.text.ngrams import character_ngrams, token_ngrams
from repro.text.normalizer import normalize
from repro.text.pos import PosTagger
from repro.text.spelling import SpellingNormalizer, damerau_levenshtein
from repro.text.tokenizer import Token, tokenize

__all__ = [
    "Token",
    "tokenize",
    "normalize",
    "Lexicon",
    "default_lexicon",
    "PosTagger",
    "NounPhrase",
    "chunk_noun_phrases",
    "np_head",
    "token_ngrams",
    "character_ngrams",
    "SpellingNormalizer",
    "damerau_levenshtein",
]
