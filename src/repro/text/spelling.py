"""Spelling normalization against a known vocabulary.

Query logs are full of single-edit typos ("ihpone", "hotles"). Detection
quality should not collapse on them, so the detector can be equipped with
a :class:`SpellingNormalizer` built from the taxonomy vocabulary.

The index is SymSpell-style: every vocabulary token is registered under
all of its single-character deletions, so correcting a token is a handful
of hash lookups instead of a scan. Candidates are verified with a bounded
Damerau-Levenshtein distance (transpositions count as one edit) and
ranked by (distance, -frequency, alphabetical).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


class SpellingNormalizer:
    """Single-edit spelling correction over a fixed vocabulary."""

    def __init__(
        self,
        vocabulary: Iterable[str],
        frequencies: Mapping[str, float] | None = None,
        min_token_length: int = 4,
    ) -> None:
        """``vocabulary`` entries may be multi-word; they are split into
        tokens. Tokens shorter than ``min_token_length`` are never
        corrected (too many near-neighbours)."""
        self._min_token_length = min_token_length
        self._frequencies = dict(frequencies or {})
        self._tokens: set[str] = set()
        self._deletion_index: dict[str, set[str]] = {}
        for entry in vocabulary:
            for token in entry.split():
                self._add_token(token)

    @classmethod
    def from_taxonomy(cls, taxonomy, min_token_length: int = 4) -> "SpellingNormalizer":
        """Build a normalizer from a taxonomy's instance vocabulary, using
        instance popularity as the tie-breaking frequency."""
        frequencies: dict[str, float] = {}
        for instance in taxonomy.iter_instances():
            total = taxonomy.instance_total(instance)
            for token in instance.split():
                frequencies[token] = frequencies.get(token, 0.0) + total
        return cls(
            taxonomy.vocabulary(),
            frequencies=frequencies,
            min_token_length=min_token_length,
        )

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct correction-target tokens."""
        return len(self._tokens)

    def is_known(self, token: str) -> bool:
        """Whether the token is in the correction vocabulary."""
        return token in self._tokens

    def correct_token(self, token: str) -> str:
        """The best single-edit correction of ``token`` (or ``token``).

        Known tokens, short tokens, and numeric tokens are returned
        unchanged — model numbers ("5s") must never be "corrected".
        """
        if (
            token in self._tokens
            or len(token) < self._min_token_length
            or any(ch.isdigit() for ch in token)
        ):
            return token
        candidates = self._candidates(token)
        if not candidates:
            return token
        return min(
            candidates,
            key=lambda c: (
                damerau_levenshtein(token, c, max_distance=2),
                -self._frequencies.get(c, 0.0),
                c,
            ),
        )

    def correct(self, text: str) -> str:
        """Correct every token of an (already normalized) text."""
        return " ".join(self.correct_token(t) for t in text.split())

    def _add_token(self, token: str) -> None:
        if token in self._tokens:
            return
        self._tokens.add(token)
        for variant in _deletions(token):
            self._deletion_index.setdefault(variant, set()).add(token)

    def _candidates(self, token: str) -> set[str]:
        found: set[str] = set()
        for variant in _deletions(token) | {token}:
            found |= self._deletion_index.get(variant, set())
            if variant in self._tokens:
                found.add(variant)
        return {c for c in found if damerau_levenshtein(token, c, max_distance=1) <= 1}


def _deletions(token: str) -> set[str]:
    return {token[:i] + token[i + 1 :] for i in range(len(token))}


def damerau_levenshtein(a: str, b: str, max_distance: int = 2) -> int:
    """Bounded Damerau-Levenshtein distance (adjacent transposition = 1).

    Returns ``max_distance + 1`` as soon as the bound is exceeded, which
    keeps verification O(len · bound).

    >>> damerau_levenshtein("ihpone", "iphone")
    1
    >>> damerau_levenshtein("hotles", "hotels")
    1
    """
    if a == b:
        return 0
    if abs(len(a) - len(b)) > max_distance:
        return max_distance + 1
    previous2: list[int] | None = None
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
            if (
                previous2 is not None
                and i > 1
                and j > 1
                and char_a == b[j - 2]
                and a[i - 2] == char_b
            ):
                current[j] = min(current[j], previous2[j - 2] + 1)
        if min(current) > max_distance:
            return max_distance + 1
        previous2, previous = previous, current
    # Everything above the bound is reported as bound+1, so results are
    # symmetric regardless of which operand triggered the early exit.
    return min(previous[len(b)], max_distance + 1)
