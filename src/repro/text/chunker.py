"""Noun-phrase chunking and the classic right-headed NP head rule.

Used only by :mod:`repro.baselines.syntactic`; the semantic method never
relies on grammar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.pos import TaggedToken

#: Tags allowed inside a noun phrase.
_NP_TAGS = frozenset({"DT", "JJ", "NN", "CD"})


@dataclass(frozen=True, slots=True)
class NounPhrase:
    """A maximal NP chunk: contiguous tokens with NP-compatible tags."""

    tokens: tuple[TaggedToken, ...]

    @property
    def text(self) -> str:
        """The chunk's surface text."""
        return " ".join(t.text for t in self.tokens)

    @property
    def nouns(self) -> tuple[str, ...]:
        """Texts of the noun tokens inside the chunk."""
        return tuple(t.text for t in self.tokens if t.tag == "NN")


def chunk_noun_phrases(tagged: list[TaggedToken]) -> list[NounPhrase]:
    """Group maximal runs of NP-compatible tokens into chunks.

    >>> from repro.text.pos import PosTagger
    >>> chunks = chunk_noun_phrases(PosTagger().tag("cheap hotels in rome"))
    >>> [c.text for c in chunks]
    ['cheap hotels', 'rome']
    """
    chunks: list[NounPhrase] = []
    current: list[TaggedToken] = []
    for token in tagged:
        if token.tag in _NP_TAGS:
            current.append(token)
        elif current:
            chunks.append(NounPhrase(tuple(current)))
            current = []
    if current:
        chunks.append(NounPhrase(tuple(current)))
    return chunks


def np_head(phrase: NounPhrase) -> str | None:
    """Head of an English NP: the rightmost noun (standard head-final rule)."""
    nouns = phrase.nouns
    return nouns[-1] if nouns else None
