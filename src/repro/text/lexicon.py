"""Built-in lexical resources.

The paper's constraint detector distinguishes *subjective* modifiers
("best", "cheap") from *specific* ones ("iphone 5s", "seattle"); the
subjectivity list here is the lexicon feature of that classifier. The POS
lexicon drives the rule tagger used by the syntactic baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

STOPWORDS: frozenset[str] = frozenset(
    """
    a an the of for in on at to with and or by from about as into near
    is are was were be been being do does did not no
    my your our their his her its this that these those
    """.split()
)

#: Words typical of "connector" query syntax ("cases for iphone 5").
CONNECTORS: frozenset[str] = frozenset("for with in of on at near under to".split())

#: Subjective / evaluative modifiers: negligible for intent matching.
SUBJECTIVE_MODIFIERS: frozenset[str] = frozenset(
    """
    best top good great cheap cheapest affordable budget popular famous
    latest new newest recent cool nice awesome amazing excellent premium
    quality reliable fast easy simple free discount discounted
    recommended rated reviewed trusted luxury stylish elegant
    hot trendy classic modern beautiful pretty fancy ultimate perfect
    """.split()
)

#: Intent markers that are neither head nor modifier ("buy", "reviews").
INTENT_VERBS: frozenset[str] = frozenset(
    "buy find get compare rent book order download watch".split()
)

_ADJECTIVES = SUBJECTIVE_MODIFIERS | frozenset(
    """
    red blue black white green small large big tiny huge used refurbished
    wireless portable digital electric organic vegan gluten spicy italian
    french japanese chinese mexican indian leather wooden metal plastic
    waterproof outdoor indoor automatic manual annual monthly local
    """.split()
)

_DETERMINERS = frozenset("a an the this that these those my your our their".split())
_PREPOSITIONS = frozenset(
    "for with in of on at near under over to from by about into".split()
)
_CONJUNCTIONS = frozenset("and or but".split())
_VERBS = INTENT_VERBS | frozenset(
    """
    is are was were be been being have has had do does did make makes
    need needs want wants work works install installs
    can could will would may might shall should must
    prefer prefers sell sells dominate dominates recommend recommends
    suit suits remain remains
    """.split()
)

_ADJ_SUFFIXES = ("able", "ible", "ful", "less", "ous", "ive", "ish", "est")
_ADV_SUFFIX = "ly"
_NOUN_SUFFIXES = ("tion", "sion", "ment", "ness", "ship", "ware", "ers")


@dataclass(frozen=True)
class Lexicon:
    """Bundled word lists with POS lookup.

    ``pos_of`` applies, in order: closed-class lists, the adjective list,
    digit shape, adjective/adverb suffix heuristics, and finally defaults to
    noun — the right prior for query vocabulary.
    """

    stopwords: frozenset[str] = STOPWORDS
    connectors: frozenset[str] = CONNECTORS
    subjective: frozenset[str] = SUBJECTIVE_MODIFIERS
    intent_verbs: frozenset[str] = INTENT_VERBS
    adjectives: frozenset[str] = field(default=_ADJECTIVES)
    determiners: frozenset[str] = field(default=_DETERMINERS)
    prepositions: frozenset[str] = field(default=_PREPOSITIONS)
    conjunctions: frozenset[str] = field(default=_CONJUNCTIONS)
    verbs: frozenset[str] = field(default=_VERBS)

    def is_subjective(self, word: str) -> bool:
        """True when ``word`` is an evaluative, intent-negligible modifier."""
        return word in self.subjective

    def is_stopword(self, word: str) -> bool:
        """Whether the word is a function/stop word."""
        return word in self.stopwords

    def pos_of(self, word: str) -> str:
        """Best-guess POS tag: DT, IN, CC, VB, JJ, RB, CD, or NN."""
        if word in self.determiners:
            return "DT"
        if word in self.prepositions:
            return "IN"
        if word in self.conjunctions:
            return "CC"
        if word in self.verbs:
            return "VB"
        if word in self.adjectives:
            return "JJ"
        if _looks_numeric(word):
            return "CD"
        if word.endswith(_ADV_SUFFIX) and len(word) > 4:
            return "RB"
        if word.endswith(_ADJ_SUFFIXES) and len(word) > 5:
            return "JJ"
        return "NN"


def _looks_numeric(word: str) -> bool:
    return any(ch.isdigit() for ch in word) and not word.isalpha()


_DEFAULT = Lexicon()


def default_lexicon() -> Lexicon:
    """Return the shared immutable default :class:`Lexicon`."""
    return _DEFAULT
