"""Query-style tokenizer.

Search queries rarely contain sentence punctuation, but they do contain
model numbers ("5s", "gtx-780"), prices ("$200"), and years ("2013"). The
tokenizer keeps alphanumeric runs together (including internal digits),
splits on whitespace and most punctuation, and records character offsets so
callers can map back into the original string.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(
    r"""
    \$\d+(?:[.,]\d+)*                      # prices ($25, $1,299.99)
    | \d+(?:[.,]\d+)+%?                    # decimals / thousands (1,299.99)
    | [a-zA-Z0-9]+(?:[''][a-zA-Z0-9]+)*%?  # words, model codes (5s), 20%
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """A token with its span in the source string."""

    text: str
    start: int
    end: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into :class:`Token` objects.

    Hyphenated compounds are split ("e-mail" -> "e", "mail") because query
    logs are inconsistent about hyphens; the normalizer upstream usually
    removes them first.

    >>> [t.text for t in tokenize("iphone 5s smart-cover $25")]
    ['iphone', '5s', 'smart', 'cover', '$25']
    """
    return [Token(m.group(0), m.start(), m.end()) for m in _TOKEN_RE.finditer(text)]


def token_texts(text: str) -> list[str]:
    """Convenience wrapper returning only the token strings."""
    return [t.text for t in tokenize(text)]
