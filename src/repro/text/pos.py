"""Rule/lexicon-based POS tagger.

This is the substrate for the *syntactic baseline* (the coarse-grained,
grammar-driven head detection the paper argues against). It is deliberately
a classic shallow tagger: closed-class lexicon, suffix heuristics, plus two
contextual repair rules. On grammatical noun phrases it is accurate; on
query-style text its errors are exactly the failure mode the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.lexicon import Lexicon, default_lexicon
from repro.text.tokenizer import tokenize


@dataclass(frozen=True, slots=True)
class TaggedToken:
    text: str
    tag: str


class PosTagger:
    """Tag tokens with a small Penn-style tagset (NN, JJ, DT, IN, CC, VB, CD, RB)."""

    def __init__(self, lexicon: Lexicon | None = None) -> None:
        self._lexicon = lexicon or default_lexicon()

    def tag(self, text: str) -> list[TaggedToken]:
        """Tokenize and tag ``text``.

        >>> PosTagger().tag("cheap rome hotels")[-1].tag
        'NN'
        """
        words = [t.text for t in tokenize(text)]
        return self.tag_words(words)

    def tag_words(self, words: list[str]) -> list[TaggedToken]:
        """Tag an already-tokenized word list."""
        tags = [self._lexicon.pos_of(w.lower()) for w in words]
        self._apply_context_rules(words, tags)
        return [TaggedToken(w, t) for w, t in zip(words, tags)]

    def _apply_context_rules(self, words: list[str], tags: list[str]) -> None:
        for i in range(len(tags)):
            # A verb directly after a determiner is really a noun
            # ("the reviews", "a buy").
            if tags[i] == "VB" and i > 0 and tags[i - 1] == "DT":
                tags[i] = "NN"
            # A bare number following a noun is part of a model name
            # ("iphone 5"), not a cardinal quantifier.
            if tags[i] == "CD" and i > 0 and tags[i - 1] == "NN":
                tags[i] = "NN"
