"""Text normalization shared by the taxonomy, the query log, and detection.

Everything that compares strings (taxonomy lookups, pattern matching, pair
mining) must see the *same* normal form, so normalization lives in exactly
one place.
"""

from __future__ import annotations

import re
import unicodedata

_WS_RE = re.compile(r"\s+")
_DASH_RE = re.compile(r"[-–—_/]+")
_STRIP_RE = re.compile(r"[^\w\s$%.']", re.UNICODE)


def normalize(text: str) -> str:
    """Return the canonical form of ``text``.

    Steps: Unicode NFKC fold, lowercase, dashes/underscores/slashes to
    spaces, strip residual punctuation (keeping ``$ % . '`` which carry
    meaning in queries), collapse whitespace.

    >>> normalize("  iPhone-5S  Smart_Cover ")
    'iphone 5s smart cover'
    """
    text = unicodedata.normalize("NFKC", text)
    text = text.lower()
    text = _DASH_RE.sub(" ", text)
    text = _STRIP_RE.sub(" ", text)
    text = _WS_RE.sub(" ", text)
    return text.strip()


def normalize_term(term: str) -> str:
    """Normalize a term that acts as a dictionary key (taxonomy entries).

    Like :func:`normalize` but also strips a trailing period, which shows up
    in extraction output ("inc.", "corp.").
    """
    norm = normalize(term)
    return norm.rstrip(". ")
