"""repro — Head, modifier, and constraint detection in short texts.

A full reimplementation of Wang, Wang & Hu (ICDE 2014): mine instance-level
head-modifier pairs from a search log, generalize them to weighted concept
patterns through a Probase-style isA taxonomy, detect heads/modifiers in
arbitrary short texts, and classify modifiers into constraints vs.
subjective preferences.

Quickstart::

    from repro import build_default_model

    model = build_default_model(seed=7)
    detector = model.detector()
    detection = detector.detect("popular iphone 5s smart cover")
    print(detection.head)        # "smart cover"
    print(detection.modifiers)   # ("popular", "iphone 5s")
    print(detection.constraints) # ("iphone 5s",)

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
evaluation.
"""

from repro.core import (
    ConceptPattern,
    Conceptualizer,
    ConstraintClassifier,
    Detection,
    DetectorConfig,
    HdmModel,
    HeadModifierDetector,
    PatternTable,
    RuleConstraintClassifier,
    Segmenter,
    TermRole,
    TrainingConfig,
    load_model,
    save_model,
    train_model,
)
from repro.errors import ReproError
from repro.mining import MiningConfig, mine_pairs
from repro.querylog import LogConfig, QueryLog, generate_log
from repro.taxonomy import ConceptTaxonomy, TypicalityScorer, build_from_seed

__version__ = "1.0.0"

__all__ = [
    "build_default_model",
    "train_model",
    "TrainingConfig",
    "HdmModel",
    "save_model",
    "load_model",
    "HeadModifierDetector",
    "DetectorConfig",
    "Detection",
    "TermRole",
    "Segmenter",
    "Conceptualizer",
    "ConceptPattern",
    "PatternTable",
    "ConstraintClassifier",
    "RuleConstraintClassifier",
    "ConceptTaxonomy",
    "TypicalityScorer",
    "build_from_seed",
    "QueryLog",
    "LogConfig",
    "generate_log",
    "MiningConfig",
    "mine_pairs",
    "ReproError",
    "__version__",
]


def build_default_model(
    seed: int = 13,
    num_intents: int = 4000,
    config: TrainingConfig | None = None,
    workers: int = 1,
    vectorized: bool = False,
) -> HdmModel:
    """Train a model on the built-in taxonomy and a synthetic log.

    This is the one-call entry point for examples and experiments: build
    the seed taxonomy, generate a search log, and run the full training
    pipeline. ``workers``/``vectorized`` select the fast training path
    (:mod:`repro.training`), which is output-identical to the reference.
    """
    taxonomy = build_from_seed()
    log = generate_log(taxonomy, LogConfig(seed=seed, num_intents=num_intents))
    return train_model(log, taxonomy, config, workers=workers, vectorized=vectorized)
