"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base type. Subclasses mark the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TaxonomyError(ReproError):
    """Raised for invalid taxonomy data or malformed taxonomy files."""


class QueryLogError(ReproError):
    """Raised for malformed query-log records or unusable log files."""


class MiningError(ReproError):
    """Raised when head-modifier pair mining receives unusable input."""


class ModelError(ReproError):
    """Raised for model (de)serialization and fitting problems."""


class NotFittedError(ModelError):
    """Raised when a component is used before it has been fitted/trained."""


class EvaluationError(ReproError):
    """Raised for malformed evaluation datasets or metric misuse."""


class ShardError(ReproError):
    """Raised when a parallel detection worker or worker pool fails.

    Carries the failing shard/chunk and a preview of its texts so batch
    failures are attributable without re-running the sweep."""


class ServingError(ReproError):
    """Raised by the online serving layer (:mod:`repro.serving`)."""


class ServerOverloadedError(ServingError):
    """Raised when admission control rejects a request: the serving
    queue is at capacity. Deterministic backpressure — callers should
    shed load or retry with backoff, never queue unboundedly."""


class ServerClosedError(ServingError):
    """Raised when a request arrives after the server began shutdown."""


class ReplicaProtocolError(ServingError):
    """Raised when the router↔replica socket protocol is violated: an
    oversized or malformed frame, an unknown op, or a response that
    cannot be matched to a pending request. Deterministic like the rest
    of the serving errors — a protocol violation closes the connection
    instead of leaving a reader wedged."""


class ReplicaUnavailableError(ServingError):
    """Raised when a request cannot reach its replica: the replica is
    down, draining, or its connection died mid-request. The router maps
    it to re-routing (another replica on the hash ring) or, when no
    replica is up, to the same 503 surface as
    :class:`ServerOverloadedError`."""


class AnalysisError(ReproError):
    """Raised by the static-analysis engine (:mod:`repro.analysis`) for
    usage errors: unknown rule ids, unparseable sources, bad paths, or a
    corrupt baseline file. The ``repro lint`` CLI maps it to exit 2."""
