"""Session-reformulation mining.

Within a session, users edit their queries: dropping a modifier and being
satisfied means it was negligible (a preference); adding one back after an
underspecified query means it was needed (a constraint). This is a second,
click-free source of the same droppability signal the click-based features
use — the paper's log offered both, and a deployed system can combine
them.

:class:`ReformulationMiner` diffs consecutive queries of each session at
the segment level and aggregates per-phrase *dropped* / *added* counts;
:class:`SessionConstraintClassifier` turns those into a standalone
constraint detector (evaluated against the click-based classifier in the
R6 benchmark).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.querylog.models import QueryLog
from repro.text.lexicon import Lexicon, default_lexicon
from repro.utils.mathx import safe_div


@dataclass
class ReformulationEvidence:
    """Per-phrase counts of session edits.

    ``dropped[p]``: sessions where the user removed ``p`` and moved on;
    ``added[p]``: sessions where the user added ``p`` to refine a query.
    """

    dropped: Counter = field(default_factory=Counter)
    added: Counter = field(default_factory=Counter)

    @property
    def num_phrases(self) -> int:
        """Number of distinct phrases with any edit evidence."""
        return len(set(self.dropped) | set(self.added))

    def droppability(self, phrase: str, smoothing: float = 1.0) -> float | None:
        """P(phrase is droppable) from session edits; ``None`` without
        evidence. Smoothed toward 0.5."""
        drops = self.dropped.get(phrase, 0)
        adds = self.added.get(phrase, 0)
        if drops + adds == 0:
            return None
        return (drops + smoothing * 0.5) / (drops + adds + smoothing)

    def merge(self, other: "ReformulationEvidence") -> None:
        """Accumulate another evidence table into this one."""
        self.dropped.update(other.dropped)
        self.added.update(other.added)


class ReformulationMiner:
    """Extracts per-phrase edit evidence from session reformulations."""

    def __init__(self, lexicon: Lexicon | None = None, max_diff_tokens: int = 3) -> None:
        self._lexicon = lexicon or default_lexicon()
        self._max_diff_tokens = max_diff_tokens

    def mine(self, log: QueryLog) -> ReformulationEvidence:
        """Aggregate edits over every session of ``log``."""
        evidence = ReformulationEvidence()
        for session in log.sessions():
            for earlier, later in session.reformulation_pairs():
                self._record_edit(evidence, earlier, later)
        return evidence

    def _record_edit(
        self, evidence: ReformulationEvidence, earlier: str, later: str
    ) -> None:
        """Classify one reformulation as a drop, an addition, or neither.

        Only pure subset edits count — rewrites that change other tokens
        are ambiguous and ignored.
        """
        earlier_tokens = earlier.split()
        later_tokens = later.split()
        removed = _contiguous_difference(earlier_tokens, later_tokens)
        if removed is not None and len(removed) <= self._max_diff_tokens:
            evidence.dropped[" ".join(removed)] += 1
            return
        added = _contiguous_difference(later_tokens, earlier_tokens)
        if added is not None and len(added) <= self._max_diff_tokens:
            evidence.added[" ".join(added)] += 1


def _contiguous_difference(longer: list[str], shorter: list[str]) -> list[str] | None:
    """Tokens removed from ``longer`` to obtain ``shorter``, when the edit
    is exactly one contiguous deletion; ``None`` otherwise."""
    extra = len(longer) - len(shorter)
    if extra <= 0:
        return None
    for start in range(len(longer) - extra + 1):
        if longer[:start] + longer[start + extra :] == shorter:
            return longer[start : start + extra]
    return None


class SessionConstraintClassifier:
    """Constraint detection from session evidence alone.

    A modifier with session evidence is a constraint iff users tend to
    add it rather than drop it; without evidence it falls back to the
    subjectivity lexicon. Exists to quantify how far reformulations alone
    go (R6) — the trained classifier combines this signal with clicks.
    """

    def __init__(
        self,
        evidence: ReformulationEvidence,
        threshold: float = 0.5,
        lexicon: Lexicon | None = None,
    ) -> None:
        if not 0 < threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        self._evidence = evidence
        self._threshold = threshold
        self._lexicon = lexicon or default_lexicon()

    def constraint_probability(self, query: str, modifier: str) -> float:
        """P(constraint) from session edits, lexicon fallback."""
        droppability = self._evidence.droppability(modifier)
        if droppability is not None:
            return 1.0 - droppability
        words = modifier.split()
        subjective = all(
            self._lexicon.is_subjective(w) or w in self._lexicon.intent_verbs
            for w in words
        )
        return 0.0 if subjective else 1.0

    def is_constraint(self, query: str, modifier: str) -> bool:
        """Whether session evidence marks ``modifier`` as a constraint."""
        return self.constraint_probability(query, modifier) >= self._threshold

    def coverage(self, modifiers: list[str]) -> float:
        """Fraction of modifiers with direct session evidence."""
        with_evidence = sum(
            1 for m in modifiers if self._evidence.droppability(m) is not None
        )
        return safe_div(with_evidence, len(modifiers))
