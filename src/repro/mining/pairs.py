"""Head-modifier pair miners.

The miners read only the observable log interface (records, frequencies,
clicks) — never gold labels. Their output is the training signal for the
concept-pattern derivation in :mod:`repro.core.concept_patterns`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import MiningError
from repro.querylog.models import QueryLog, QueryRecord
from repro.querylog.stats import host_path_similarity
from repro.text.lexicon import Lexicon, default_lexicon


@dataclass(frozen=True, slots=True)
class MinedPair:
    """Evidence that ``modifier`` modifies ``head`` at the instance level.

    ``support`` is query volume backing the pair; ``source`` names the
    miner that produced it.
    """

    modifier: str
    head: str
    support: float
    source: str

    def __post_init__(self) -> None:
        if self.support <= 0:
            raise MiningError("pair support must be positive")


@dataclass(frozen=True)
class MiningConfig:
    """Shared miner thresholds."""

    min_query_frequency: int = 2
    max_query_tokens: int = 6
    #: Minimum host+path click similarity between the query and the
    #: head-side sub-query for the deletion test to accept a split.
    min_head_similarity: float = 0.6
    #: The head side must beat the modifier side by at least this margin
    #: (when the modifier side exists in the log at all).
    min_similarity_margin: float = 0.2
    min_pair_support: float = 3.0


class PairCollection:
    """Aggregated mined pairs: ``(modifier, head) -> total support``."""

    def __init__(self) -> None:
        self._support: dict[tuple[str, str], float] = {}
        self._sources: dict[tuple[str, str], set[str]] = {}

    def add(self, pair: MinedPair) -> None:
        """Accumulate one piece of mined-pair evidence."""
        key = (pair.modifier, pair.head)
        self._support[key] = self._support.get(key, 0.0) + pair.support
        self._sources.setdefault(key, set()).add(pair.source)

    def support(self, modifier: str, head: str) -> float:
        """Total support of ``(modifier, head)`` (0 when absent)."""
        return self._support.get((modifier, head), 0.0)

    def sources(self, modifier: str, head: str) -> frozenset[str]:
        """Names of the miners that produced this pair."""
        return frozenset(self._sources.get((modifier, head), ()))

    def merge(self, other: "PairCollection") -> None:
        """Accumulate another collection's support into this one."""
        for modifier, head, support in other.items():
            key = (modifier, head)
            self._support[key] = self._support.get(key, 0.0) + support
            self._sources.setdefault(key, set()).update(other.sources(modifier, head))

    def copy(self) -> "PairCollection":
        """A deep copy (merging into a copy leaves the original intact)."""
        duplicate = PairCollection()
        duplicate._support = dict(self._support)
        duplicate._sources = {k: set(v) for k, v in self._sources.items()}
        return duplicate

    def filtered(self, min_support: float) -> "PairCollection":
        """A copy keeping only pairs at or above ``min_support``."""
        result = PairCollection()
        for (modifier, head), support in self._support.items():
            if support >= min_support:
                result._support[(modifier, head)] = support
                result._sources[(modifier, head)] = set(self._sources[(modifier, head)])
        return result

    @classmethod
    def from_support(
        cls,
        support: dict[tuple[str, str], float],
        source: str | None = None,
    ) -> "PairCollection":
        """Rebuild a collection from a raw support mapping.

        Used by the runtime snapshot loader, which persists only the
        supports (miner provenance is training-time metadata). ``source``
        optionally labels every pair; with None the source sets are empty.
        """
        collection = cls()
        labels = {source} if source is not None else set()
        for key, value in support.items():
            collection._support[key] = value
            collection._sources[key] = set(labels)
        return collection

    def support_map(self) -> dict[tuple[str, str], float]:
        """The raw ``(modifier, head) → support`` mapping.

        Exposed for the compiled runtime, which binds the dict directly
        into its hot path instead of paying a method call per lookup.
        Callers must treat it as read-only.
        """
        return self._support

    def items(self) -> Iterator[tuple[str, str, float]]:
        """Yield ``(modifier, head, support)`` triples."""
        for (modifier, head), support in self._support.items():
            yield modifier, head, support

    def top(self, n: int) -> list[tuple[str, str, float]]:
        """The ``n`` highest-support pairs, best first (deterministic)."""
        return sorted(self.items(), key=lambda t: (-t[2], t[0], t[1]))[:n]

    @property
    def total_support(self) -> float:
        """Sum of support over all pairs."""
        return sum(self._support.values())

    def __len__(self) -> int:
        return len(self._support)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._support

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the pairs as TSV (gzip when the suffix is ``.gz``)."""
        import gzip
        import os
        import tempfile
        from pathlib import Path

        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        tmp = Path(tmp_name)
        opener = gzip.open if path.suffix == ".gz" else open
        try:
            with opener(tmp, "wt", encoding="utf-8") as out:
                out.write("# repro-pairs v1\n")
                for modifier, head, support in sorted(self.items()):
                    sources = ",".join(sorted(self.sources(modifier, head)))
                    out.write(f"{modifier}\t{head}\t{support!r}\t{sources}\n")
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path) -> "PairCollection":
        """Read a collection written by :meth:`save`.

        Raises :class:`MiningError` on malformed or truncated files.
        """
        from pathlib import Path

        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(path)
        try:
            return cls._load(path)
        except (EOFError, OSError, UnicodeDecodeError) as exc:
            raise MiningError(f"{path}: unreadable pair file ({exc})") from exc

    @classmethod
    def _load(cls, path) -> "PairCollection":
        import gzip

        opener = gzip.open if path.suffix == ".gz" else open
        collection = cls()
        with opener(path, "rt", encoding="utf-8") as handle:
            header = handle.readline().rstrip("\n")
            if header != "# repro-pairs v1":
                raise MiningError(f"{path}: not a pair file (header {header!r})")
            for line_no, line in enumerate(handle, start=2):
                line = line.rstrip("\n")
                if not line:
                    continue
                fields = line.split("\t")
                if len(fields) != 4:
                    raise MiningError(f"{path}:{line_no}: malformed pair line")
                modifier, head, support_text, sources = fields
                try:
                    support = float(support_text)
                except ValueError as exc:
                    raise MiningError(
                        f"{path}:{line_no}: bad support {support_text!r}"
                    ) from exc
                collection._support[(modifier, head)] = support
                collection._sources[(modifier, head)] = set(
                    s for s in sources.split(",") if s
                )
        return collection


class DeletionMiner:
    """Mines pairs with the sub-query click-overlap (deletion) test.

    For each multi-token query, every binary token split (left, right) is
    tested in both (modifier, head) orientations. An orientation is
    accepted when the head side exists as a standalone query whose clicks
    point at the same pages (host+path) as the full query, and the modifier
    side either is absent from the log or points elsewhere.
    """

    def __init__(
        self,
        config: MiningConfig | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        self._config = config or MiningConfig()
        self._lexicon = lexicon or default_lexicon()

    def mine(self, log: QueryLog) -> Iterator[MinedPair]:
        """Yield pairs from every eligible query of ``log``."""
        for record in log.records():
            yield from self.mine_record(log, record)

    def mine_record(self, log: QueryLog, record: QueryRecord) -> Iterator[MinedPair]:
        """Yield pairs for a single record (the unit sharded mining splits on)."""
        cfg = self._config
        tokens = record.tokens
        if (
            record.frequency < cfg.min_query_frequency
            or not 2 <= len(tokens) <= cfg.max_query_tokens
            or not record.clicks
        ):
            return
        for split in range(1, len(tokens)):
            left = " ".join(tokens[:split])
            right = " ".join(tokens[split:])
            yield from self._test_orientation(log, record, modifier=left, head=right)
            yield from self._test_orientation(log, record, modifier=right, head=left)

    def _test_orientation(
        self, log: QueryLog, record: QueryRecord, modifier: str, head: str
    ) -> Iterator[MinedPair]:
        cfg = self._config
        if self._is_non_instance(modifier):
            return
        head_record = log.lookup(head)
        if head_record is None or not head_record.clicks:
            return
        head_sim = host_path_similarity(record.clicks, head_record.clicks)
        if head_sim < cfg.min_head_similarity:
            return
        modifier_record = log.lookup(modifier)
        if modifier_record is not None and modifier_record.clicks:
            modifier_sim = host_path_similarity(record.clicks, modifier_record.clicks)
            if head_sim - modifier_sim < cfg.min_similarity_margin:
                return
        support = float(record.frequency)
        for component in self._modifier_components(log, modifier):
            yield MinedPair(component, head, support=support, source="deletion")

    def _modifier_components(self, log: QueryLog, modifier: str) -> Iterator[str]:
        """Clean and decompose a raw modifier side into instance phrases.

        Function/subjective words are stripped, then the remainder is
        greedily segmented into the longest sub-phrases that exist as
        standalone log queries — so "good vertigo" yields "vertigo", and a
        two-constraint side like "meatloaf whole30" yields both pieces.
        """
        words = [
            w
            for w in modifier.split()
            if not (
                self._lexicon.is_subjective(w)
                or self._lexicon.is_stopword(w)
                or w in self._lexicon.intent_verbs
            )
        ]
        i = 0
        while i < len(words):
            matched = None
            for j in range(len(words), i, -1):
                candidate = " ".join(words[i:j])
                if j - i == 1 or log.lookup(candidate) is not None:
                    matched = candidate
                    i = j
                    break
            if matched is None:  # pragma: no cover - j loop always matches at j=i+1
                i += 1
                continue
            yield matched

    def _is_non_instance(self, phrase: str) -> bool:
        """Phrases made only of subjective/function words are not instances."""
        words = phrase.split()
        return all(
            self._lexicon.is_subjective(w)
            or self._lexicon.is_stopword(w)
            or w in self._lexicon.intent_verbs
            for w in words
        )


class LexicalPatternMiner:
    """Mines pairs from explicit connector surfaces ("cases for iphone 5s").

    In "H ``for|in`` M", the left side is the head and the right side the
    modifier — direct lexical evidence requiring no click data, which is
    why the paper can bootstrap from raw query strings.
    """

    _CONNECTORS = ("for", "in")

    def __init__(
        self,
        config: MiningConfig | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        self._config = config or MiningConfig()
        self._lexicon = lexicon or default_lexicon()

    def mine(self, log: QueryLog) -> Iterator[MinedPair]:
        """Yield pairs from connector surfaces in ``log``."""
        for record in log.records():
            yield from self.mine_record(log, record)

    def mine_record(self, log: QueryLog, record: QueryRecord) -> Iterator[MinedPair]:
        """Yield pairs for a single record (the unit sharded mining splits on)."""
        cfg = self._config
        if record.frequency < cfg.min_query_frequency:
            return
        tokens = record.tokens
        if not 3 <= len(tokens) <= cfg.max_query_tokens:
            return
        yield from self._mine_tokens(tokens, record.frequency)

    def _mine_tokens(self, tokens: tuple[str, ...], frequency: int) -> Iterator[MinedPair]:
        for i, token in enumerate(tokens):
            if token not in self._CONNECTORS or i == 0 or i == len(tokens) - 1:
                continue
            head = " ".join(self._strip_context(tokens[:i]))
            modifier = " ".join(tokens[i + 1 :])
            if not head or not modifier or head == modifier:
                continue
            yield MinedPair(modifier, head, support=float(frequency), source="lexical")
            return  # one connector per query; nested connectors are noise

    def _strip_context(self, tokens: tuple[str, ...]) -> list[str]:
        """Drop leading subjective/verb words: "best cases for X" → "cases"."""
        words = list(tokens)
        while words and (
            self._lexicon.is_subjective(words[0])
            or words[0] in self._lexicon.intent_verbs
            or self._lexicon.is_stopword(words[0])
        ):
            words = words[1:]
        return words


def mine_pairs(
    log: QueryLog,
    config: MiningConfig | None = None,
    miners: Iterable | None = None,
) -> PairCollection:
    """Run all miners over ``log`` and return filtered, merged pairs."""
    config = config or MiningConfig()
    if miners is None:
        miners = (DeletionMiner(config), LexicalPatternMiner(config))
    collection = PairCollection()
    for miner in miners:
        for pair in miner.mine(log):
            collection.add(pair)
    return collection.filtered(config.min_pair_support)
