"""Instance-level head-modifier pair mining from a query log.

This is step 1 of the paper's pipeline: acquire a large number of
``(modifier, head)`` pairs at the *instance* level, with no manual
labelling, by exploiting regularities of the log itself:

- **deletion test** (:class:`DeletionMiner`): for a query ``q`` split into
  (left, right), the side whose standalone sub-query attracts clicks on the
  same host+path as ``q`` is the head; the other side is the modifier.
- **lexical patterns** (:class:`LexicalPatternMiner`): surfaces like
  "X for Y" / "X in Y" name the head on the left explicitly.

Both miners emit :class:`MinedPair` evidence; :func:`mine_pairs` merges and
filters them.
"""

from repro.mining.pairs import (
    DeletionMiner,
    LexicalPatternMiner,
    MinedPair,
    MiningConfig,
    PairCollection,
    mine_pairs,
)
from repro.mining.sessions import (
    ReformulationEvidence,
    ReformulationMiner,
    SessionConstraintClassifier,
)

__all__ = [
    "MinedPair",
    "MiningConfig",
    "PairCollection",
    "DeletionMiner",
    "LexicalPatternMiner",
    "mine_pairs",
    "ReformulationEvidence",
    "ReformulationMiner",
    "SessionConstraintClassifier",
]
