"""One serving replica: a snapshot-backed detection process behind a
length-prefixed asyncio socket protocol.

The multi-replica architecture (:mod:`repro.serving.router`) runs N of
these processes behind one front-door router. Each replica loads the
*same* ``HDMSNAP1`` snapshot via ``mmap`` — resident model memory is
shared page cache across the fleet, not N private copies — and serves
its :class:`~repro.serving.service.DetectionService` (micro-batcher,
result cache, admission control: the whole PR 4 request path) over a
deliberately minimal inward-facing wire protocol:

- **Framing** — every message is ``4-byte big-endian length`` +
  ``JSON (sorted keys)``. One persistent connection carries many
  concurrent requests: frames are multiplexed by an ``"id"`` the client
  chooses and the replica echoes, so a slow detection never
  head-of-line-blocks a health probe on the same socket.
- **Ops** — ``detect`` (query → the ``repro detect --json`` payload),
  ``health`` (status + replica id + generation + model generation +
  pid), ``stats`` (the service's full counters/stages dict),
  ``cache_keys`` (the top-N hottest normalized result-cache keys via
  :meth:`~repro.serving.service.DetectionService.hot_keys` — the donor
  side of replica cache warm-up), and
  ``reload`` (hot-swap the serving snapshot in place via
  :meth:`~repro.serving.service.DetectionService.swap_snapshot` —
  in-flight detections finish on the old model, the swap drops
  nothing). Unknown ops get a structured
  error frame; protocol violations (oversized frame, junk bytes) close
  the connection with :class:`~repro.errors.ReplicaProtocolError`
  semantics rather than wedging the reader.
- **Errors** — per-request and structured: ``{"ok": false, "kind":
  "overloaded" | "closed" | "bad_request" | "internal"}`` so the router
  can re-route, shed with ``Retry-After``, or fail the one request
  without guessing from strings.

``repro replica`` runs :func:`run_replica` as a process entry point; it
prints one machine-readable ready line (``replica listening on
HOST:PORT``) so a parent router can spawn it with ``--port 0`` and learn
the bound port, and drains gracefully on SIGTERM exactly like
:func:`~repro.serving.http.run_server`.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import struct

from repro.errors import (
    ModelError,
    ReplicaProtocolError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serving.http import detection_payload
from repro.serving.service import DetectionService

#: Largest accepted frame; detection requests and stats payloads are
#: small, so anything bigger is a protocol violation, not a workload.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


def encode_frame(payload: dict) -> bytes:
    """Serialize one protocol frame: 4-byte big-endian length + JSON.

    The JSON is ``sort_keys=True`` like :func:`~repro.serving.http.http_response`,
    so identical payloads are identical bytes — the property the r12
    bench's bit-identity check rides on.
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ReplicaProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`~repro.errors.ReplicaProtocolError` for oversized or
    non-JSON frames (the encoding twin of :func:`encode_frame`) and lets
    ``asyncio.IncompleteReadError`` surface for a peer that died
    mid-frame — callers treat both as "this connection is done".
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ReplicaProtocolError(
            f"incoming frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    body = await reader.readexactly(length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ReplicaProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReplicaProtocolError("frame payload must be a JSON object")
    return payload


class ReplicaServer:
    """Serve a :class:`DetectionService` over the replica socket protocol.

    The inward-facing twin of
    :class:`~repro.serving.http.DetectionHTTPServer`: same service, same
    graceful drain, but a persistent multiplexed connection instead of
    HTTP ``Connection: close`` — the router keeps one socket per replica
    and pipelines every request over it.

    >>> server = ReplicaServer(service, port=0)        # doctest: +SKIP
    >>> await server.start()      # server.port is the bound port
    >>> await server.stop()       # drains in-flight detections
    """

    def __init__(
        self,
        service: DetectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        replica_id: int = 0,
        generation: int = 1,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._replica_id = replica_id
        self._generation = generation
        self._server: asyncio.AbstractServer | None = None

    @property
    def service(self) -> DetectionService:
        """The detection service behind this replica."""
        return self._service

    @property
    def replica_id(self) -> int:
        """This replica's stable index in the fleet (hash-ring node id)."""
        return self._replica_id

    @property
    def generation(self) -> int:
        """Spawn generation: 1 for the first launch, +1 per restart."""
        return self._generation

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is not None:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def serve_forever(self) -> None:
        """Block until the server is stopped."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain the service."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self._service.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (
                    ReplicaProtocolError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break  # poisoned or dying connection: stop reading
                if request is None:
                    break
                task = asyncio.create_task(
                    self._answer(request, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # Let in-flight answers finish (drain), then drop the socket.
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer raced close
                pass

    async def _answer(
        self, request: dict, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        response = await self._respond(request)
        async with write_lock:  # frames must not interleave mid-write
            try:
                writer.write(encode_frame(response))
                await writer.drain()
            except ConnectionError:  # pragma: no cover - peer went away
                pass

    async def _respond(self, request: dict) -> dict:
        request_id = request.get("id")
        base = {"id": request_id}
        op = request.get("op")
        if op == "detect":
            query = request.get("query")
            if not isinstance(query, str):
                return {
                    **base,
                    "ok": False,
                    "kind": "bad_request",
                    "error": "detect needs a string 'query'",
                }
            try:
                detection = await self._service.detect(query)
            except ServerOverloadedError as exc:
                return {**base, "ok": False, "kind": "overloaded", "error": str(exc)}
            except ServerClosedError as exc:
                return {**base, "ok": False, "kind": "closed", "error": str(exc)}
            # repro: noqa[REP006] -- fan-out boundary: the failure is
            # returned as this one request's structured error frame, so the
            # router re-raises it for exactly one caller, never the fleet.
            except Exception as exc:
                return {**base, "ok": False, "kind": "internal", "error": str(exc)}
            return {**base, "ok": True, "result": detection_payload(detection)}
        if op == "health":
            return {
                **base,
                "ok": True,
                "status": "closed" if self._service.closed else "ok",
                "replica": self._replica_id,
                "generation": self._generation,
                # getattr: stand-in services in tests may not version
                # their model; an unversioned service is generation 1.
                "model_generation": getattr(self._service, "model_generation", 1),
                "pid": os.getpid(),
            }
        if op == "stats":
            stats = self._service.stats()
            stats["replica"] = self._replica_id
            stats["generation"] = self._generation
            stats["pid"] = os.getpid()
            return {**base, "ok": True, "stats": stats}
        if op == "cache_keys":
            n = request.get("n", 256)
            if not isinstance(n, int) or n < 0:
                return {
                    **base,
                    "ok": False,
                    "kind": "bad_request",
                    "error": "cache_keys needs a non-negative integer 'n'",
                }
            # getattr: stand-in services in tests may not expose a
            # cache; a cacheless service simply has no hot keys.
            hot_keys = getattr(self._service, "hot_keys", None)
            keys = hot_keys(n) if hot_keys is not None else []
            return {**base, "ok": True, "keys": keys}
        if op == "reload":
            snapshot = request.get("snapshot")
            if not isinstance(snapshot, str):
                return {
                    **base,
                    "ok": False,
                    "kind": "bad_request",
                    "error": "reload needs a string 'snapshot' path",
                }
            swap = getattr(self._service, "swap_snapshot", None)
            if swap is None:
                return {
                    **base,
                    "ok": False,
                    "kind": "bad_request",
                    "error": "this service does not support hot swap",
                }
            try:
                model_generation = swap(snapshot)
            except ServerClosedError as exc:
                return {**base, "ok": False, "kind": "closed", "error": str(exc)}
            except (ModelError, OSError) as exc:
                # Bad or missing snapshot file: the old model keeps
                # serving; the caller learns why the swap was refused.
                return {**base, "ok": False, "kind": "bad_request", "error": str(exc)}
            return {
                **base,
                "ok": True,
                "model_generation": model_generation,
                "replica": self._replica_id,
            }
        return {
            **base,
            "ok": False,
            "kind": "bad_request",
            "error": f"unknown op {op!r}",
        }


async def run_replica(
    service: DetectionService,
    host: str = "127.0.0.1",
    port: int = 0,
    replica_id: int = 0,
    generation: int = 1,
    ready=None,
) -> None:
    """Run one replica until SIGINT/SIGTERM, then drain and return.

    The process entry behind ``repro replica`` — the socket-protocol
    twin of :func:`~repro.serving.http.run_server`. ``ready`` (optional)
    is called with the bound port once the replica accepts traffic; the
    CLI uses it to print the ``replica listening on HOST:PORT`` line the
    router parses to learn ephemeral ports.
    """
    server = ReplicaServer(
        service, host, port, replica_id=replica_id, generation=generation
    )
    await server.start()
    if ready is not None:
        ready(server.port)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or platform without signal support
    try:
        await stop.wait()
    finally:
        await server.stop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
