"""Multi-replica serving: a consistent-hash front door over N replicas.

One :class:`Router` process owns the outward HTTP surface
(:class:`RouterHTTPServer` — the same ``POST /detect`` / ``GET /healthz``
/ ``GET /stats`` routes as the single-process
:class:`~repro.serving.http.DetectionHTTPServer`) and forwards each
query inward over the length-prefixed socket protocol
(:mod:`repro.serving.replica`) to one of N replica processes. Three
design decisions carry the architecture:

- **Consistent hashing for cache affinity.** Queries are normalized with
  the same ``_normalize_fast`` the service uses as its cache key, then
  placed on a :class:`ConsistentHashRing` (crc32, virtual nodes). The
  same query always lands on the same replica, so each replica's
  :class:`~repro.utils.lru.ShardedLruCache` sees a stable slice of the
  query distribution and stays hot — N replicas give ~N disjoint caches,
  not N copies of the same cold one. When a replica dies, only its arc
  of the ring re-routes (ring order, next live node); the others keep
  their hit rates.
- **One mmap'd snapshot, shared pages.** Every replica loads the *same*
  ``HDMSNAP1`` file via :meth:`CompiledDetector.load_snapshot`; the
  kernel shares the read-only pages across processes, so fleet memory is
  ~one model plus per-replica caches.
- **Tiered load shedding.** Tier 1: router admission (``max_inflight``
  concurrent requests, then :class:`~repro.errors.ServerOverloadedError`
  → 503 + ``Retry-After`` without touching any replica). Tier 2: the
  chosen replica's own admission control (its ``overloaded`` frame is
  surfaced as the same 503 — deliberately *not* retried elsewhere, which
  would stampede the next replica's cold cache). Tier 3: no live
  replica → 503. Backpressure is deterministic at every tier.

Health is actively managed: a background loop probes each replica over
its multiplexed connection, marks non-responders ``down`` (their ring
arc re-routes), restarts managed subprocesses with ``generation + 1``
(up to ``max_restarts``, spaced by seeded-jitter exponential backoff so
a crash-looping replica can never restart-storm the host), and
reattaches externally-managed replicas when they come back. ``GET
/stats`` aggregates the fleet: per-stage latency histograms merge
bucket-wise (:meth:`~repro.serving.metrics.LatencyHistogram.merged`),
cache and batch counters sum, and every replica reports its generation,
*model* generation, and health.

The router is also an *adaptive control plane* (PR 9), driven entirely
by its own rotating-window metrics (:mod:`repro.serving.metrics`):

- **Autoscaling.** An :class:`Autoscaler` (pure decision engine,
  injectable clock — unit-testable without subprocesses) periodically
  reads a :class:`FleetSample` (up count, windowed shed rate, mean
  per-replica queue depth, windowed request p95) and moves the managed
  fleet one replica at a time between ``min_replicas`` and
  ``max_replicas``, with consecutive-interval hysteresis and a
  post-scale cooldown so noisy windows cannot flap the fleet.
- **Bounded tail hedging.** When the owner replica's windowed p99
  exceeds ``hedge_p99_us``, a request that has waited longer than the
  fleet's windowed p95 fires one backup request to the next ring node;
  first response wins and the loser is cancelled. Fired hedges are
  capped by ``hedge_rate`` of the recent request window, so hedging can
  cut a straggler's tail without meaningfully raising backend load
  (``hedges_fired`` / ``hedges_won`` / ``hedges_suppressed`` count it).
- **Cache warm-up.** A replica joining (or rejoining) the fleet replays
  a live sibling's hottest result-cache keys (the replica ``cache_keys``
  op) through its own detector *before* it is marked ``up``, so the arc
  it takes over starts warm instead of stampeding a cold cache.

Deploys are zero-downtime: ``POST /reload`` (:meth:`Router.reload`)
rolls the fleet onto a new snapshot one replica at a time — each
replica hot-swaps in place (in-flight detections finish on its old
model) before the next is touched, so the fleet never drops below N-1
serving replicas, and restarts spawned afterwards load the new file.

``repro route`` runs :func:`run_router`; ``repro serve --replicas N``
is sugar for it.
"""

from __future__ import annotations

import asyncio
import json
import random
import re
import signal
import sys
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Callable, Sequence
from zlib import crc32

from repro.errors import (
    ModelError,
    ReplicaProtocolError,
    ReplicaUnavailableError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.runtime.compiled import _normalize_fast
from repro.runtime.snapshot import read_snapshot_header
from repro.serving.http import (
    CLIENT_GONE,
    HttpRequestError,
    finish_response,
    http_response,
    read_http_request,
)
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.replica import encode_frame, read_frame

#: The ready line a spawned replica prints; the router parses it to
#: learn the ephemeral port a ``--port 0`` replica bound.
READY_LINE = re.compile(rb"replica listening on ([0-9.]+):(\d+)")


@dataclass(frozen=True)
class RouterConfig:
    """Router policy knobs (the fleet-level twin of
    :class:`~repro.serving.service.ServingConfig`).

    - ``vnodes``: virtual nodes per replica on the hash ring — more
      vnodes, smoother key distribution.
    - ``max_inflight``: tier-1 admission — concurrent requests the
      router accepts before shedding with 503.
    - ``request_timeout_s``: how long one forwarded detect may take
      before its replica is declared unavailable.
    - ``health_interval_s`` / ``health_timeout_s``: background probe
      cadence and per-probe deadline.
    - ``spawn_timeout_s``: how long a spawned replica may take to print
      its ready line.
    - ``max_restarts``: restarts per managed replica before it is
      declared ``failed`` and left out of the ring for good.
    - ``restart_backoff_base_s`` / ``restart_backoff_max_s`` /
      ``restart_jitter`` / ``backoff_seed``: restart pacing. The first
      recovery attempt after a replica goes down is immediate;
      consecutive failures back off exponentially from the base to the
      cap, stretched by up to ``restart_jitter`` of seeded-deterministic
      jitter so N crash-looping replicas never restart in lockstep.
    - ``hedge_p99_us``: windowed per-replica p99 (µs) above which the
      router arms tail hedging for that replica's keys (0 disables).
    - ``hedge_rate``: cap on fired hedges as a fraction of the recent
      request window — the "bounded" in bounded hedging.
    - ``hedge_min_delay_us``: floor on the hedge delay, so an idle
      window (p95 ~ 0) cannot make every request hedge instantly.
    - ``warmup_keys``: hottest sibling cache keys replayed through a
      joining replica before it takes traffic (0 disables warm-up).
    - ``warmup_timeout_s``: cap on one replica's warm-up replay; on
      timeout the replica joins with whatever heat it got.
    """

    vnodes: int = 64
    max_inflight: int = 1024
    request_timeout_s: float = 30.0
    health_interval_s: float = 1.0
    health_timeout_s: float = 5.0
    spawn_timeout_s: float = 120.0
    max_restarts: int = 3
    restart_backoff_base_s: float = 0.5
    restart_backoff_max_s: float = 30.0
    restart_jitter: float = 0.25
    backoff_seed: int = 0
    hedge_p99_us: float = 0.0
    hedge_rate: float = 0.05
    hedge_min_delay_us: float = 1_000.0
    warmup_keys: int = 256
    warmup_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.vnodes < 1:
            raise ServingError(f"vnodes must be positive, got {self.vnodes}")
        if self.max_inflight < 1:
            raise ServingError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.max_restarts < 0:
            raise ServingError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.restart_backoff_base_s < 0 or self.restart_backoff_max_s < 0:
            raise ServingError("restart backoff times must be >= 0")
        if self.restart_jitter < 0:
            raise ServingError(
                f"restart_jitter must be >= 0, got {self.restart_jitter}"
            )
        if not 0.0 <= self.hedge_rate <= 1.0:
            raise ServingError(
                f"hedge_rate must be within [0, 1], got {self.hedge_rate}"
            )
        if self.hedge_p99_us < 0 or self.hedge_min_delay_us < 0:
            raise ServingError("hedge thresholds must be >= 0")
        if self.warmup_keys < 0:
            raise ServingError(
                f"warmup_keys must be >= 0, got {self.warmup_keys}"
            )
        if self.warmup_timeout_s <= 0:
            raise ServingError(
                f"warmup_timeout_s must be positive, got {self.warmup_timeout_s}"
            )


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy for the :class:`Autoscaler` (the fleet-sizing twin of
    :class:`RouterConfig`).

    - ``min_replicas`` / ``max_replicas``: the managed fleet's size
      bounds; the autoscaler moves one replica at a time between them.
    - ``interval_s``: how often the router samples the fleet and asks
      for a decision.
    - ``cooldown_s``: minimum time between applied scale steps, so one
      burst cannot ratchet the fleet to ``max_replicas`` before the
      first new replica has had any effect.
    - ``up_shed_rate``: windowed sheds/sec above which the fleet is
      overloaded.
    - ``up_queue_depth``: mean per-replica in-flight requests above
      which the fleet is overloaded.
    - ``up_p95_us``: windowed request p95 (µs) above which the fleet is
      overloaded (0 disables the latency trigger).
    - ``down_queue_depth``: mean per-replica in-flight below which (with
      zero shedding) the fleet is idle enough to shrink.
    - ``hold_intervals``: consecutive overloaded (or idle) samples
      required before a step — the hysteresis that keeps one noisy
      window from flapping the fleet.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    interval_s: float = 2.0
    cooldown_s: float = 15.0
    up_shed_rate: float = 0.5
    up_queue_depth: float = 8.0
    up_p95_us: float = 0.0
    down_queue_depth: float = 1.0
    hold_intervals: int = 3

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ServingError(
                f"min_replicas must be positive, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ServingError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.interval_s <= 0:
            raise ServingError(
                f"interval_s must be positive, got {self.interval_s}"
            )
        if self.cooldown_s < 0:
            raise ServingError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.hold_intervals < 1:
            raise ServingError(
                f"hold_intervals must be positive, got {self.hold_intervals}"
            )
        if min(self.up_shed_rate, self.up_queue_depth, self.up_p95_us) < 0:
            raise ServingError("scale-up thresholds must be >= 0")
        if self.down_queue_depth < 0:
            raise ServingError(
                f"down_queue_depth must be >= 0, got {self.down_queue_depth}"
            )


@dataclass(frozen=True)
class FleetSample:
    """One autoscaler observation of the fleet, built by
    :meth:`Router.fleet_sample` from the router's rotating-window
    metrics (:class:`~repro.serving.metrics.StatCounter` window rates,
    :meth:`~repro.serving.metrics.LatencyHistogram.window_stats`):
    ``up`` live replicas, windowed ``shed_rate`` (sheds/sec), mean
    per-replica ``queue_depth`` (in-flight forwards), and the windowed
    request-stage ``p95_us``."""

    up: int
    shed_rate: float
    queue_depth: float
    p95_us: float


class Autoscaler:
    """Pure fleet-sizing decision engine behind :meth:`Router.autoscale_once`.

    Separated from the router so scaling policy is unit-testable with
    an injected clock and hand-built :class:`FleetSample` values — no
    subprocesses, no sockets, no real time. :meth:`decide` maps one
    sample to a target replica count, applying hysteresis
    (``hold_intervals`` consecutive one-sided samples) and a post-step
    cooldown (``cooldown_s``); the router owns *applying* the step
    (spawn + warm-up, or retire).

    >>> scaler = Autoscaler(AutoscalerConfig(hold_intervals=1))
    >>> scaler.decide(FleetSample(1, shed_rate=9.0, queue_depth=0, p95_us=0))
    2
    """

    def __init__(
        self,
        config: AutoscalerConfig | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._config = config or AutoscalerConfig()
        self._clock = clock or monotonic
        self._up_streak = 0
        self._down_streak = 0
        self._last_scale_at = float("-inf")

    @property
    def config(self) -> AutoscalerConfig:
        """The policy this engine applies."""
        return self._config

    def decide(self, sample: FleetSample) -> int:
        """The replica count the fleet should move toward given
        ``sample`` — at most one step away from ``sample.up``, inside
        the configured bounds. Stateful: consecutive calls accumulate
        the hysteresis streaks and observe the cooldown."""
        cfg = self._config
        if sample.up < cfg.min_replicas:
            return cfg.min_replicas  # bounds repair needs no hysteresis
        if sample.up > cfg.max_replicas:
            return cfg.max_replicas
        overloaded = (
            sample.shed_rate > cfg.up_shed_rate
            or sample.queue_depth > cfg.up_queue_depth
            or (cfg.up_p95_us > 0 and sample.p95_us > cfg.up_p95_us)
        )
        idle = (
            not overloaded
            and sample.shed_rate == 0.0
            and sample.queue_depth < cfg.down_queue_depth
        )
        self._up_streak = self._up_streak + 1 if overloaded else 0
        self._down_streak = self._down_streak + 1 if idle else 0
        now = self._clock()
        if now - self._last_scale_at < cfg.cooldown_s:
            return sample.up  # streaks keep accumulating through cooldown
        if self._up_streak >= cfg.hold_intervals and sample.up < cfg.max_replicas:
            self._up_streak = self._down_streak = 0
            self._last_scale_at = now
            return sample.up + 1
        if self._down_streak >= cfg.hold_intervals and sample.up > cfg.min_replicas:
            self._up_streak = self._down_streak = 0
            self._last_scale_at = now
            return sample.up - 1
        return sample.up

    def describe(self) -> dict:
        """Control-loop state for ``/stats``: bounds, streaks, cooldown."""
        return {
            "min_replicas": self._config.min_replicas,
            "max_replicas": self._config.max_replicas,
            "up_streak": self._up_streak,
            "down_streak": self._down_streak,
            "cooling_down": (
                self._clock() - self._last_scale_at < self._config.cooldown_s
            ),
        }


class ConsistentHashRing:
    """A crc32 consistent-hash ring with virtual nodes.

    The fleet-level twin of :func:`~repro.utils.lru.shard_of` (same
    hash family, same determinism goal): a key maps to the first node
    point at or after ``crc32(key)`` on the ring, so the mapping is
    stable across processes and across restarts, and adding/removing
    one node only remaps that node's arcs. ``vnodes`` points per node
    smooth the arc sizes.

    >>> ring = ConsistentHashRing(["r0", "r1"])
    >>> ring.node_for("cheap hotels in rome") in {"r0", "r1"}
    True
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ServingError(f"vnodes must be positive, got {vnodes}")
        self._vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        self._nodes: list[str] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        """The nodes on the ring, in insertion order."""
        return tuple(self._nodes)

    def add(self, node: str) -> None:
        """Place ``node`` on the ring (``vnodes`` points)."""
        if node in self._nodes:
            raise ServingError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        for vnode in range(self._vnodes):
            point = crc32(f"{node}#{vnode}".encode("utf-8"))
            self._points.append((point, node))
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring. Only its arcs remap (each to the
        next remaining node clockwise) — the consistent-hashing property
        the scale-down path rides on: retiring one replica moves ~1/N of
        the keyspace and leaves every other cache arc untouched."""
        if node not in self._nodes:
            raise ServingError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._points = [point for point in self._points if point[1] != node]
        self._hashes = [point for point, _ in self._points]

    def node_for(self, key: str, up: Sequence[str] | None = None) -> str | None:
        """The node owning ``key`` — the first (ring-order) node whose
        point is at or after ``crc32(key)``, restricted to ``up`` when
        given. ``None`` when the ring (or ``up``) is empty."""
        for node in self.nodes_for(key, up):
            return node
        return None

    def nodes_for(self, key: str, up: Sequence[str] | None = None):
        """Distinct candidate nodes for ``key`` in ring order (the
        failover sequence: the first entry is :meth:`node_for`; each
        later entry is the next arc a dying replica's keys spill onto).
        Yields nothing when the ring (or ``up``) is empty."""
        if not self._points:
            return
        allowed = None if up is None else set(up)
        start = bisect_right(self._hashes, crc32(key.encode("utf-8")))
        seen: set[str] = set()
        for offset in range(len(self._points)):
            _, node = self._points[(start + offset) % len(self._points)]
            if node in seen:
                continue
            seen.add(node)
            if allowed is None or node in allowed:
                yield node


class ReplicaClient:
    """A multiplexing client for one replica's socket protocol.

    The client half of :class:`~repro.serving.replica.ReplicaServer`:
    one persistent connection carries many concurrent requests, matched
    by an ``"id"`` this client assigns and the replica echoes. A reader
    task resolves pending futures as response frames arrive; when the
    connection dies (EOF, reset, protocol violation), every pending
    request fails with :class:`~repro.errors.ReplicaUnavailableError`
    so the router can re-route — no caller is left hanging.
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._next_id = 0
        self._connected = False

    @property
    def connected(self) -> bool:
        """True while the connection is believed usable."""
        return self._connected

    async def connect(self) -> None:
        """Open the connection and start the response reader."""
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._connected = True
        self._reader_task = asyncio.create_task(self._read_loop())

    async def request(self, payload: dict, timeout: float | None = None) -> dict:
        """Send one frame and await its matched response frame.

        Raises :class:`~repro.errors.ReplicaUnavailableError` when the
        connection is down, dies mid-request, or ``timeout`` elapses —
        the caller's cue to re-route or answer 503.
        """
        if not self._connected or self._writer is None:
            raise ReplicaUnavailableError(
                f"replica {self._host}:{self._port} is not connected"
            )
        self._next_id += 1
        request_id = str(self._next_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        frame = encode_frame({**payload, "id": request_id})
        try:
            async with self._write_lock:  # frames must not interleave
                self._writer.write(frame)
                await self._writer.drain()
        except ConnectionError as exc:
            self._fail_pending(
                ReplicaUnavailableError(
                    f"replica {self._host}:{self._port} connection died: {exc}"
                )
            )
            raise ReplicaUnavailableError(
                f"replica {self._host}:{self._port} connection died: {exc}"
            ) from exc
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise ReplicaUnavailableError(
                f"replica {self._host}:{self._port} did not answer "
                f"within {timeout}s"
            ) from None

    async def close(self) -> None:
        """Drop the connection; pending requests fail as unavailable."""
        self._connected = False
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer raced close
                pass
        self._fail_pending(
            ReplicaUnavailableError(
                f"replica {self._host}:{self._port} connection closed"
            )
        )

    async def _read_loop(self) -> None:
        assert self._reader is not None
        failure: Exception | None = None
        try:
            while True:
                try:
                    response = await read_frame(self._reader)
                except (
                    ReplicaProtocolError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ) as exc:
                    failure = exc
                    break
                if response is None:
                    break
                future = self._pending.pop(str(response.get("id")), None)
                if future is None:
                    # A response nothing waits for: the protocol is out
                    # of sync; poison the connection rather than guess.
                    failure = ReplicaProtocolError(
                        f"replica {self._host}:{self._port} answered "
                        f"unknown request id {response.get('id')!r}"
                    )
                    break
                if not future.cancelled():
                    future.set_result(response)
        finally:
            self._connected = False
            self._fail_pending(
                ReplicaUnavailableError(
                    f"replica {self._host}:{self._port} connection lost"
                    + (f": {failure}" if failure else "")
                )
            )

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)


class ReplicaHandle:
    """One replica slot as the router sees it: address, connection,
    process (when router-spawned), and lifecycle state.

    The fleet-side record of one
    :class:`~repro.serving.replica.ReplicaServer`. States: ``starting``
    (spawned, not yet serving) → ``warming`` (connected, replaying a
    sibling's hot cache keys) → ``up`` (taking traffic) ⇄ ``down``
    (probe failed or process exited; its ring arc re-routes while the
    health loop restarts or reattaches it, pacing repeated failures
    with exponential backoff) → ``failed`` (managed replica out of
    restart budget; left out of the ring for good) or → ``retiring`` →
    ``retired`` (scaled down by the autoscaler; off the ring, drained,
    reaped, and never revived).
    """

    def __init__(self, name: str, replica_id: int) -> None:
        self.name = name
        self.replica_id = replica_id
        self.host: str = "127.0.0.1"
        self.port: int = 0
        self.generation = 0
        self.model_generation = 0
        self.state = "starting"
        self.restarts = 0
        self.managed = False
        self.last_error = ""
        self.inflight = 0
        self.backoff_attempts = 0
        self.next_restart_at = 0.0
        self.client: ReplicaClient | None = None
        self.process: asyncio.subprocess.Process | None = None
        self._drain_task: asyncio.Task | None = None

    def describe(self) -> dict:
        """This slot's health record for ``/healthz`` and ``/stats``."""
        return {
            "state": self.state,
            "generation": self.generation,
            "model_generation": self.model_generation,
            "restarts": self.restarts,
            "managed": self.managed,
            "address": f"{self.host}:{self.port}",
            "last_error": self.last_error,
            "inflight": self.inflight,
        }


class Router:
    """The consistent-hash front door over a fleet of replicas.

    The multi-process counterpart of
    :class:`~repro.serving.service.DetectionService`: the same
    ``await router.detect(text)`` contract (and the same
    :class:`~repro.errors.ServerOverloadedError` /
    :class:`~repro.errors.ServerClosedError` semantics), but each query
    is forwarded to the replica that owns its normalized form on the
    hash ring. See the module docstring for the architecture.

    Replicas are populated either by :meth:`spawn` (subprocesses the
    router manages and restarts) or :meth:`attach` (addresses of
    externally-run ``repro replica`` processes); then :meth:`start`
    connects the fleet and begins health probing.
    """

    def __init__(
        self,
        config: RouterConfig | None = None,
        metrics: ServingMetrics | None = None,
        autoscaler: AutoscalerConfig | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._config = config or RouterConfig()
        self._clock = clock or monotonic
        self._metrics = metrics or ServingMetrics(clock=clock)
        self._replicas: dict[str, ReplicaHandle] = {}
        self._ring = ConsistentHashRing(vnodes=self._config.vnodes)
        self._spawn_command: list[str] | None = None
        self._spawn_host = "127.0.0.1"
        self._inflight = 0
        self._closed = False
        self._started = False
        self._health_task: asyncio.Task | None = None
        self._autoscale_task: asyncio.Task | None = None
        self._restart_lock = asyncio.Lock()
        self._rng = random.Random(self._config.backoff_seed)
        self._autoscaler = (
            Autoscaler(autoscaler, clock=clock) if autoscaler is not None else None
        )
        # Pre-register the control-plane counters so /stats (and the CI
        # smoke grepping it) always shows them, even before any fires.
        for name in (
            "shed",
            "reroutes",
            "restarts",
            "unrouted",
            "hedges_fired",
            "hedges_won",
            "hedges_suppressed",
            "scale_ups",
            "scale_downs",
            "warmed_keys",
        ):
            self._metrics.counter(name)

    @property
    def config(self) -> RouterConfig:
        """The policy this router was built with."""
        return self._config

    @property
    def metrics(self) -> ServingMetrics:
        """The router's own metrics registry (stages ``request`` /
        ``forward`` / per-replica ``forward.<name>``; counters ``shed``
        / ``reroutes`` / ``restarts`` / ``unrouted`` plus the adaptive
        plane's ``hedges_fired`` / ``hedges_won`` / ``hedges_suppressed``
        / ``scale_ups`` / ``scale_downs`` / ``warmed_keys``)."""
        return self._metrics

    @property
    def closed(self) -> bool:
        """True once shutdown has begun (routers don't reopen)."""
        return self._closed

    @property
    def replicas(self) -> tuple[ReplicaHandle, ...]:
        """The fleet's replica handles, in ring insertion order."""
        return tuple(self._replicas.values())

    # ------------------------------------------------------------------
    # fleet population
    # ------------------------------------------------------------------
    def attach(self, host: str, port: int, name: str | None = None) -> ReplicaHandle:
        """Register an externally-managed replica at ``host:port``.

        The router connects and health-checks it but never restarts it;
        when it dies its ring arc re-routes until it comes back and the
        health loop reattaches. Call before :meth:`start`."""
        handle = self._new_handle(name)
        handle.host = host
        handle.port = port
        handle.managed = False
        return handle

    def spawn(
        self,
        snapshot_path: str,
        count: int,
        host: str = "127.0.0.1",
        extra_args: Sequence[str] = (),
    ) -> list[ReplicaHandle]:
        """Register ``count`` router-managed replica slots, each to be
        spawned as ``python -m repro.cli replica --snapshot ... --port 0``
        (plus ``extra_args``, e.g. serving knobs) by :meth:`start`.

        Every subprocess mmaps the *same* snapshot file, so the model's
        pages are shared kernel page cache, not ``count`` copies."""
        if count < 1:
            raise ServingError(f"need at least one replica, got {count}")
        self._spawn_host = host
        self._spawn_command = [
            sys.executable,
            "-m",
            "repro.cli",
            "replica",
            "--snapshot",
            snapshot_path,
            "--host",
            host,
            "--port",
            "0",
            *extra_args,
        ]
        handles = []
        for _ in range(count):
            handle = self._new_handle(None)
            handle.host = host
            handle.managed = True
            handles.append(handle)
        return handles

    def _new_handle(self, name: str | None) -> ReplicaHandle:
        if self._started:
            raise ServingError("cannot add replicas after start()")
        replica_id = len(self._replicas)
        handle = ReplicaHandle(name or f"r{replica_id}", replica_id)
        if handle.name in self._replicas:
            raise ServingError(f"duplicate replica name {handle.name!r}")
        self._replicas[handle.name] = handle
        self._ring.add(handle.name)
        return handle

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bring the fleet up: spawn/connect every replica, then start
        the background health loop. Raises
        :class:`~repro.errors.ServingError` when no replica comes up."""
        if not self._replicas:
            raise ServingError("router has no replicas; spawn() or attach() first")
        self._started = True
        for handle in self._replicas.values():
            try:
                if handle.managed:
                    await self._spawn_one(handle)
                else:
                    await self._connect_one(handle)
            except (ReplicaUnavailableError, OSError) as exc:
                handle.state = "down"
                handle.last_error = str(exc)
        if not any(h.state == "up" for h in self._replicas.values()):
            await self.close()
            raise ServingError(
                "no replica came up: "
                + "; ".join(
                    f"{h.name}: {h.last_error}" for h in self._replicas.values()
                )
            )
        self._health_task = asyncio.create_task(self._health_loop())
        if self._autoscaler is not None:
            self._autoscale_task = asyncio.create_task(self._autoscale_loop())

    async def close(self) -> None:
        """Drain and shut the fleet down: stop health probing, close
        every connection, SIGTERM managed subprocesses (their replica
        drain handles in-flight work), and reap them. Idempotent."""
        if self._closed and self._health_task is None:
            return
        self._closed = True
        for task_attr in ("_health_task", "_autoscale_task"):
            task = getattr(self, task_attr)
            setattr(self, task_attr, None)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        for handle in self._replicas.values():
            client, handle.client = handle.client, None
            if client is not None:
                await client.close()
            if handle._drain_task is not None:
                handle._drain_task.cancel()
                handle._drain_task = None
            process, handle.process = handle.process, None
            if process is not None and process.returncode is None:
                process.terminate()
                try:
                    await asyncio.wait_for(process.wait(), 10.0)
                except asyncio.TimeoutError:  # pragma: no cover - hung child
                    process.kill()
                    await process.wait()
            if handle.state not in ("failed", "retired"):
                handle.state = "down"

    async def __aenter__(self) -> "Router":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def detect(self, text: str) -> dict:
        """Route ``text`` to its replica; return the detection payload
        (the ``repro detect --json`` shape, bit-identical to a local
        ``detector.detect``).

        Raises :class:`~repro.errors.ServerOverloadedError` at any shed
        tier (router admission, replica admission, no live replica) and
        :class:`~repro.errors.ServerClosedError` after shutdown began.
        """
        if self._closed:
            raise ServerClosedError("router is closed")
        if self._inflight >= self._config.max_inflight:
            self._metrics.counter("shed").add()
            raise ServerOverloadedError(
                f"router is at capacity ({self._config.max_inflight} requests "
                "in flight); shed load or retry with backoff"
            )
        self._inflight += 1
        start = perf_counter()
        try:
            return await self._forward(text)
        finally:
            self._inflight -= 1
            self._metrics.observe("request", perf_counter() - start)

    async def _forward(self, text: str) -> dict:
        key = _normalize_fast(text)
        tried: list[str] = []
        rerouted = False
        first_attempt = True
        for name in self._ring.nodes_for(key):
            handle = self._replicas.get(name)
            if handle is None or handle.state != "up" or handle.client is None:
                continue
            if rerouted:
                self._metrics.counter("reroutes").add()
            backup = None
            if first_attempt and self._should_hedge(handle):
                backup = self._next_up(key, exclude=name)
            first_attempt = False
            try:
                if backup is not None:
                    response = await self._hedged_request(handle, backup, text)
                else:
                    response = await self._request_replica(handle, text)
            except ReplicaUnavailableError as exc:
                self._mark_down(handle, str(exc))
                tried.append(name)
                rerouted = True
                continue
            if response.get("ok"):
                result = response.get("result")
                if not isinstance(result, dict):  # pragma: no cover
                    raise ReplicaProtocolError(
                        f"replica {name} returned a malformed result"
                    )
                return result
            kind = response.get("kind")
            error = str(response.get("error", "replica error"))
            if kind == "overloaded":
                # Tier-2 shed: the owning replica is saturated. Honor
                # its backpressure instead of stampeding a neighbour's
                # cold cache with this key's traffic.
                self._metrics.counter("shed").add()
                raise ServerOverloadedError(error)
            if kind == "closed":
                self._mark_down(handle, error)
                tried.append(name)
                rerouted = True
                continue
            raise ServingError(f"replica {name}: {error}")
        self._metrics.counter("unrouted").add()
        detail = f" (tried {', '.join(tried)})" if tried else ""
        raise ServerOverloadedError(f"no replica available{detail}")

    async def _request_replica(self, handle: ReplicaHandle, text: str) -> dict:
        """One detect forward to one replica, timed into the shared
        ``forward`` stage and the replica's own ``forward.<name>`` stage
        (whose windowed p99 is the hedge trigger)."""
        client = handle.client
        if client is None:
            raise ReplicaUnavailableError(f"replica {handle.name} has no client")
        handle.inflight += 1
        start = perf_counter()
        try:
            return await client.request(
                {"op": "detect", "query": text},
                timeout=self._config.request_timeout_s,
            )
        finally:
            handle.inflight -= 1
            elapsed = perf_counter() - start
            self._metrics.observe("forward", elapsed)
            self._metrics.observe(f"forward.{handle.name}", elapsed)

    def _next_up(self, key: str, exclude: str) -> ReplicaHandle | None:
        """The next live replica after ``exclude`` in ``key``'s ring
        order — the hedge target (and the arc the key would fail over
        to anyway if its owner died)."""
        for name in self._ring.nodes_for(key):
            if name == exclude:
                continue
            handle = self._replicas.get(name)
            if handle is not None and handle.state == "up" and handle.client is not None:
                return handle
        return None

    def _should_hedge(self, owner: ReplicaHandle) -> bool:
        """Arm hedging for this request? Only when enabled and the
        owner's recent (windowed) p99 is over the configured budget —
        a healthy replica's keys never pay hedging overhead."""
        if self._config.hedge_p99_us <= 0:
            return False
        owner_p99 = self._metrics.stage(
            f"forward.{owner.name}"
        ).window_stats()["p99_us"]
        return owner_p99 > self._config.hedge_p99_us

    def _hedge_budget_ok(self) -> bool:
        """May one more hedge fire? Fired hedges are capped at
        ``hedge_rate`` of the recent request window (floored at 20
        requests so a quiet window still allows an occasional hedge)."""
        window_requests = self._metrics.stage("request").window_stats()["count"]
        fired = self._metrics.counter("hedges_fired").window_count()
        return fired < self._config.hedge_rate * max(window_requests, 20)

    async def _hedged_request(
        self, owner: ReplicaHandle, backup: ReplicaHandle, text: str
    ) -> dict:
        """Race the owner against one delayed backup; first response
        wins, the loser is cancelled (its response frame, if any, is
        discarded by the client's cancelled-future path).

        The hedge fires only after the owner has been silent for the
        fleet's windowed p95 (floored at ``hedge_min_delay_us``) *and*
        the hedge budget allows it — so fast owner responses, which are
        the common case even on a degraded replica, cost nothing. The
        owner's frame always outranks the backup's unless the backup
        answered ``ok`` first: a backup's shed/closed frame must never
        mask the owner's answer, and vice versa an owner failure with a
        healthy backup response is a hedge win, not an error.
        """
        owner_task = asyncio.create_task(self._request_replica(owner, text))
        delay_s = (
            max(
                self._metrics.stage("forward").window_stats()["p95_us"],
                self._config.hedge_min_delay_us,
            )
            / 1e6
        )
        await asyncio.wait({owner_task}, timeout=delay_s)
        if owner_task.done():
            return await owner_task  # fast path: hedge never fired
        if not self._hedge_budget_ok():
            self._metrics.counter("hedges_suppressed").add()
            return await owner_task
        self._metrics.counter("hedges_fired").add()
        backup_task = asyncio.create_task(self._request_replica(backup, text))
        tasks: set[asyncio.Task] = {owner_task, backup_task}
        owner_exc: BaseException | None = None
        while tasks:
            done, _ = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
            tasks -= done
            # Settle the owner first on a photo finish: its frame
            # carries the canonical backpressure semantics for the key.
            for task in sorted(done, key=lambda t: t is not owner_task):
                exc = task.exception()
                if task is owner_task:
                    if exc is None:
                        for loser in tasks:
                            loser.cancel()
                        return owner_task.result()
                    owner_exc = exc
                elif exc is None and task.result().get("ok"):
                    for loser in tasks:
                        loser.cancel()
                    self._metrics.counter("hedges_won").add()
                    if owner_exc is not None:
                        self._mark_down(owner, str(owner_exc))
                    return task.result()
                # else: backup died or shed — discard it silently and
                # let the owner (or the failover loop) decide the fate.
        assert owner_exc is not None
        raise owner_exc

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    async def reload(self, snapshot_path: str) -> dict:
        """Roll the fleet onto the snapshot at ``snapshot_path``, one
        replica at a time (zero-downtime deploy).

        The rolling order is the guarantee: each replica hot-swaps via
        its ``reload`` op (in-flight detections finish on its old model)
        and answers before the next one is touched, so the fleet is
        never below N-1 serving replicas, and no request is dropped. The
        snapshot header is validated locally first — a bad file is
        refused before any replica is disturbed — and the spawn command
        is repointed so replicas restarted later come up on the *new*
        snapshot, not the old one.

        Returns ``{"snapshot", "reloaded", "replicas": {name: {...}}}``;
        a replica that is down (or refuses the swap) is reported, not
        retried — the health loop owns bringing it back, and when it is
        managed its restart now loads the new snapshot anyway.
        """
        if self._closed:
            raise ServerClosedError("router is closed")
        # Refuse bad files up front; header validation opens and reads
        # the snapshot, so it runs off-loop (REP008).
        await asyncio.get_running_loop().run_in_executor(
            None, read_snapshot_header, snapshot_path
        )
        path = str(snapshot_path)
        async with self._restart_lock:  # don't race health-loop restarts
            if self._spawn_command is not None:
                anchor = self._spawn_command.index("--snapshot")
                self._spawn_command[anchor + 1] = path
            results: dict[str, dict] = {}
            for name, handle in self._replicas.items():
                if handle.state != "up" or handle.client is None:
                    results[name] = {
                        "ok": False,
                        "error": f"replica is {handle.state}",
                    }
                    continue
                try:
                    response = await handle.client.request(
                        {"op": "reload", "snapshot": path},
                        timeout=self._config.request_timeout_s,
                    )
                except ReplicaUnavailableError as exc:
                    self._mark_down(handle, str(exc))
                    results[name] = {"ok": False, "error": str(exc)}
                    continue
                if response.get("ok"):
                    model_generation = response.get("model_generation")
                    if isinstance(model_generation, int):
                        handle.model_generation = model_generation
                    results[name] = {
                        "ok": True,
                        "model_generation": handle.model_generation,
                    }
                else:
                    results[name] = {
                        "ok": False,
                        "error": str(response.get("error", "replica error")),
                    }
        reloaded = sum(1 for entry in results.values() if entry["ok"])
        return {"snapshot": path, "reloaded": reloaded, "replicas": results}

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The router's local view of fleet health (no replica I/O):
        ``ok`` when every active replica is up, ``degraded`` when some
        are, ``down`` when none is. Replicas the autoscaler retired are
        reported but never count against health — a deliberately
        shrunken fleet is not a degraded one."""
        states = {name: h.state for name, h in self._replicas.items()}
        active = {
            name: state
            for name, state in states.items()
            if state not in ("retiring", "retired")
        }
        up = sum(1 for state in active.values() if state == "up")
        if self._closed:
            status = "closed"
        elif up == 0:
            status = "down"
        elif up == len(active):
            status = "ok"
        else:
            status = "degraded"
        return {"status": status, "up": up, "replicas": states}

    async def check_health(self) -> None:
        """Probe every replica once: mark non-responders down, restart
        managed subprocesses (``generation + 1``, bounded by
        ``max_restarts``), reconnect attached replicas that came back.
        The health loop calls this every ``health_interval_s``; tests
        call it directly for determinism."""
        async with self._restart_lock:
            for handle in self._replicas.values():
                await self._check_one(handle)

    async def _check_one(self, handle: ReplicaHandle) -> None:
        if handle.state in ("failed", "retiring", "retired") or self._closed:
            return
        process = handle.process
        if process is not None and process.returncode is not None:
            self._mark_down(
                handle, f"process exited with code {process.returncode}"
            )
            handle.process = None
        if handle.state == "up" and handle.client is not None:
            try:
                response = await handle.client.request(
                    {"op": "health"}, timeout=self._config.health_timeout_s
                )
            except ReplicaUnavailableError as exc:
                self._mark_down(handle, str(exc))
            else:
                status = response.get("status")
                if status != "ok":
                    self._mark_down(handle, f"replica reports {status!r}")
        if handle.state != "down":
            return
        if self._clock() < handle.next_restart_at:
            return  # still backing off after a failed recovery attempt
        if handle.managed:
            if handle.restarts >= self._config.max_restarts:
                handle.state = "failed"
                return
            handle.restarts += 1
            self._metrics.counter("restarts").add()
            try:
                await self._spawn_one(handle)
            except (ReplicaUnavailableError, OSError) as exc:
                handle.state = "down"
                handle.last_error = str(exc)
                self._schedule_backoff(handle)
        else:
            try:
                await self._connect_one(handle)
            except (ReplicaUnavailableError, OSError) as exc:
                handle.last_error = str(exc)
                self._schedule_backoff(handle)

    def _schedule_backoff(self, handle: ReplicaHandle) -> None:
        """Pace the *next* recovery attempt after this one failed.

        The first retry is free (transient blips recover on the next
        probe, as before); each consecutive failure then doubles the
        wait from ``restart_backoff_base_s`` up to
        ``restart_backoff_max_s``, stretched by up to ``restart_jitter``
        of seeded (deterministic per router) jitter so a fleet of
        crash-looping replicas de-synchronizes instead of thundering."""
        handle.backoff_attempts += 1
        if handle.backoff_attempts < 2:
            return
        delay = min(
            self._config.restart_backoff_base_s
            * 2 ** (handle.backoff_attempts - 2),
            self._config.restart_backoff_max_s,
        )
        delay *= 1.0 + self._config.restart_jitter * self._rng.random()
        handle.next_restart_at = self._clock() + delay

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._config.health_interval_s)
            await self.check_health()

    def _mark_down(self, handle: ReplicaHandle, reason: str) -> None:
        if handle.state in ("retiring", "retired"):
            return  # a replica being drained on purpose is not sick
        handle.state = "down"
        handle.last_error = reason
        client, handle.client = handle.client, None
        if client is not None:
            # Fire-and-forget: close() only fails pending futures and
            # drops the socket; nothing awaits the outcome.
            asyncio.create_task(client.close())

    # ------------------------------------------------------------------
    # autoscaling
    # ------------------------------------------------------------------
    def fleet_sample(self) -> FleetSample:
        """One :class:`FleetSample` from the router's rotating-window
        metrics — what :meth:`autoscale_once` feeds the
        :class:`Autoscaler` (no replica I/O, so sampling never blocks
        the request path)."""
        up_handles = [h for h in self._replicas.values() if h.state == "up"]
        inflight = sum(h.inflight for h in up_handles)
        return FleetSample(
            up=len(up_handles),
            shed_rate=self._metrics.counter("shed").window_rate(),
            queue_depth=inflight / len(up_handles) if up_handles else 0.0,
            p95_us=self._metrics.stage("request").window_stats()["p95_us"],
        )

    async def autoscale_once(self) -> dict:
        """One control-loop tick: sample the fleet, ask the
        :class:`Autoscaler` for a target, and apply at most one step
        (spawn + warm-up, or retire). The background loop calls this
        every ``interval_s``; tests call it directly for determinism.
        Returns ``{"up", "target", "applied"}``."""
        if self._autoscaler is None or self._closed:
            return {"up": 0, "target": 0, "applied": False}
        sample = self.fleet_sample()
        target = self._autoscaler.decide(sample)
        applied = False
        if target > sample.up:
            applied = await self._scale_up()
        elif target < sample.up:
            applied = await self._scale_down()
        return {"up": sample.up, "target": target, "applied": applied}

    async def _autoscale_loop(self) -> None:
        assert self._autoscaler is not None
        while True:
            await asyncio.sleep(self._autoscaler.config.interval_s)
            await self.autoscale_once()

    async def _scale_up(self) -> bool:
        """Add one managed replica: spawn, connect, warm up from a live
        sibling, and only then let its ring arcs take traffic (it is on
        the ring from birth, but ``_forward`` skips it until ``up``)."""
        if self._spawn_command is None:
            return False  # attached-only fleets have nothing to spawn
        async with self._restart_lock:
            replica_id = len(self._replicas)
            while f"r{replica_id}" in self._replicas:
                replica_id += 1
            handle = ReplicaHandle(f"r{replica_id}", replica_id)
            handle.host = self._spawn_host
            handle.managed = True
            self._replicas[handle.name] = handle
            self._ring.add(handle.name)
            try:
                await self._spawn_one(handle)
            except (ReplicaUnavailableError, OSError) as exc:
                # Leave the handle down; the health loop owns retries.
                handle.state = "down"
                handle.last_error = str(exc)
                return False
            self._metrics.counter("scale_ups").add()
            return True

    async def _scale_down(self) -> bool:
        """Retire the youngest managed ``up`` replica: take it off the
        ring first (only its ~1/N arc remaps), then SIGTERM it — the
        replica's own graceful drain finishes its in-flight detections
        before the process exits — and reap it. Retired slots stay in
        ``/stats`` as history but never count against health and are
        never restarted."""
        async with self._restart_lock:
            victim = next(
                (
                    h
                    for h in sorted(
                        self._replicas.values(),
                        key=lambda h: h.replica_id,
                        reverse=True,
                    )
                    if h.managed and h.state == "up"
                ),
                None,
            )
            if victim is None:
                return False
            self._ring.remove(victim.name)
            victim.state = "retiring"
            process, victim.process = victim.process, None
            if process is not None and process.returncode is None:
                process.terminate()
                try:
                    await asyncio.wait_for(process.wait(), 10.0)
                except asyncio.TimeoutError:  # pragma: no cover - hung child
                    process.kill()
                    await process.wait()
            client, victim.client = victim.client, None
            if client is not None:
                await client.close()
            if victim._drain_task is not None:
                victim._drain_task.cancel()
                victim._drain_task = None
            victim.state = "retired"
            self._metrics.counter("scale_downs").add()
            return True

    # ------------------------------------------------------------------
    # spawning / connecting
    # ------------------------------------------------------------------
    async def _spawn_one(self, handle: ReplicaHandle) -> None:
        assert self._spawn_command is not None, "spawn() builds the command"
        handle.generation += 1
        handle.state = "starting"
        if handle._drain_task is not None:
            handle._drain_task.cancel()
            handle._drain_task = None
        command = self._spawn_command + [
            "--replica-id",
            str(handle.replica_id),
            "--generation",
            str(handle.generation),
        ]
        process = await asyncio.create_subprocess_exec(
            *command, stdout=asyncio.subprocess.PIPE
        )
        handle.process = process
        try:
            handle.host, handle.port = await asyncio.wait_for(
                _await_ready_line(process), self._config.spawn_timeout_s
            )
        except (asyncio.TimeoutError, ReplicaUnavailableError) as exc:
            if process.returncode is None:
                process.terminate()
                await process.wait()
            handle.process = None
            raise ReplicaUnavailableError(
                f"replica {handle.name} (gen {handle.generation}) never "
                f"became ready: {exc}"
            ) from exc
        # Keep the child's stdout drained so it can never block on a
        # full pipe; the task dies with the stream at process exit.
        handle._drain_task = asyncio.create_task(_drain_stream(process.stdout))
        await self._connect_one(handle)

    async def _connect_one(self, handle: ReplicaHandle) -> None:
        client = ReplicaClient(handle.host, handle.port)
        await client.connect()
        response = await client.request(
            {"op": "health"}, timeout=self._config.health_timeout_s
        )
        if response.get("status") != "ok":
            await client.close()
            raise ReplicaUnavailableError(
                f"replica {handle.name} reports {response.get('status')!r}"
            )
        generation = response.get("generation")
        if isinstance(generation, int):
            handle.generation = generation
        model_generation = response.get("model_generation")
        if isinstance(model_generation, int):
            handle.model_generation = model_generation
        handle.client = client
        handle.state = "warming"
        await self._warm_up(handle)
        handle.state = "up"
        handle.last_error = ""
        handle.backoff_attempts = 0
        handle.next_restart_at = 0.0

    async def _warm_up(self, handle: ReplicaHandle) -> int:
        """Replay a live sibling's hottest result-cache keys through
        ``handle``'s own detector before it takes traffic, so the ring
        arc it is about to own starts with a warm cache instead of a
        cold-start stampede. Only keys the full ring assigns to this
        replica are replayed — heat for arcs it will never serve is
        wasted work. Best-effort by design: no donor, a dead donor, or
        the ``warmup_timeout_s`` deadline just means joining colder;
        returns the number of keys actually warmed (also summed into
        the ``warmed_keys`` counter)."""
        if self._config.warmup_keys < 1 or handle.client is None:
            return 0
        donor = next(
            (
                h
                for h in self._replicas.values()
                if h is not handle and h.state == "up" and h.client is not None
            ),
            None,
        )
        if donor is None or donor.client is None:
            return 0
        try:
            response = await donor.client.request(
                {"op": "cache_keys", "n": self._config.warmup_keys},
                timeout=self._config.health_timeout_s,
            )
        except ReplicaUnavailableError:
            return 0
        keys = response.get("keys") if response.get("ok") else None
        if not isinstance(keys, list):
            return 0
        mine = [
            key
            for key in keys
            if isinstance(key, str)
            and (
                handle.name not in self._ring.nodes
                or self._ring.node_for(key) == handle.name
            )
        ]
        if not mine:
            return 0
        client = handle.client
        warmed = 0

        async def replay() -> None:
            nonlocal warmed
            results = await asyncio.gather(
                *(
                    client.request(
                        {"op": "detect", "query": key},
                        timeout=self._config.request_timeout_s,
                    )
                    for key in mine
                ),
                return_exceptions=True,
            )
            warmed = sum(
                1
                for result in results
                if isinstance(result, dict) and result.get("ok")
            )

        try:
            await asyncio.wait_for(replay(), self._config.warmup_timeout_s)
        except (asyncio.TimeoutError, ReplicaUnavailableError):
            pass  # join colder; the cache fills from live traffic anyway
        self._metrics.counter("warmed_keys").add(warmed)
        return warmed

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    async def stats(self) -> dict:
        """The aggregated fleet picture for ``GET /stats``:

        - ``router`` — this process: replica/up counts, in-flight,
          its own stage histograms (``request``, ``forward``,
          per-replica ``forward.<name>``) and counters (``shed``,
          ``reroutes``, ``restarts``, ``unrouted``, the hedging and
          scaling counters), each stage carrying a last-window summary
          and each counter a ``counter_windows`` entry, plus the
          :meth:`Autoscaler.describe` control-loop state when enabled.
        - ``replicas`` — per replica: state, generation, restarts,
          address, last error, and (when up) its full service stats.
        - ``fleet`` — the replicas merged: summed request/cache/batch
          counters, overall cache hit rate, bucket-wise merged stage
          histograms (fleet-wide p50/p95/p99 via
          :meth:`~repro.serving.metrics.LatencyHistogram.merged`).
        """
        replicas: dict[str, dict] = {}
        fleet_inputs: list[dict] = []
        for name, handle in self._replicas.items():
            entry = handle.describe()
            if handle.state == "up" and handle.client is not None:
                try:
                    response = await handle.client.request(
                        {"op": "stats"}, timeout=self._config.health_timeout_s
                    )
                except ReplicaUnavailableError as exc:
                    self._mark_down(handle, str(exc))
                    entry = handle.describe()
                else:
                    stats = response.get("stats")
                    if isinstance(stats, dict):
                        entry["stats"] = stats
                        fleet_inputs.append(stats)
            replicas[name] = entry
        local = self._metrics.stats()
        up = sum(1 for h in self._replicas.values() if h.state == "up")
        return {
            "router": {
                "replicas": len(self._replicas),
                "up": up,
                "inflight": self._inflight,
                "closed": self._closed,
                "stages": local["stages"],
                "counters": local["counters"],
                "counter_windows": local["counter_windows"],
                "autoscaler": (
                    self._autoscaler.describe()
                    if self._autoscaler is not None
                    else None
                ),
            },
            "replicas": replicas,
            "fleet": _merge_fleet_stats(fleet_inputs),
        }


def _merge_fleet_stats(stats_list: list[dict]) -> dict:
    """Fold per-replica service stats into one fleet dict (counters
    sum, hit rate recomputes, stage histograms merge bucket-wise)."""
    fleet: dict = {
        "requests": 0,
        "detected": 0,
        "coalesced": 0,
        "rejected": 0,
        "batches": 0,
    }
    hits = misses = 0
    batch_sizes: Counter[int] = Counter()
    stages: dict[str, list[dict]] = {}
    generations = [
        stats.get("model_generation", 0)
        for stats in stats_list
        if isinstance(stats.get("model_generation"), int)
    ]
    # min == max means every reporting replica serves the same model;
    # they diverge transiently mid-rolling-reload.
    fleet["model_generation"] = {
        "min": min(generations, default=0),
        "max": max(generations, default=0),
    }
    for stats in stats_list:
        for key in ("requests", "detected", "coalesced", "rejected", "batches"):
            fleet[key] += stats.get(key, 0)
        cache = stats.get("cache") or {}
        hits += cache.get("hits", 0)
        misses += cache.get("misses", 0)
        for size, count in (stats.get("batch_sizes") or {}).items():
            batch_sizes[int(size)] += count
        for stage, histogram in (stats.get("stages") or {}).items():
            stages.setdefault(stage, []).append(histogram)
    lookups = hits + misses
    fleet["cache"] = {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }
    fleet["batch_sizes"] = {
        str(size): count for size, count in sorted(batch_sizes.items())
    }
    fleet["stages"] = {
        stage: LatencyHistogram.merged(histograms)
        for stage, histograms in sorted(stages.items())
    }
    return fleet


async def _await_ready_line(
    process: asyncio.subprocess.Process,
) -> tuple[str, int]:
    """Read the child's stdout until its ready line; return (host, port)."""
    assert process.stdout is not None
    while True:
        line = await process.stdout.readline()
        if not line:
            raise ReplicaUnavailableError(
                f"replica process exited (code {process.returncode}) "
                "before becoming ready"
            )
        match = READY_LINE.search(line)
        if match:
            return match.group(1).decode("ascii"), int(match.group(2))


async def _drain_stream(stream: asyncio.StreamReader | None) -> None:
    if stream is None:  # pragma: no cover - spawned with stdout=PIPE
        return
    while await stream.read(4096):
        pass


class RouterHTTPServer:
    """The router's outward HTTP face — byte-compatible with the
    single-process :class:`~repro.serving.http.DetectionHTTPServer`
    (same routes, same deterministic JSON, same 503 + ``Retry-After``
    backpressure), built from the same module-level request plumbing
    (:func:`~repro.serving.http.read_http_request` /
    :func:`~repro.serving.http.http_response`). Clients cannot tell one
    replica from a fleet, which is what makes the r12 bit-identity
    bench meaningful.
    """

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self._router = router
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def router(self) -> Router:
        """The router behind this server."""
        return self._router

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is not None:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def serve_forever(self) -> None:
        """Block until the server is stopped."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close the fleet."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self._router.close()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, body = await read_http_request(reader)
        except HttpRequestError as exc:
            await finish_response(writer, http_response(exc.status, exc.payload))
            return
        except CLIENT_GONE:
            writer.close()
            return
        try:
            status, payload = await self._respond(method, target, body)
        # repro: noqa[REP006] -- protocol edge: anything escaping a request
        # handler becomes a 500 response; a traceback must never hit the wire.
        except Exception as exc:
            status, payload = 500, {"error": f"internal error: {exc}"}
        await finish_response(writer, http_response(status, payload))

    async def _respond(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict]:
        if target == "/healthz" and method == "GET":
            health = self._router.healthz()
            return (200 if health["up"] else 503), health
        if target == "/stats" and method == "GET":
            return 200, await self._router.stats()
        if target == "/detect":
            if method != "POST":
                return 405, {"error": "use POST /detect"}
            try:
                request = json.loads(body.decode("utf-8"))
                query = request["query"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
                return 400, {"error": 'body must be JSON: {"query": "..."}'}
            if not isinstance(query, str):
                return 400, {"error": "query must be a string"}
            try:
                return 200, await self._router.detect(query)
            except (ServerOverloadedError, ServerClosedError) as exc:
                return 503, {"error": str(exc)}
            except ServingError as exc:
                return 500, {"error": str(exc)}
        if target == "/reload":
            if method != "POST":
                return 405, {"error": "use POST /reload"}
            try:
                request = json.loads(body.decode("utf-8"))
                snapshot = request["snapshot"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
                return 400, {"error": 'body must be JSON: {"snapshot": "..."}'}
            if not isinstance(snapshot, str):
                return 400, {"error": "snapshot must be a path string"}
            try:
                result = await self._router.reload(snapshot)
            except ServerClosedError as exc:
                return 503, {"error": str(exc)}
            except (ModelError, OSError) as exc:
                return 400, {"error": f"snapshot rejected: {exc}"}
            status = 200 if result["reloaded"] else 502
            return status, result
        return 404, {"error": f"no route {method} {target}"}


async def run_router(
    router: Router,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready=None,
) -> None:
    """Run the front door until SIGINT/SIGTERM, then drain and return.

    The fleet entry point behind ``repro route`` — the multi-replica
    twin of :func:`~repro.serving.http.run_server`: starts the router
    (spawning/connecting its replicas), serves HTTP, and on signal
    closes the fleet (replicas drain in-flight work before exiting).
    ``ready`` (optional) is called with the bound port once accepting.
    """
    await router.start()
    server = RouterHTTPServer(router, host, port)
    try:
        await server.start()
    except OSError:
        await router.close()
        raise
    if ready is not None:
        ready(server.port)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or platform without signal support
    try:
        await stop.wait()
    finally:
        await server.stop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
