"""A small stdlib-only asyncio HTTP front door for the serving layer.

``repro serve`` binds :class:`DetectionHTTPServer` over a
:class:`~repro.serving.service.DetectionService`. The protocol surface
is deliberately tiny (HTTP/1.1, ``Connection: close``, JSON in/out):

- ``POST /detect`` with body ``{"query": "cheap hotels in rome"}`` →
  ``200`` and the same JSON shape as ``repro detect --json``.
- ``GET /stats`` → serving counters (cache hit rate, batch histogram…).
- ``GET /healthz`` → ``{"status": "ok"}`` once accepting traffic.

Admission-control rejections map to ``503`` with a ``Retry-After``
header (deterministic backpressure all the way to the wire), malformed
requests to ``400``, oversized bodies to ``413``, unknown routes to
``404``. A connection dropped mid-request is abandoned silently — there
is no peer left to answer, and nothing downstream (batcher, service) is
ever touched with a partial request. Shutdown is graceful:
:meth:`DetectionHTTPServer.stop` stops accepting connections, drains the
service (in-flight detections complete), then returns; ``run_server``
wires that to SIGINT/SIGTERM.

The request/response plumbing is module-level (:func:`read_http_request`,
:func:`http_response`) so the multi-replica router front door
(:mod:`repro.serving.router`) speaks byte-identical HTTP without a
second parser.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.core.detector import Detection
from repro.errors import ModelError, ServerClosedError, ServerOverloadedError
from repro.serving.service import DetectionService

#: Largest accepted request body; detection inputs are short texts.
MAX_BODY_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Errors meaning "the client went away mid-exchange": the request can
#: never be answered, so handlers abandon the connection silently.
CLIENT_GONE = (asyncio.IncompleteReadError, ConnectionError, BrokenPipeError)


class HttpRequestError(Exception):
    """A malformed inbound HTTP request, carrying the deterministic
    status code and JSON error payload to answer it with (the parsing
    twin of :class:`~repro.errors.ServingError` — protocol errors map to
    4xx responses, never tracebacks)."""

    def __init__(self, status: int, error: str) -> None:
        super().__init__(error)
        self.status = status
        self.payload = {"error": error}


async def read_http_request(
    reader: asyncio.StreamReader, max_body_bytes: int = MAX_BODY_BYTES
) -> tuple[str, str, bytes]:
    """Read one HTTP/1.1 request and return ``(method, target, body)``.

    Malformed input raises :class:`HttpRequestError` with the status to
    answer (400 for a bad request line or Content-Length, 413 past
    ``max_body_bytes``); a connection dropped mid-request surfaces as
    ``asyncio.IncompleteReadError``/``ConnectionError`` for the caller
    to abandon. Used by both :class:`DetectionHTTPServer` and the
    router's front door (:class:`~repro.serving.router.RouterHTTPServer`).
    """
    request_line = await reader.readline()
    try:
        method, target, *_ = request_line.decode("ascii", "replace").split()
    except ValueError:
        raise HttpRequestError(400, "malformed request line") from None
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise HttpRequestError(400, "bad Content-Length") from None
    if content_length < 0:
        raise HttpRequestError(400, "bad Content-Length")
    if content_length > max_body_bytes:
        raise HttpRequestError(413, f"body exceeds {max_body_bytes} bytes")
    body = await reader.readexactly(content_length) if content_length else b""
    return method, target, body


def http_response(status: int, payload: dict) -> bytes:
    """Serialize one ``Connection: close`` JSON response.

    The body is ``json.dumps(payload, sort_keys=True)`` — the same
    deterministic serialization :func:`detection_payload` consumers
    compare bit-for-bit. 503 responses carry ``Retry-After: 1`` so
    admission-control rejections are honest backpressure on the wire.
    """
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if status == 503:
        headers.append("Retry-After: 1")
    return "\r\n".join(headers).encode("ascii") + b"\r\n\r\n" + body


async def finish_response(
    writer: asyncio.StreamWriter, payload_bytes: bytes
) -> None:
    """Write ``payload_bytes``, flush, and close the connection, quietly
    tolerating a peer that already disconnected (the twin of
    :func:`http_response` on the write side)."""
    try:
        writer.write(payload_bytes)
        await writer.drain()
        writer.close()
        await writer.wait_closed()
    except CLIENT_GONE:  # pragma: no cover - peer raced the close
        pass


def detection_payload(detection: Detection) -> dict:
    """The wire shape of a detection (matches ``repro detect --json``)."""
    return {
        "query": detection.query,
        "head": detection.head,
        "modifiers": list(detection.modifiers),
        "constraints": list(detection.constraints),
        "method": detection.method,
        "score": detection.score,
    }


class DetectionHTTPServer:
    """Serve a :class:`DetectionService` over HTTP (see module docstring).

    >>> server = DetectionHTTPServer(service, port=0)     # doctest: +SKIP
    >>> await server.start()       # server.port is the bound port
    >>> await server.stop()        # drains in-flight requests
    """

    def __init__(
        self,
        service: DetectionService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def service(self) -> DetectionService:
        """The detection service behind this server."""
        return self._service

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is not None:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def serve_forever(self) -> None:
        """Block until the server is stopped."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain the service."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self._service.close()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, body = await read_http_request(reader)
        except HttpRequestError as exc:
            await finish_response(writer, http_response(exc.status, exc.payload))
            return
        except CLIENT_GONE:
            # The client vanished mid-request: there is nobody to answer,
            # and the batcher/service were never touched.
            writer.close()
            return
        try:
            status, payload = await self._respond(method, target, body)
        # repro: noqa[REP006] -- protocol edge: anything escaping a request
        # handler becomes a 500 response; a traceback must never hit the wire.
        except Exception as exc:
            status, payload = 500, {"error": f"internal error: {exc}"}
        await finish_response(writer, http_response(status, payload))

    async def _respond(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict]:
        if target == "/healthz" and method == "GET":
            return 200, {"status": "closed" if self._service.closed else "ok"}
        if target == "/stats" and method == "GET":
            return 200, self._service.stats()
        if target == "/detect":
            if method != "POST":
                return 405, {"error": "use POST /detect"}
            try:
                request = json.loads(body.decode("utf-8"))
                query = request["query"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
                return 400, {"error": 'body must be JSON: {"query": "..."}'}
            if not isinstance(query, str):
                return 400, {"error": "query must be a string"}
            try:
                detection = await self._service.detect(query)
            except ServerOverloadedError as exc:
                return 503, {"error": str(exc)}
            except ServerClosedError as exc:
                return 503, {"error": str(exc)}
            return 200, detection_payload(detection)
        if target == "/reload":
            if method != "POST":
                return 405, {"error": "use POST /reload"}
            try:
                request = json.loads(body.decode("utf-8"))
                snapshot = request["snapshot"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
                return 400, {"error": 'body must be JSON: {"snapshot": "..."}'}
            if not isinstance(snapshot, str):
                return 400, {"error": "snapshot must be a path string"}
            swap = getattr(self._service, "swap_snapshot", None)
            if swap is None:
                return 400, {"error": "this service does not support hot swap"}
            try:
                model_generation = swap(snapshot)
            except ServerClosedError as exc:
                return 503, {"error": str(exc)}
            except (ModelError, OSError) as exc:
                return 400, {"error": f"snapshot rejected: {exc}"}
            return 200, {
                "reloaded": 1,
                "snapshot": snapshot,
                "model_generation": model_generation,
            }
        return 404, {"error": f"no route {method} {target}"}


async def run_server(
    service: DetectionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready=None,
) -> None:
    """Run a server until SIGINT/SIGTERM, then drain and return.

    ``ready`` (optional) is called with the bound port once the server
    accepts traffic — the CLI uses it to print the URL, tests to learn
    an ephemeral port.
    """
    server = DetectionHTTPServer(service, host, port)
    await server.start()
    if ready is not None:
        ready(server.port)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or platform without signal support
    try:
        await stop.wait()
    finally:
        await server.stop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
