"""A small stdlib-only asyncio HTTP front door for the serving layer.

``repro serve`` binds :class:`DetectionHTTPServer` over a
:class:`~repro.serving.service.DetectionService`. The protocol surface
is deliberately tiny (HTTP/1.1, ``Connection: close``, JSON in/out):

- ``POST /detect`` with body ``{"query": "cheap hotels in rome"}`` →
  ``200`` and the same JSON shape as ``repro detect --json``.
- ``GET /stats`` → serving counters (cache hit rate, batch histogram…).
- ``GET /healthz`` → ``{"status": "ok"}`` once accepting traffic.

Admission-control rejections map to ``503`` with a ``Retry-After``
header (deterministic backpressure all the way to the wire), malformed
requests to ``400``, unknown routes to ``404``. Shutdown is graceful:
:meth:`DetectionHTTPServer.stop` stops accepting connections, drains the
service (in-flight detections complete), then returns; ``run_server``
wires that to SIGINT/SIGTERM.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.core.detector import Detection
from repro.errors import ServerClosedError, ServerOverloadedError
from repro.serving.service import DetectionService

#: Largest accepted request body; detection inputs are short texts.
MAX_BODY_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def detection_payload(detection: Detection) -> dict:
    """The wire shape of a detection (matches ``repro detect --json``)."""
    return {
        "query": detection.query,
        "head": detection.head,
        "modifiers": list(detection.modifiers),
        "constraints": list(detection.constraints),
        "method": detection.method,
        "score": detection.score,
    }


class DetectionHTTPServer:
    """Serve a :class:`DetectionService` over HTTP (see module docstring).

    >>> server = DetectionHTTPServer(service, port=0)     # doctest: +SKIP
    >>> await server.start()       # server.port is the bound port
    >>> await server.stop()        # drains in-flight requests
    """

    def __init__(
        self,
        service: DetectionService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def service(self) -> DetectionService:
        """The detection service behind this server."""
        return self._service

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is not None:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def serve_forever(self) -> None:
        """Block until the server is stopped."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain the service."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self._service.close()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        # repro: noqa[REP006] -- protocol edge: anything escaping a request
        # handler becomes a 500 response; a traceback must never hit the wire.
        except Exception as exc:
            status, payload = 500, {"error": f"internal error: {exc}"}
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if status == 503:
            headers.append("Retry-After: 1")
        writer.write("\r\n".join(headers).encode("ascii") + b"\r\n\r\n" + body)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        try:
            request_line = await reader.readline()
            method, target, *_ = request_line.decode("ascii", "replace").split()
        except ValueError:
            return 400, {"error": "malformed request line"}
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if content_length > MAX_BODY_BYTES:
            return 400, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(content_length) if content_length else b""

        if target == "/healthz" and method == "GET":
            return 200, {"status": "closed" if self._service.closed else "ok"}
        if target == "/stats" and method == "GET":
            return 200, self._service.stats()
        if target == "/detect":
            if method != "POST":
                return 405, {"error": "use POST /detect"}
            try:
                request = json.loads(body.decode("utf-8"))
                query = request["query"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
                return 400, {"error": 'body must be JSON: {"query": "..."}'}
            if not isinstance(query, str):
                return 400, {"error": "query must be a string"}
            try:
                detection = await self._service.detect(query)
            except ServerOverloadedError as exc:
                return 503, {"error": str(exc)}
            except ServerClosedError as exc:
                return 503, {"error": str(exc)}
            return 200, detection_payload(detection)
        return 404, {"error": f"no route {method} {target}"}


async def run_server(
    service: DetectionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready=None,
) -> None:
    """Run a server until SIGINT/SIGTERM, then drain and return.

    ``ready`` (optional) is called with the bound port once the server
    accepts traffic — the CLI uses it to print the URL, tests to learn
    an ephemeral port.
    """
    server = DetectionHTTPServer(service, host, port)
    await server.start()
    if ready is not None:
        ready(server.port)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or platform without signal support
    try:
        await stop.wait()
    finally:
        await server.stop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
