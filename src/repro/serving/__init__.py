"""Online serving: the asyncio front-end over the compiled runtime.

PRs 1–3 made one process fast (compiled runtime), many processes cheap
(snapshot-backed pools), and training quick — but every path so far is
*batch-shaped*: a caller shows up with a list. Real query/ads traffic is
the opposite: many concurrent callers, one short text each, heavy
repetition (Zipfian logs). This package turns the compiled detector into
a server for that shape:

- :class:`MicroBatcher` (:mod:`repro.serving.batcher`) — coalesces
  concurrent single detections into ``detect_batch`` calls under a
  max-batch-size / max-wait policy.
- :class:`DetectionService` (:mod:`repro.serving.service`) — the
  request path: normalized-key result cache (sharded LRU), single-flight
  dedup of identical in-flight queries, bounded admission queue raising
  :class:`~repro.errors.ServerOverloadedError`, graceful drain, and a
  finalize guard for abandoned services.
- :class:`DetectionHTTPServer` (:mod:`repro.serving.http`) — a small
  stdlib-only asyncio HTTP server (``POST /detect``, ``GET /stats``,
  ``GET /healthz``) behind ``repro serve``.
- :class:`ServingMetrics` (:mod:`repro.serving.metrics`) — per-stage
  latency histograms (mergeable fixed buckets), counters, and span
  traces threaded batcher → service → replica → router and surfaced
  on ``/stats``.
- :class:`ReplicaServer` (:mod:`repro.serving.replica`) and
  :class:`Router` (:mod:`repro.serving.router`) — multi-replica
  serving: N replica processes share one mmap'd snapshot behind a
  consistent-hash front door (``repro serve --replicas N``), with
  per-replica health, restart-with-generation, and aggregated
  fleet ``/stats``. The router doubles as the adaptive control plane
  (PR 9): :class:`Autoscaler`-driven replica scaling between
  ``--min-replicas``/``--max-replicas``, budget-bounded tail hedging,
  and sibling cache warm-up for joining replicas.

Cached, deduped, and micro-batched responses are **bit-identical** to
one-shot ``CompiledDetector.detect`` — enforced by
``tests/serving/test_service.py`` on the held-out eval set and measured
by the R10/R12 benchmarks (``benchmarks/bench_r10_serving.py``,
``benchmarks/bench_r12_router.py``).
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.http import DetectionHTTPServer, detection_payload, run_server
from repro.serving.metrics import LatencyHistogram, ServingMetrics, StatCounter
from repro.serving.replica import ReplicaServer, run_replica
from repro.serving.router import (
    Autoscaler,
    AutoscalerConfig,
    ConsistentHashRing,
    FleetSample,
    ReplicaClient,
    Router,
    RouterConfig,
    RouterHTTPServer,
    run_router,
)
from repro.serving.service import DetectionService, ServingConfig

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ConsistentHashRing",
    "DetectionHTTPServer",
    "DetectionService",
    "FleetSample",
    "LatencyHistogram",
    "MicroBatcher",
    "ReplicaClient",
    "ReplicaServer",
    "Router",
    "RouterConfig",
    "RouterHTTPServer",
    "ServingConfig",
    "ServingMetrics",
    "StatCounter",
    "detection_payload",
    "run_replica",
    "run_router",
    "run_server",
]
