"""Dynamic micro-batching for concurrent single-item requests.

``CompiledDetector.detect_batch`` amortizes per-call overhead (memo
setup, cache locality) that per-request ``detect`` calls pay over and
over; under concurrency the server should be calling it. The
:class:`MicroBatcher` makes that happen without changing the caller
contract: each request awaits its own item, the batcher coalesces
whatever is pending into one runner call when either

- the forming batch reaches ``max_batch_size`` (flush immediately), or
- the *oldest* pending item has waited ``max_wait_us`` microseconds
  (flush on timer),

whichever comes first. A lone request therefore pays at most
``max_wait_us`` of extra latency; a burst pays none (size-triggered
flushes skip the timer).

Results keep per-item attribution: the runner returns one outcome per
item in order, and an outcome that is an :class:`Exception` instance is
raised to *that* item's awaiter only — one poisoned request cannot fail
its batch-mates. A runner that raises fails the whole batch (every
awaiter sees that exception).
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Awaitable, Callable, Generic, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Runner contract: one outcome per item, in item order; an Exception
#: outcome is delivered to that item's future via ``set_exception``.
BatchRunner = Callable[[list[T]], Awaitable[list[R]]]

#: Dispatch observer contract: called once per dispatched batch with
#: ``(batch_size, oldest_wait_seconds)`` — how many items coalesced and
#: how long the batch's first item sat in the forming queue. The serving
#: layer wires this to a ``queue_wait`` stage histogram
#: (:class:`~repro.serving.metrics.ServingMetrics`).
DispatchObserver = Callable[[int, float], None]


class MicroBatcher(Generic[T, R]):
    """Coalesce concurrent ``submit`` calls into batched runner calls.

    Must be used from a single asyncio event loop (the loop is captured
    on first submit). ``flush()`` forces the forming batch out early —
    the drain path uses it — and ``join()`` waits for every dispatched
    batch to finish.
    """

    def __init__(
        self,
        runner: BatchRunner,
        max_batch_size: int = 32,
        max_wait_us: int = 500,
        on_dispatch: DispatchObserver | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self._runner = runner
        self._max_batch_size = max_batch_size
        self._max_wait = max_wait_us / 1_000_000
        self._on_dispatch = on_dispatch
        self._pending: list[tuple[T, asyncio.Future]] = []
        self._oldest_enqueued = 0.0
        self._timer: asyncio.TimerHandle | None = None
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def max_batch_size(self) -> int:
        """Flush threshold: a forming batch never exceeds this size."""
        return self._max_batch_size

    @property
    def pending(self) -> int:
        """Items in the forming (not yet dispatched) batch."""
        return len(self._pending)

    def submit_nowait(self, item: T) -> asyncio.Future:
        """Enqueue ``item`` and return the future of its outcome.

        The future resolves when the batch containing the item runs;
        awaiting it is how callers receive their result.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        future: asyncio.Future = loop.create_future()
        if not self._pending:
            self._oldest_enqueued = perf_counter()
        self._pending.append((item, future))
        if len(self._pending) >= self._max_batch_size:
            self.flush()
        elif self._timer is None:
            # Timer for the batch's *first* item; later arrivals ride it.
            self._timer = loop.call_later(self._max_wait, self.flush)
        return future

    async def submit(self, item: T) -> R:
        """Enqueue ``item`` and await its outcome."""
        return await asyncio.shield(self.submit_nowait(item))

    def flush(self) -> None:
        """Dispatch the forming batch now (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        if self._on_dispatch is not None:
            self._on_dispatch(
                len(batch), perf_counter() - self._oldest_enqueued
            )
        assert self._loop is not None  # submit_nowait set it
        task = self._loop.create_task(self._run(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def join(self) -> None:
        """Flush, then wait until every dispatched batch has finished."""
        self.flush()
        while self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)

    async def _run(self, batch: list[tuple[T, asyncio.Future]]) -> None:
        items = [item for item, _ in batch]
        try:
            outcomes = await self._runner(items)
            if len(outcomes) != len(items):  # pragma: no cover - runner bug
                raise RuntimeError(
                    f"batch runner returned {len(outcomes)} outcomes "
                    f"for {len(items)} items"
                )
        # repro: noqa[REP006] -- fan-out boundary: the runner's exception is
        # re-delivered to every awaiter via set_exception, never swallowed.
        except Exception as exc:
            for _, future in batch:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        for (_, future), outcome in zip(batch, outcomes):
            if future.cancelled():
                continue
            if isinstance(outcome, Exception):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)
