"""Serving observability: lock-free counters, latency histograms, spans.

The serving path (PR 4) kept ad-hoc integer counters; a router in front
of N replica processes (:mod:`repro.serving.router`) needs more: *where*
time goes per stage (batch wait vs detect vs socket hop), *mergeable*
across processes, and cheap enough for the hot path. This module is that
substrate, deliberately stdlib-only and allocation-light:

- :class:`StatCounter` — a monotonic event counter. "Lock-free" the way
  the rest of the serving tier is: every increment happens on the single
  event-loop thread (or under the GIL's atomic integer add), so there is
  no lock to take and no torn read to fear.
- :class:`LatencyHistogram` — fixed exponential buckets (a 1-2-5 series
  in microseconds). Observations are one bucket increment; p50/p95/p99
  are interpolated from bucket counts on demand; histograms from
  different processes merge bucket-wise (:meth:`LatencyHistogram.merged`),
  which is how the router aggregates replica `/stats`.
- :class:`ServingMetrics` — the per-process registry: named counters,
  per-stage histograms, and a bounded ring of recent span events.
  ``with metrics.span("detect"): ...`` times a block, feeds the stage
  histogram, and leaves a trace event behind — the hook threaded through
  batcher → service → replica → router and surfaced on ``/stats``.

Everything here reports through plain JSON-friendly dicts so the HTTP
``/stats`` route and the replica socket protocol serialize them as-is.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Iterable, Iterator

#: Histogram bucket upper bounds in microseconds: a 1-2-5 series from
#: 1µs to 10s. Sub-microsecond events land in the first bucket;
#: anything slower than 10s lands in the overflow bucket.
BUCKET_BOUNDS_US: tuple[int, ...] = tuple(
    mantissa * 10**exponent
    for exponent in range(8)
    for mantissa in (1, 2, 5)
)

#: How many recent span events :class:`ServingMetrics` retains.
DEFAULT_TRACE_CAPACITY = 256


class StatCounter:
    """A monotonic event counter for the serving path.

    The single-writer twin of the ad-hoc ``self._requests += 1`` integers
    :class:`~repro.serving.service.DetectionService` started with: all
    increments happen on one event-loop thread (or as one GIL-atomic
    integer add), so no lock is needed and reads never tear.

    >>> shed = StatCounter()
    >>> shed.add()
    >>> shed.add(2)
    >>> shed.value
    3
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (defaults to one event)."""
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated percentiles.

    Buckets are the module-level :data:`BUCKET_BOUNDS_US` (a 1-2-5
    exponential series), so recording an observation is one list-index
    increment — cheap enough for every request — and histograms from
    different processes share bucket edges and merge bucket-wise
    (:meth:`merged`), the property the router's aggregated ``/stats``
    depends on. Percentiles interpolate linearly inside the winning
    bucket, like :func:`numpy.percentile` over grouped data.

    >>> hist = LatencyHistogram()
    >>> hist.observe(0.001)             # 1000 µs
    >>> hist.count
    1
    """

    __slots__ = ("_counts", "_count", "_sum_us", "_max_us")

    def __init__(self) -> None:
        # One slot per bound plus the overflow bucket.
        self._counts = [0] * (len(BUCKET_BOUNDS_US) + 1)
        self._count = 0
        self._sum_us = 0.0
        self._max_us = 0.0

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    def observe(self, seconds: float) -> None:
        """Record one latency observation, given in seconds."""
        self.observe_us(seconds * 1e6)

    def observe_us(self, us: float) -> None:
        """Record one latency observation, given in microseconds."""
        self._counts[self._bucket_index(us)] += 1
        self._count += 1
        self._sum_us += us
        if us > self._max_us:
            self._max_us = us

    @staticmethod
    def _bucket_index(us: float) -> int:
        low, high = 0, len(BUCKET_BOUNDS_US)
        while low < high:  # first bound >= us (binary search, no deps)
            mid = (low + high) // 2
            if BUCKET_BOUNDS_US[mid] < us:
                low = mid + 1
            else:
                high = mid
        return low

    def percentile_us(self, q: float) -> float:
        """The ``q``-th percentile (0-100) in µs, interpolated within
        the winning bucket; 0.0 when nothing was observed."""
        if self._count == 0:
            return 0.0
        target = self._count * q / 100.0
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lower = 0 if index == 0 else BUCKET_BOUNDS_US[index - 1]
                upper = (
                    BUCKET_BOUNDS_US[index]
                    if index < len(BUCKET_BOUNDS_US)
                    else self._max_us
                )
                if upper < lower:  # overflow bucket, max inside last bound
                    upper = lower
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self._max_us  # pragma: no cover - cumulative == count above

    def stats(self) -> dict:
        """Counters + percentiles as one JSON-friendly dict.

        ``buckets`` maps bucket upper bound (µs, as a string key so JSON
        round-trips losslessly) to its count, omitting empty buckets;
        the overflow bucket reports under ``"inf"``.
        """
        buckets: dict[str, int] = {}
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            key = (
                str(BUCKET_BOUNDS_US[index])
                if index < len(BUCKET_BOUNDS_US)
                else "inf"
            )
            buckets[key] = bucket_count
        return {
            "count": self._count,
            "mean_us": self._sum_us / self._count if self._count else 0.0,
            "max_us": self._max_us,
            "p50_us": self.percentile_us(50),
            "p95_us": self.percentile_us(95),
            "p99_us": self.percentile_us(99),
            "buckets": buckets,
        }

    @classmethod
    def merged(cls, stats_dicts: Iterable[dict]) -> dict:
        """Merge several :meth:`stats` dicts (e.g. one per replica) into
        one, recomputing percentiles from the summed buckets.

        Bucket edges are shared by construction, so the merge is exact
        up to bucket resolution — the router's aggregated ``/stats``
        reports fleet-wide p50/p95/p99 without shipping raw samples.
        """
        merged = cls()
        for stats in stats_dicts:
            count = stats.get("count", 0)
            if not count:
                continue
            merged._count += count
            merged._sum_us += stats.get("mean_us", 0.0) * count
            merged._max_us = max(merged._max_us, stats.get("max_us", 0.0))
            for key, bucket_count in stats.get("buckets", {}).items():
                if key == "inf":
                    index = len(BUCKET_BOUNDS_US)
                else:
                    index = cls._bucket_index(int(key))
                merged._counts[index] += bucket_count
        return merged.stats()


class _Span:
    """One timed block: records into a stage histogram on exit and
    appends a trace event to the owning registry's ring."""

    __slots__ = ("_metrics", "_stage", "_start")

    def __init__(self, metrics: "ServingMetrics", stage: str) -> None:
        self._metrics = metrics
        self._stage = stage
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._metrics.observe(self._stage, perf_counter() - self._start)


class ServingMetrics:
    """Per-process metrics registry for the serving path.

    Owns named :class:`StatCounter` counters, per-stage
    :class:`LatencyHistogram` histograms, and a bounded ring of recent
    span events. One registry is created per
    :class:`~repro.serving.service.DetectionService` and shared down
    into its :class:`~repro.serving.batcher.MicroBatcher` and up into
    the HTTP/replica front ends, so one ``/stats`` response shows the
    whole pipeline's timing.

    >>> metrics = ServingMetrics()
    >>> with metrics.span("detect"):
    ...     pass
    >>> metrics.stage("detect").count
    1
    """

    __slots__ = ("_counters", "_stages", "_events", "_sequence")

    def __init__(self, trace_capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self._counters: dict[str, StatCounter] = {}
        self._stages: dict[str, LatencyHistogram] = {}
        self._events: deque[dict] = deque(maxlen=max(trace_capacity, 1))
        self._sequence = 0

    def counter(self, name: str) -> StatCounter:
        """The named counter, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = StatCounter()
        return counter

    def stage(self, name: str) -> LatencyHistogram:
        """The named stage histogram, created on first use."""
        histogram = self._stages.get(name)
        if histogram is None:
            histogram = self._stages[name] = LatencyHistogram()
        return histogram

    def observe(self, stage: str, seconds: float) -> None:
        """Record a latency for ``stage`` and append a trace event."""
        us = seconds * 1e6
        self.stage(stage).observe_us(us)
        self._sequence += 1
        self._events.append({"seq": self._sequence, "stage": stage, "us": us})

    def span(self, stage: str) -> _Span:
        """A context manager timing its block into ``stage``:
        ``with metrics.span("route"): ...``."""
        return _Span(self, stage)

    def events(self) -> Iterator[dict]:
        """Recent span events, oldest first (bounded ring)."""
        return iter(tuple(self._events))

    def stats(self) -> dict:
        """The whole registry as one JSON-friendly dict: per-stage
        histogram stats (see :meth:`LatencyHistogram.stats`), counter
        values, and the recent span events."""
        return {
            "stages": {
                name: histogram.stats()
                for name, histogram in sorted(self._stages.items())
            },
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "spans": list(self._events),
        }
