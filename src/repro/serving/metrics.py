"""Serving observability: lock-free counters, latency histograms, spans.

The serving path (PR 4) kept ad-hoc integer counters; a router in front
of N replica processes (:mod:`repro.serving.router`) needs more: *where*
time goes per stage (batch wait vs detect vs socket hop), *mergeable*
across processes, and cheap enough for the hot path. This module is that
substrate, deliberately stdlib-only and allocation-light:

- :class:`StatCounter` — a monotonic event counter. "Lock-free" the way
  the rest of the serving tier is: every increment happens on the single
  event-loop thread (or under the GIL's atomic integer add), so there is
  no lock to take and no torn read to fear.
- :class:`LatencyHistogram` — fixed exponential buckets (a 1-2-5 series
  in microseconds). Observations are one bucket increment; p50/p95/p99
  are interpolated from bucket counts on demand; histograms from
  different processes merge bucket-wise (:meth:`LatencyHistogram.merged`),
  which is how the router aggregates replica `/stats`.
- :class:`ServingMetrics` — the per-process registry: named counters,
  per-stage histograms, and a bounded ring of recent span events.
  ``with metrics.span("detect"): ...`` times a block, feeds the stage
  histogram, and leaves a trace event behind — the hook threaded through
  batcher → service → replica → router and surfaced on ``/stats``.

Counters and histograms additionally keep a **rotating window** — a
ring of per-interval buckets (:data:`WINDOW_INTERVALS` slots of
:data:`WINDOW_INTERVAL_S` seconds, 60 s total by default) — so the
adaptive control plane (:class:`~repro.serving.router.Autoscaler`, the
router's hedging policy) reads *recent* rates and percentiles
(:meth:`StatCounter.window_count`, :meth:`LatencyHistogram.window_stats`)
instead of lifetime aggregates that a long-running process can never
move. The window clock is injectable, so control-loop decisions are
deterministically unit-testable.

Everything here reports through plain JSON-friendly dicts so the HTTP
``/stats`` route and the replica socket protocol serialize them as-is.
"""

from __future__ import annotations

from collections import deque
from time import monotonic, perf_counter
from typing import Any, Callable, Iterable, Iterator

#: Histogram bucket upper bounds in microseconds: a 1-2-5 series from
#: 1µs to 10s. Sub-microsecond events land in the first bucket;
#: anything slower than 10s lands in the overflow bucket.
BUCKET_BOUNDS_US: tuple[int, ...] = tuple(
    mantissa * 10**exponent
    for exponent in range(8)
    for mantissa in (1, 2, 5)
)

#: How many recent span events :class:`ServingMetrics` retains.
DEFAULT_TRACE_CAPACITY = 256

#: Rotating-window defaults: 12 slots of 5 s — ``/stats`` windows and
#: the autoscaler/hedging policies look at the last minute of traffic.
WINDOW_INTERVALS = 12
WINDOW_INTERVAL_S = 5.0


class StatCounter:
    """A monotonic event counter for the serving path.

    The single-writer twin of the ad-hoc ``self._requests += 1`` integers
    :class:`~repro.serving.service.DetectionService` started with: all
    increments happen on one event-loop thread (or as one GIL-atomic
    integer add), so no lock is needed and reads never tear.

    Besides the lifetime total, every increment also lands in a rotating
    ring of per-interval slots, so :meth:`window_count` /
    :meth:`window_rate` report the *recent* event rate — what the
    autoscaler's shed-rate trigger and the hedge budget read. ``clock``
    is injectable (monotonic seconds) for deterministic tests.

    >>> shed = StatCounter()
    >>> shed.add()
    >>> shed.add(2)
    >>> shed.value
    3
    """

    __slots__ = ("_value", "_clock", "_interval_s", "_slot_counts", "_slot_marks")

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        window_intervals: int = WINDOW_INTERVALS,
        interval_s: float = WINDOW_INTERVAL_S,
    ) -> None:
        self._value = 0
        self._clock = clock or monotonic
        self._interval_s = interval_s
        self._slot_counts = [0] * max(window_intervals, 1)
        self._slot_marks = [-1] * max(window_intervals, 1)

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (defaults to one event)."""
        self._value += n
        mark = int(self._clock() / self._interval_s)
        slot = mark % len(self._slot_counts)
        if self._slot_marks[slot] != mark:  # slot expired a window ago
            self._slot_marks[slot] = mark
            self._slot_counts[slot] = 0
        self._slot_counts[slot] += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    @property
    def window_s(self) -> float:
        """The rotating window's total span in seconds."""
        return self._interval_s * len(self._slot_counts)

    def window_count(self) -> int:
        """Events recorded during the last :attr:`window_s` seconds."""
        oldest = int(self._clock() / self._interval_s) - len(self._slot_counts) + 1
        return sum(
            count
            for count, mark in zip(self._slot_counts, self._slot_marks)
            if mark >= oldest
        )

    def window_rate(self) -> float:
        """Recent events per second (:meth:`window_count` over the full
        window span — deterministic, and conservative while the window
        is still filling)."""
        return self.window_count() / self.window_s


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated percentiles.

    Buckets are the module-level :data:`BUCKET_BOUNDS_US` (a 1-2-5
    exponential series), so recording an observation is one list-index
    increment — cheap enough for every request — and histograms from
    different processes share bucket edges and merge bucket-wise
    (:meth:`merged`), the property the router's aggregated ``/stats``
    depends on. Percentiles interpolate linearly inside the winning
    bucket, like :func:`numpy.percentile` over grouped data.

    A rotating window (ring of per-interval bucket arrays, the same
    scheme as :meth:`StatCounter.window_count`) backs
    :meth:`window_stats`: recent-traffic percentiles for the adaptive
    control plane, reported on ``/stats`` next to the lifetime totals.

    >>> hist = LatencyHistogram()
    >>> hist.observe(0.001)             # 1000 µs
    >>> hist.count
    1
    """

    __slots__ = (
        "_counts",
        "_count",
        "_sum_us",
        "_max_us",
        "_clock",
        "_interval_s",
        "_win_counts",
        "_win_count",
        "_win_sum_us",
        "_win_max_us",
        "_win_marks",
    )

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        window_intervals: int = WINDOW_INTERVALS,
        interval_s: float = WINDOW_INTERVAL_S,
    ) -> None:
        # One slot per bound plus the overflow bucket.
        self._counts = [0] * (len(BUCKET_BOUNDS_US) + 1)
        self._count = 0
        self._sum_us = 0.0
        self._max_us = 0.0
        self._clock = clock or monotonic
        self._interval_s = interval_s
        slots = max(window_intervals, 1)
        self._win_counts = [[0] * (len(BUCKET_BOUNDS_US) + 1) for _ in range(slots)]
        self._win_count = [0] * slots
        self._win_sum_us = [0.0] * slots
        self._win_max_us = [0.0] * slots
        self._win_marks = [-1] * slots

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    @property
    def window_s(self) -> float:
        """The rotating window's total span in seconds."""
        return self._interval_s * len(self._win_marks)

    def observe(self, seconds: float) -> None:
        """Record one latency observation, given in seconds."""
        self.observe_us(seconds * 1e6)

    def observe_us(self, us: float) -> None:
        """Record one latency observation, given in microseconds."""
        index = self._bucket_index(us)
        self._counts[index] += 1
        self._count += 1
        self._sum_us += us
        if us > self._max_us:
            self._max_us = us
        mark = int(self._clock() / self._interval_s)
        slot = mark % len(self._win_marks)
        if self._win_marks[slot] != mark:  # slot expired a window ago
            self._win_marks[slot] = mark
            self._win_counts[slot] = [0] * (len(BUCKET_BOUNDS_US) + 1)
            self._win_count[slot] = 0
            self._win_sum_us[slot] = 0.0
            self._win_max_us[slot] = 0.0
        self._win_counts[slot][index] += 1
        self._win_count[slot] += 1
        self._win_sum_us[slot] += us
        if us > self._win_max_us[slot]:
            self._win_max_us[slot] = us

    @staticmethod
    def _bucket_index(us: float) -> int:
        low, high = 0, len(BUCKET_BOUNDS_US)
        while low < high:  # first bound >= us (binary search, no deps)
            mid = (low + high) // 2
            if BUCKET_BOUNDS_US[mid] < us:
                low = mid + 1
            else:
                high = mid
        return low

    def percentile_us(self, q: float) -> float:
        """The ``q``-th percentile (0-100) in µs, interpolated within
        the winning bucket; 0.0 when nothing was observed."""
        return _percentile_us(self._counts, self._count, self._max_us, q)

    def window_stats(self) -> dict[str, Any]:
        """Percentiles and rate over the last :attr:`window_s` seconds
        only — the recent-traffic twin of :meth:`stats`, read by the
        autoscaler (p95-by-stage trigger) and the hedging policy
        (per-replica p99 trigger, p95-tied hedge delay)."""
        oldest = int(self._clock() / self._interval_s) - len(self._win_marks) + 1
        counts = [0] * (len(BUCKET_BOUNDS_US) + 1)
        count = 0
        sum_us = 0.0
        max_us = 0.0
        for slot, mark in enumerate(self._win_marks):
            if mark < oldest:
                continue
            slot_counts = self._win_counts[slot]
            for index in range(len(counts)):
                counts[index] += slot_counts[index]
            count += self._win_count[slot]
            sum_us += self._win_sum_us[slot]
            max_us = max(max_us, self._win_max_us[slot])
        summary = _histogram_summary(counts, count, sum_us, max_us)
        summary["rate_per_s"] = count / self.window_s
        summary["window_s"] = self.window_s
        return summary

    def stats(self) -> dict[str, Any]:
        """Counters + percentiles as one JSON-friendly dict.

        ``buckets`` maps bucket upper bound (µs, as a string key so JSON
        round-trips losslessly) to its count, omitting empty buckets;
        the overflow bucket reports under ``"inf"``. ``window`` carries
        the same summary restricted to the rotating window
        (:meth:`window_stats`).
        """
        summary = _histogram_summary(
            self._counts, self._count, self._sum_us, self._max_us
        )
        summary["window"] = self.window_stats()
        return summary

    @classmethod
    def merged(cls, stats_dicts: Iterable[dict[str, Any]]) -> dict[str, Any]:
        """Merge several :meth:`stats` dicts (e.g. one per replica) into
        one, recomputing percentiles from the summed buckets.

        Bucket edges are shared by construction, so the merge is exact
        up to bucket resolution — the router's aggregated ``/stats``
        reports fleet-wide p50/p95/p99 without shipping raw samples.
        The ``window`` sub-dicts merge the same way (per-process windows
        are aligned to the same wall-clock intervals only approximately,
        which is fine for the rates the control plane reads).
        """
        stats_dicts = list(stats_dicts)
        merged = _merge_summaries(stats_dicts)
        windows = [
            stats["window"] for stats in stats_dicts if "window" in stats
        ]
        if windows:
            window = _merge_summaries(windows)
            window_s = max(w.get("window_s", 0.0) for w in windows)
            window["rate_per_s"] = (
                window["count"] / window_s if window_s else 0.0
            )
            window["window_s"] = window_s
            merged["window"] = window
        return merged


def _percentile_us(
    counts: list[int], count: int, max_us: float, q: float
) -> float:
    """Interpolated ``q``-th percentile over one bucket-count array
    (shared by lifetime, window, and merged summaries)."""
    if count == 0:
        return 0.0
    target = count * q / 100.0
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target:
            lower = 0 if index == 0 else BUCKET_BOUNDS_US[index - 1]
            upper = (
                BUCKET_BOUNDS_US[index]
                if index < len(BUCKET_BOUNDS_US)
                else max_us
            )
            if upper < lower:  # overflow bucket, max inside last bound
                upper = lower
            fraction = (target - previous) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return max_us  # pragma: no cover - cumulative == count above


def _histogram_summary(
    counts: list[int], count: int, sum_us: float, max_us: float
) -> dict[str, Any]:
    """One bucket-count array as the JSON summary shape of
    :meth:`LatencyHistogram.stats`."""
    buckets: dict[str, int] = {}
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        key = (
            str(BUCKET_BOUNDS_US[index])
            if index < len(BUCKET_BOUNDS_US)
            else "inf"
        )
        buckets[key] = bucket_count
    return {
        "count": count,
        "mean_us": sum_us / count if count else 0.0,
        "max_us": max_us,
        "p50_us": _percentile_us(counts, count, max_us, 50),
        "p95_us": _percentile_us(counts, count, max_us, 95),
        "p99_us": _percentile_us(counts, count, max_us, 99),
        "buckets": buckets,
    }


def _merge_summaries(stats_dicts: list[dict[str, Any]]) -> dict[str, Any]:
    """Sum several summary dicts bucket-wise (the body of
    :meth:`LatencyHistogram.merged`)."""
    counts = [0] * (len(BUCKET_BOUNDS_US) + 1)
    count = 0
    sum_us = 0.0
    max_us = 0.0
    for stats in stats_dicts:
        entry_count = stats.get("count", 0)
        if not entry_count:
            continue
        count += entry_count
        sum_us += stats.get("mean_us", 0.0) * entry_count
        max_us = max(max_us, stats.get("max_us", 0.0))
        for key, bucket_count in stats.get("buckets", {}).items():
            if key == "inf":
                index = len(BUCKET_BOUNDS_US)
            else:
                index = LatencyHistogram._bucket_index(int(key))
            counts[index] += bucket_count
    return _histogram_summary(counts, count, sum_us, max_us)


class _Span:
    """One timed block: records into a stage histogram on exit and
    appends a trace event to the owning registry's ring."""

    __slots__ = ("_metrics", "_stage", "_start")

    def __init__(self, metrics: "ServingMetrics", stage: str) -> None:
        self._metrics = metrics
        self._stage = stage
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._metrics.observe(self._stage, perf_counter() - self._start)


class ServingMetrics:
    """Per-process metrics registry for the serving path.

    Owns named :class:`StatCounter` counters, per-stage
    :class:`LatencyHistogram` histograms, and a bounded ring of recent
    span events. One registry is created per
    :class:`~repro.serving.service.DetectionService` and shared down
    into its :class:`~repro.serving.batcher.MicroBatcher` and up into
    the HTTP/replica front ends, so one ``/stats`` response shows the
    whole pipeline's timing.

    >>> metrics = ServingMetrics()
    >>> with metrics.span("detect"):
    ...     pass
    >>> metrics.stage("detect").count
    1
    """

    __slots__ = ("_counters", "_stages", "_events", "_sequence", "_clock")

    def __init__(
        self,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._counters: dict[str, StatCounter] = {}
        self._stages: dict[str, LatencyHistogram] = {}
        self._events: deque[dict[str, Any]] = deque(maxlen=max(trace_capacity, 1))
        self._sequence = 0
        # Shared by every counter/stage window, injectable for tests.
        self._clock = clock or monotonic

    def counter(self, name: str) -> StatCounter:
        """The named counter, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = StatCounter(clock=self._clock)
        return counter

    def stage(self, name: str) -> LatencyHistogram:
        """The named stage histogram, created on first use."""
        histogram = self._stages.get(name)
        if histogram is None:
            histogram = self._stages[name] = LatencyHistogram(clock=self._clock)
        return histogram

    def observe(self, stage: str, seconds: float) -> None:
        """Record a latency for ``stage`` and append a trace event."""
        us = seconds * 1e6
        self.stage(stage).observe_us(us)
        self._sequence += 1
        self._events.append({"seq": self._sequence, "stage": stage, "us": us})

    def span(self, stage: str) -> _Span:
        """A context manager timing its block into ``stage``:
        ``with metrics.span("route"): ...``."""
        return _Span(self, stage)

    def events(self) -> Iterator[dict[str, Any]]:
        """Recent span events, oldest first (bounded ring)."""
        return iter(tuple(self._events))

    def stats(self) -> dict[str, Any]:
        """The whole registry as one JSON-friendly dict: per-stage
        histogram stats (see :meth:`LatencyHistogram.stats`, each with
        its rotating ``window`` summary), counter values plus their
        last-window rates (``counter_windows``), and the recent span
        events."""
        return {
            "stages": {
                name: histogram.stats()
                for name, histogram in sorted(self._stages.items())
            },
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "counter_windows": {
                name: {
                    "count": counter.window_count(),
                    "rate_per_s": counter.window_rate(),
                }
                for name, counter in sorted(self._counters.items())
            },
            "spans": list(self._events),
        }
