"""The online request path: cache → single-flight → micro-batch → detect.

:class:`DetectionService` wraps a detector (compiled, reference, or
snapshot-loaded) behind one ``await service.detect(text)`` coroutine.
Per request, in order:

1. **Normalize** the text with the same fast normalizer the compiled
   detector applies first (``_normalize_fast``; pinned bit-identical to
   the reference :func:`repro.text.normalizer.normalize` by a hypothesis
   test). A detection is a pure function of the normalized text, so the
   normal form is the cache and dedup key.
2. **Result cache** — a :class:`~repro.utils.lru.ShardedLruCache` keyed
   by the normal form. Real query logs are Zipfian; the hot head of the
   distribution is answered here without touching the detector.
3. **Single-flight dedup** — identical queries already being detected
   are *joined*, not re-enqueued: every concurrent waiter shares one
   in-flight future, so a thundering herd of the same query costs one
   detection.
4. **Admission control** — at most ``max_pending`` distinct queries may
   be in flight; past that, :class:`~repro.errors.ServerOverloadedError`
   is raised immediately (deterministic backpressure, never an unbounded
   queue).
5. **Micro-batching** — admitted queries coalesce into
   ``detector.detect_batch`` calls (:class:`~repro.serving.batcher.MicroBatcher`)
   executed on a single worker thread, keeping the event loop free to
   accept requests while a batch runs.

Every path returns the *same* ``Detection`` object one-shot
``detector.detect(text)`` would — bit-identical, enforced by
``tests/serving/test_service.py`` over the held-out eval set.

Shutdown mirrors the runtime pools: ``await close()`` stops admission
(:class:`~repro.errors.ServerClosedError` for late arrivals), flushes
and drains in-flight batches, then releases the worker thread. An
abandoned service is finalize-guarded (``weakref.finalize``) so garbage
collection also releases the thread — the PR 3 pattern.

**Hot swap.** :meth:`DetectionService.swap_snapshot` atomically replaces
the live detector with one loaded from a new snapshot, without dropping
a request: the currently running batch keeps the old detector (its
reference was resolved at dispatch), the old detector's teardown is
queued *behind* it on the same single worker thread, and batches
dispatched after the swap see the new model. The result cache is
invalidated at swap, and an internal model epoch guards against a
late-finishing old-model batch re-filling the fresh cache — so no
response ever mixes generations and no stale result outlives a swap.
``stats()`` reports the serving ``model_generation`` (taken from the
snapshot's lineage header when present).
"""

from __future__ import annotations

import asyncio
import weakref
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter

from pathlib import Path

from repro.core.detector import Detection
from repro.errors import (
    ModelError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.runtime.compiled import _normalize_fast
from repro.runtime.lineage import model_generation_of
from repro.runtime.snapshot import load_snapshot
from repro.serving.batcher import MicroBatcher
from repro.serving.metrics import ServingMetrics
from repro.utils.lru import ShardedLruCache

_MISS = object()


@dataclass(frozen=True)
class ServingConfig:
    """Serving-layer policy knobs.

    - ``max_batch_size`` / ``max_wait_us``: micro-batching policy — a
      burst flushes at ``max_batch_size``; a lone request waits at most
      ``max_wait_us`` microseconds for batch-mates.
    - ``max_pending``: distinct in-flight queries admitted before
      :class:`~repro.errors.ServerOverloadedError`.
    - ``cache_size`` / ``cache_shards``: the normalized-query result
      cache (``cache_size=0`` disables it).
    """

    max_batch_size: int = 32
    max_wait_us: int = 500
    max_pending: int = 1024
    cache_size: int = 50_000
    cache_shards: int = 8

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ServingError(
                f"max_pending must be positive, got {self.max_pending}"
            )
        if self.cache_size < 0:
            raise ServingError(f"cache_size must be >= 0, got {self.cache_size}")


class DetectionService:
    """Concurrent front-end over a detector (see module docstring).

    >>> service = DetectionService(model.compile())        # doctest: +SKIP
    >>> detection = await service.detect("cheap hotels in rome")
    >>> await service.close()
    """

    def __init__(
        self,
        detector,
        config: ServingConfig | None = None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        self._detector = detector
        self._config = config or ServingConfig()
        # One registry for the whole pipeline: the batcher reports queue
        # waits into it, this service reports request/detect latencies,
        # and the HTTP/replica front ends layer their own stages on top.
        self._metrics = metrics or ServingMetrics()
        self._batcher: MicroBatcher[str, Detection] = MicroBatcher(
            self._run_batch,
            max_batch_size=self._config.max_batch_size,
            max_wait_us=self._config.max_wait_us,
            on_dispatch=self._observe_dispatch,
        )
        self._cache: ShardedLruCache[str, Detection] | None = None
        if self._config.cache_size > 0:
            self._cache = ShardedLruCache(
                max(self._config.cache_size, self._config.cache_shards),
                self._config.cache_shards,
            )
        self._inflight: dict[str, asyncio.Future] = {}
        # One worker thread: batches run off the event loop (the loop
        # keeps accepting requests), but detection stays single-threaded
        # so the detector's LRU memoization needs no locking.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="hdm-serving"
        )
        # GC guard, PR 3 pattern: the callback captures the executor,
        # never the service, so it cannot keep self alive; close()
        # detaches it after the explicit shutdown.
        self._finalizer = weakref.finalize(
            self, _shutdown_executor, self._executor
        )
        self._closed = False
        self._requests = 0
        self._coalesced = 0
        self._rejected = 0
        self._detected = 0
        self._batch_sizes: Counter[int] = Counter()
        # The caller owns the detector it handed us; detectors loaded by
        # swap_snapshot are ours to close. The epoch is an internal,
        # strictly monotonic swap counter (cache-fill guard); the
        # generation is the *reported* model version, taken from snapshot
        # lineage when available.
        self._owns_detector = False
        self._model_epoch = 0
        self._model_generation = _lineage_generation(detector)
        self._swaps = 0

    @property
    def config(self) -> ServingConfig:
        """The policy this service was built with."""
        return self._config

    @property
    def closed(self) -> bool:
        """True once shutdown has begun (services don't reopen)."""
        return self._closed

    @property
    def pending(self) -> int:
        """Distinct queries currently in flight (admission counter)."""
        return len(self._inflight)

    @property
    def metrics(self) -> ServingMetrics:
        """The per-stage metrics registry this service reports into
        (shared with its batcher and any front end layered on top)."""
        return self._metrics

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def detect(self, text: str) -> Detection:
        """Detect ``text``, bit-identical to ``detector.detect(text)``.

        Raises :class:`~repro.errors.ServerOverloadedError` when the
        admission queue is full and :class:`~repro.errors.ServerClosedError`
        after shutdown has begun.
        """
        start = perf_counter()
        try:
            return await self._detect_admitted(text)
        finally:
            self._metrics.observe("request", perf_counter() - start)

    async def _detect_admitted(self, text: str) -> Detection:
        """The pre-metrics request path (cache → dedup → admission →
        batch); see :meth:`detect` for the caller contract."""
        if self._closed:
            raise ServerClosedError("detection service is closed")
        self._requests += 1
        key = _normalize_fast(text)
        if self._cache is not None:
            cached = self._cache.get(key, _MISS)
            if cached is not _MISS:
                return cached
        inflight = self._inflight.get(key)
        if inflight is not None:
            self._coalesced += 1
            # shield: one cancelled waiter must not cancel the shared
            # detection every other waiter is parked on.
            return await asyncio.shield(inflight)
        if len(self._inflight) >= self._config.max_pending:
            self._rejected += 1
            self._metrics.counter("shed").add()
            raise ServerOverloadedError(
                f"serving queue is full ({self._config.max_pending} queries "
                "in flight); shed load or retry with backoff"
            )
        future = self._batcher.submit_nowait(key)
        self._inflight[key] = future
        future.add_done_callback(self._make_inflight_reaper(key, future))
        return await asyncio.shield(future)

    async def detect_many(self, texts) -> list[Detection]:
        """Detect ``texts`` concurrently through the request path,
        preserving input order (a convenience for clients and tests)."""
        return list(await asyncio.gather(*(self.detect(text) for text in texts)))

    def _make_inflight_reaper(self, key: str, future: asyncio.Future):
        def _reap(_done: asyncio.Future) -> None:
            if self._inflight.get(key) is future:
                del self._inflight[key]

        return _reap

    def _observe_dispatch(self, batch_size: int, waited: float) -> None:
        """Batcher dispatch hook: record how long the oldest item of the
        just-dispatched batch sat waiting for batch-mates."""
        self._metrics.observe("queue_wait", waited)

    async def _run_batch(self, keys: list[str]) -> list:
        """Batch runner: detect on the worker thread, fill the cache.

        Outcomes are per-key: a failing batch is retried key-by-key so
        only the offending request errors (the MicroBatcher delivers an
        Exception outcome to exactly that waiter). The detector reference
        and model epoch are captured at dispatch: a swap that lands while
        this batch is on the worker thread lets it *finish on the old
        model*, but the epoch mismatch keeps its results out of the
        post-swap cache.
        """
        detector = self._detector
        epoch = self._model_epoch
        loop = asyncio.get_running_loop()
        with self._metrics.span("detect"):
            outcomes = await loop.run_in_executor(
                self._executor, _detect_batch_attributed, detector, keys
            )
        self._batch_sizes[len(keys)] += 1
        self._detected += len(keys)
        if self._cache is not None and epoch == self._model_epoch:
            for key, outcome in zip(keys, outcomes):
                if not isinstance(outcome, Exception):
                    self._cache.put(key, outcome)
        return outcomes

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    @property
    def model_generation(self) -> int:
        """The generation of the model currently answering requests."""
        return self._model_generation

    def swap_snapshot(self, path: str | Path) -> int:
        """Hot-swap the live detector for the snapshot at ``path``;
        returns the new model generation. Zero requests are dropped:

        - the batch currently on the worker thread captured the old
          detector at dispatch and finishes on it;
        - the old detector's ``close`` is queued *behind* that batch on
          the same single worker thread, so its mmap stays valid until
          the last old-model batch returns;
        - batches dispatched after this call resolve ``self._detector``
          to the new model;
        - the result cache is cleared, and the model-epoch guard in
          :meth:`_run_batch` keeps any still-running old-model batch
          from re-filling it.

        Must be called on the event loop thread (like every other
        service method); the swap itself is synchronous and O(1) past
        the snapshot load. The new generation comes from the snapshot's
        lineage header; a pre-lineage snapshot bumps the current
        generation by one.
        """
        if self._closed:
            raise ServerClosedError("detection service is closed")
        detector = load_snapshot(path)
        try:
            generation = model_generation_of(path)
        except (ModelError, OSError):
            generation = self._model_generation + 1
        if generation <= self._model_generation:
            # Rollbacks and pre-lineage snapshots still move the serving
            # generation forward — it tracks *swaps seen by this
            # service*, monotonic so fleet health checks can compare.
            generation = self._model_generation + 1
        old, old_owned = self._detector, self._owns_detector
        self._detector = detector
        self._owns_detector = True
        self._model_epoch += 1
        self._model_generation = generation
        self._swaps += 1
        if self._cache is not None:
            self._cache.clear()
        if old_owned:
            # Behind every already-submitted batch on the 1-thread
            # executor: runs only after the last old-model batch.
            self._executor.submit(old.close)
        return generation

    def hot_keys(self, n: int = 256) -> list[str]:
        """Up to ``n`` hottest normalized cache keys, hottest first
        (:meth:`~repro.utils.lru.ShardedLruCache.hottest`); empty when
        the result cache is disabled.

        The donor side of replica warm-up: a new replica replays a
        sibling's hot keys through its *own* detector before the router
        adds it to the ring, so scale-up never admits a cold cache.
        """
        if self._cache is None:
            return []
        return self._cache.hottest(n)

    # ------------------------------------------------------------------
    # lifecycle & stats
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Drain and shut down: stop admission, flush the forming batch,
        wait for every in-flight detection, release the worker thread.
        Idempotent."""
        if self._closed:
            return
        self._closed = True
        await self._batcher.join()
        if self._owns_detector:
            # Swapped-in detectors are ours. The batcher has drained, so
            # no batch holds the detector — a direct close is safe (the
            # executor shutdown below may cancel queued work, so this
            # must not ride the worker thread).
            self._detector.close()
            self._owns_detector = False
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer()  # shuts the executor down exactly once

    async def __aenter__(self) -> "DetectionService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def stats(self) -> dict:
        """Serving counters as one JSON-friendly dict.

        ``requests`` counts every accepted ``detect`` call; of those,
        ``cache.hits`` were answered from the result cache, ``coalesced``
        joined an identical in-flight query, ``detected`` ran through the
        detector, and ``rejected`` hit admission control. ``batch_sizes``
        is the dispatch histogram (size → batches). ``vectorized`` says
        whether coalesced batches run the array-at-a-time engine
        (:class:`~repro.runtime.vectorized.VectorizedDetector`) rather
        than a per-query loop. ``stages`` carries the per-stage latency
        histograms (``request``/``queue_wait``/``detect``, p50/p95/p99
        and bucket counts) from the shared
        :class:`~repro.serving.metrics.ServingMetrics` registry.
        """
        metrics = self._metrics.stats()
        return {
            "requests": self._requests,
            "detected": self._detected,
            "coalesced": self._coalesced,
            "rejected": self._rejected,
            "pending": len(self._inflight),
            "closed": self._closed,
            "model_generation": self._model_generation,
            "swaps": self._swaps,
            "vectorized": bool(getattr(self._detector, "vectorized_batch", False)),
            "cache": self._cache.stats() if self._cache is not None else None,
            "batches": sum(self._batch_sizes.values()),
            "batch_sizes": {
                str(size): count
                for size, count in sorted(self._batch_sizes.items())
            },
            "stages": metrics["stages"],
            "counters": metrics["counters"],
        }


def _detect_batch_attributed(detector, keys: list[str]) -> list:
    """Detect ``keys`` (worker thread), attributing failures per key.

    The fast path is one ``detect_batch`` call; if it raises, each key is
    retried alone so the poisoned one carries its exception and the rest
    still return detections.
    """
    try:
        return list(detector.detect_batch(keys))
    # repro: noqa[REP006] -- batch-failure fallback: the batch is re-run
    # key-by-key below so the real exception is re-attributed, not dropped.
    except Exception:
        outcomes: list = []
        for key in keys:
            try:
                outcomes.append(detector.detect(key))
            # repro: noqa[REP006] -- per-item attribution: the exception is
            # returned as this key's outcome and re-raised to its awaiter.
            except Exception as exc:
                outcomes.append(exc)
        return outcomes


def _lineage_generation(detector) -> int:
    """Generation of the snapshot ``detector`` was loaded from; 1 for
    detectors with no backing snapshot (or a pre-lineage one)."""
    path = getattr(detector, "snapshot_path", None)
    if path is None:
        return 1
    try:
        return model_generation_of(path)
    except (ModelError, OSError):
        return 1


def _shutdown_executor(executor: ThreadPoolExecutor) -> None:
    executor.shutdown(wait=True, cancel_futures=True)
