"""Baseline head-modifier detectors the paper compares against.

- :class:`SyntacticDetector` — grammar-driven: POS tag, chunk noun
  phrases, apply the right-headed NP head rule. Coarse-grained and fooled
  by query-style text, per the paper's motivation.
- :class:`StatisticalDetector` — behaviour-driven: the head is the
  segment most likely to be a standalone query (frequency signal only, no
  semantics).
- :class:`InstanceLookupDetector` — memorization: mined instance pairs
  with no conceptualization. Precise on seen pairs, helpless on unseen
  ones — the contrast that demonstrates the concept patterns'
  generalization power.

All baselines emit the same :class:`repro.core.detector.Detection` type so
the evaluation harness treats every system uniformly.
"""

from repro.baselines.instance_lookup import InstanceLookupDetector
from repro.baselines.statistical import StatisticalDetector
from repro.baselines.syntactic import SyntacticDetector

__all__ = [
    "SyntacticDetector",
    "StatisticalDetector",
    "InstanceLookupDetector",
]
