"""Grammar-based baseline: POS tagging + NP chunking + head-final rule.

This is the "existing approach" the paper's introduction criticizes:
it assumes the short text is a grammatical noun phrase, takes the last
noun phrase's rightmost noun as the head, and calls everything else a
modifier. On well-formed phrases ("cheap hotels in rome" — wait, even
there the head is *left* of the preposition) it needs the classic
PP-attachment special case; on ungrammatical queries it guesses.
"""

from __future__ import annotations

from repro.core.detector import DetectedTerm, Detection, TermRole
from repro.text.chunker import chunk_noun_phrases, np_head
from repro.text.lexicon import Lexicon, default_lexicon
from repro.text.normalizer import normalize
from repro.text.pos import PosTagger


class SyntacticDetector:
    """Right-headed NP rule with a PP special case."""

    def __init__(self, lexicon: Lexicon | None = None) -> None:
        self._lexicon = lexicon or default_lexicon()
        self._tagger = PosTagger(self._lexicon)

    def detect(self, text: str) -> Detection:
        """Detect the head with POS tagging and the NP head rule."""
        query = normalize(text)
        tagged = self._tagger.tag(query)
        if not tagged:
            return Detection(query=query, terms=(), score=0.0, method="empty")
        chunks = chunk_noun_phrases(tagged)
        if not chunks:
            return Detection(
                query=query,
                terms=tuple(
                    DetectedTerm(t.text, TermRole.OTHER, kind=t.tag) for t in tagged
                ),
                score=0.0,
                method="syntactic",
            )
        # PP rule: in "NP1 in/for NP2", NP1 carries the head; otherwise the
        # last NP does ("cheap rome hotels").
        head_chunk = chunks[0] if len(chunks) > 1 and self._has_preposition(tagged) else chunks[-1]
        head_word = np_head(head_chunk)
        terms = []
        for token in tagged:
            if head_word is not None and token.text == head_word:
                terms.append(DetectedTerm(token.text, TermRole.HEAD, kind=token.tag))
                head_word = None  # only the first occurrence is the head
            elif token.tag in {"NN", "JJ", "CD"}:
                terms.append(DetectedTerm(token.text, TermRole.MODIFIER, kind=token.tag))
            else:
                terms.append(DetectedTerm(token.text, TermRole.OTHER, kind=token.tag))
        return Detection(query=query, terms=tuple(terms), score=0.5, method="syntactic")

    def detect_batch(self, texts) -> list[Detection]:
        """Detect over an iterable of texts."""
        return [self.detect(t) for t in texts]

    def _has_preposition(self, tagged) -> bool:
        return any(t.tag == "IN" for t in tagged)
