"""Memorization baseline: mined instance pairs, no conceptualization.

Scores head candidates exactly like the full detector's instance-memory
component, but with the concept patterns switched off. On pairs seen in
training it is as precise as the mining was; on unseen pairs it has
nothing to say and (by default) abstains — the contrast experiment R5 in
EXPERIMENTS.md quantifies exactly this.
"""

from __future__ import annotations

from repro.core.detector import DetectedTerm, Detection, TermRole
from repro.core.segmentation import CONTENT_KINDS, KIND_SUBJECTIVE, Segmenter
from repro.mining.pairs import PairCollection
from repro.text.normalizer import normalize


class InstanceLookupDetector:
    """Head detection by mined-pair support only."""

    def __init__(
        self,
        pairs: PairCollection,
        segmenter: Segmenter,
        fallback_positional: bool = False,
    ) -> None:
        self._pairs = pairs
        self._segmenter = segmenter
        self._fallback_positional = fallback_positional

    def detect(self, text: str) -> Detection:
        """Detect the head by mined-pair support (abstains without evidence)."""
        query = normalize(text)
        segments = self._segmenter.segment(query)
        content = [s for s in segments if s.kind in CONTENT_KINDS]
        if not content:
            return Detection(query=query, terms=(), score=0.0, method="abstain")
        if len(content) == 1:
            return self._emit(query, segments, content[0], 1.0, "single")
        scored = []
        for candidate in content:
            support = sum(
                self._pairs.support(other.text, candidate.text)
                for other in content
                if other is not candidate
            )
            scored.append((support, -candidate.start, candidate))
        scored.sort(reverse=True)
        best_support, _, head = scored[0]
        if best_support <= 0:
            if not self._fallback_positional:
                return self._emit(query, segments, None, 0.0, "abstain")
            return self._emit(query, segments, content[-1], 0.1, "fallback")
        return self._emit(query, segments, head, 0.8, "instance")

    def detect_batch(self, texts) -> list[Detection]:
        """Detect over an iterable of texts."""
        return [self.detect(t) for t in texts]

    def _emit(self, query, segments, head, score, method) -> Detection:
        terms = []
        for segment in segments:
            if head is not None and segment is head:
                terms.append(DetectedTerm(segment.text, TermRole.HEAD, kind=segment.kind))
            elif segment.kind in CONTENT_KINDS or segment.kind == KIND_SUBJECTIVE:
                terms.append(
                    DetectedTerm(segment.text, TermRole.MODIFIER, kind=segment.kind)
                )
            else:
                terms.append(DetectedTerm(segment.text, TermRole.OTHER, kind=segment.kind))
        return Detection(query=query, terms=tuple(terms), score=score, method=method)
