"""Frequency-based baseline.

The head of a query is the part people also search for on its own: score
every content segment by its standalone-query probability in the log and
pick the highest. No semantics, no clicks — pure frequency. It does
surprisingly well on two-segment queries and degrades when both sides are
popular standalone queries ("apple charger": both are common).
"""

from __future__ import annotations

from repro.core.detector import DetectedTerm, Detection, TermRole
from repro.core.segmentation import CONTENT_KINDS, KIND_SUBJECTIVE, Segmenter
from repro.querylog.stats import LogStatistics
from repro.text.normalizer import normalize


class StatisticalDetector:
    """Standalone-frequency head scorer over the shared segmentation."""

    def __init__(self, stats: LogStatistics, segmenter: Segmenter) -> None:
        self._stats = stats
        self._segmenter = segmenter

    def detect(self, text: str) -> Detection:
        """Detect the head by standalone-query probability."""
        query = normalize(text)
        segments = self._segmenter.segment(query)
        content = [s for s in segments if s.kind in CONTENT_KINDS]
        if not content:
            return Detection(
                query=query,
                terms=tuple(
                    DetectedTerm(s.text, TermRole.OTHER, kind=s.kind) for s in segments
                ),
                score=0.0,
                method="statistical",
            )
        scored = [
            (self._stats.standalone_probability(s.text), -s.start, s) for s in content
        ]
        scored.sort(reverse=True)
        best_probability, _, head = scored[0]
        method = "statistical" if best_probability > 0 else "statistical-fallback"
        if best_probability == 0:
            head = content[-1]
        terms = []
        for segment in segments:
            if segment is head:
                terms.append(DetectedTerm(segment.text, TermRole.HEAD, kind=segment.kind))
            elif segment.kind in CONTENT_KINDS or segment.kind == KIND_SUBJECTIVE:
                terms.append(
                    DetectedTerm(segment.text, TermRole.MODIFIER, kind=segment.kind)
                )
            else:
                terms.append(DetectedTerm(segment.text, TermRole.OTHER, kind=segment.kind))
        return Detection(query=query, terms=tuple(terms), score=0.4, method=method)

    def detect_batch(self, texts) -> list[Detection]:
        """Detect over an iterable of texts."""
        return [self.detect(t) for t in texts]
