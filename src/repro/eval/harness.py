"""Uniform evaluation harness for head detection and constraint
classification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.datasets import EvalExample
from repro.eval.metrics import SetMetrics, precision_recall_f1
from repro.utils.mathx import safe_div

#: Detection methods that count as "the system declined to decide".
_ABSTAIN_METHODS = frozenset({"abstain", "empty", "structural"})
#: Methods where the decision used no evidence, only position.
_FALLBACK_METHODS = frozenset({"fallback", "statistical-fallback"})


@dataclass(frozen=True)
class HeadEvalResult:
    """Aggregate head/modifier detection quality over one example set."""

    n: int
    head_correct: int
    head_attempted: int
    modifier_metrics: SetMetrics
    fallback_used: int

    @property
    def head_accuracy(self) -> float:
        """Correct heads over all examples (abstentions count as wrong)."""
        return safe_div(self.head_correct, self.n)

    @property
    def head_precision(self) -> float:
        """Correct heads over attempted examples only."""
        return safe_div(self.head_correct, self.head_attempted)

    @property
    def coverage(self) -> float:
        """Fraction of examples with a non-abstaining prediction."""
        return safe_div(self.head_attempted, self.n)

    @property
    def evidence_rate(self) -> float:
        """Fraction decided with actual evidence (not positional fallback)."""
        return safe_div(self.head_attempted - self.fallback_used, self.n)


def evaluate_head_detection(detector, examples: list[EvalExample]) -> HeadEvalResult:
    """Run ``detector`` over ``examples`` and score heads and modifiers.

    A head is correct iff it string-equals the gold head (the strict
    criterion; segmentation errors therefore count against the system).
    Modifier metrics are micro-aggregated set P/R/F1 over gold modifier
    surfaces.
    """
    head_correct = 0
    attempted = 0
    fallback = 0
    modifier_totals = SetMetrics(0, 0, 0)
    for example in examples:
        detection = detector.detect(example.query)
        predicted_head = detection.head
        if predicted_head is not None and detection.method not in _ABSTAIN_METHODS:
            attempted += 1
            if detection.method in _FALLBACK_METHODS:
                fallback += 1
            if predicted_head == example.gold.head:
                head_correct += 1
        modifier_totals = modifier_totals + precision_recall_f1(
            detection.modifiers, example.gold.modifier_surfaces
        )
    return HeadEvalResult(
        n=len(examples),
        head_correct=head_correct,
        head_attempted=attempted,
        modifier_metrics=modifier_totals,
        fallback_used=fallback,
    )


@dataclass(frozen=True)
class ConstraintEvalResult:
    """Constraint classification quality over gold modifiers."""

    n_modifiers: int
    metrics: SetMetrics
    correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of modifiers with the correct flag."""
        return safe_div(self.correct, self.n_modifiers)

    @property
    def precision(self) -> float:
        """Precision of the constraint class."""
        return self.metrics.precision

    @property
    def recall(self) -> float:
        """Recall of the constraint class."""
        return self.metrics.recall

    @property
    def f1(self) -> float:
        """F1 of the constraint class."""
        return self.metrics.f1


def evaluate_constraints(classifier, examples: list[EvalExample]) -> ConstraintEvalResult:
    """Score constraint classification directly on gold modifiers.

    Decoupled from head detection: the classifier is asked about each gold
    modifier of each query, so this measures the constraint decision in
    isolation (as the paper's constraint experiments do).
    """
    tp = fp = fn = 0
    correct = 0
    n = 0
    for example in examples:
        for modifier in example.gold.modifiers:
            n += 1
            predicted = classifier.is_constraint(example.query, modifier.surface)
            if predicted and modifier.is_constraint:
                tp += 1
            elif predicted and not modifier.is_constraint:
                fp += 1
            elif not predicted and modifier.is_constraint:
                fn += 1
            if predicted == modifier.is_constraint:
                correct += 1
    return ConstraintEvalResult(
        n_modifiers=n, metrics=SetMetrics(tp, fp, fn), correct=correct
    )
