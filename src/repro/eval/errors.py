"""Failure analysis: collect and summarize detection errors.

Aggregate metrics say *how much* a system fails; shipping a detector needs
to know *where*. These helpers collect per-query head errors and
constraint misclassifications with enough context (method used, domain,
gold answer) to spot systematic failure modes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.eval.datasets import EvalExample
from repro.eval.reporting import format_table


@dataclass(frozen=True)
class HeadError:
    """One wrong (or abstained) head decision."""

    query: str
    predicted: str | None
    gold: str
    method: str
    domain: str


@dataclass(frozen=True)
class ConstraintError:
    """One wrong constraint flag."""

    query: str
    modifier: str
    predicted_constraint: bool
    gold_constraint: bool
    domain: str


def collect_head_errors(
    detector, examples: list[EvalExample], limit: int | None = None
) -> list[HeadError]:
    """Queries where the detector's head differs from gold."""
    errors = []
    for example in examples:
        detection = detector.detect(example.query)
        if detection.head == example.gold.head:
            continue
        errors.append(
            HeadError(
                query=example.query,
                predicted=detection.head,
                gold=example.gold.head,
                method=detection.method,
                domain=example.domain,
            )
        )
        if limit is not None and len(errors) >= limit:
            break
    return errors


def collect_constraint_errors(
    classifier, examples: list[EvalExample], limit: int | None = None
) -> list[ConstraintError]:
    """Gold modifiers whose constraint flag the classifier gets wrong."""
    errors = []
    for example in examples:
        for modifier in example.gold.modifiers:
            predicted = classifier.is_constraint(example.query, modifier.surface)
            if predicted == modifier.is_constraint:
                continue
            errors.append(
                ConstraintError(
                    query=example.query,
                    modifier=modifier.surface,
                    predicted_constraint=predicted,
                    gold_constraint=modifier.is_constraint,
                    domain=example.domain,
                )
            )
            if limit is not None and len(errors) >= limit:
                return errors
    return errors


def summarize_head_errors(errors: list[HeadError]) -> dict[str, Counter]:
    """Error counts by domain and by decision method."""
    return {
        "by_domain": Counter(e.domain for e in errors),
        "by_method": Counter(e.method for e in errors),
    }


def format_head_error_report(errors: list[HeadError], max_rows: int = 20) -> str:
    """Readable error listing plus breakdown counters."""
    if not errors:
        return "no head errors"
    rows = [
        [e.query, e.predicted or "(abstained)", e.gold, e.method, e.domain]
        for e in errors[:max_rows]
    ]
    report = format_table(
        ["query", "predicted", "gold", "method", "domain"],
        rows,
        title=f"head errors (showing {len(rows)} of {len(errors)})",
    )
    summary = summarize_head_errors(errors)
    domain_line = ", ".join(
        f"{domain}={count}" for domain, count in summary["by_domain"].most_common()
    )
    method_line = ", ".join(
        f"{method}={count}" for method, count in summary["by_method"].most_common()
    )
    return f"{report}\nby domain: {domain_line}\nby method: {method_line}"
