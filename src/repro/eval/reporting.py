"""ASCII table formatting for experiment output.

The benchmark harness prints the same rows the paper's tables report;
keeping the formatter dumb (strings in, strings out) makes it trivially
testable.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [["x", 1.0]]))
    a | b
    --+--
    x | 1.0
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
