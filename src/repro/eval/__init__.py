"""Evaluation: metrics, labelled datasets, harness, and reporting.

The labelled sets come from held-out generator intents (standing in for
the paper's human-judged queries); every detector — the full method and
each baseline — is evaluated through the same harness.
"""

from repro.eval.datasets import EvalExample, build_eval_set, unseen_pair_subset
from repro.eval.harness import (
    ConstraintEvalResult,
    HeadEvalResult,
    evaluate_constraints,
    evaluate_head_detection,
)
from repro.eval.metrics import (
    SetMetrics,
    average_precision_at_k,
    ndcg_at_k,
    precision_recall_f1,
)
from repro.eval.errors import (
    ConstraintError,
    HeadError,
    collect_constraint_errors,
    collect_head_errors,
    format_head_error_report,
    summarize_head_errors,
)
from repro.eval.reporting import format_table
from repro.eval.significance import (
    BootstrapCI,
    PairedComparison,
    bootstrap_ci,
    head_correctness,
    paired_bootstrap_test,
)

__all__ = [
    "EvalExample",
    "build_eval_set",
    "unseen_pair_subset",
    "HeadEvalResult",
    "ConstraintEvalResult",
    "evaluate_head_detection",
    "evaluate_constraints",
    "SetMetrics",
    "precision_recall_f1",
    "ndcg_at_k",
    "average_precision_at_k",
    "format_table",
    "BootstrapCI",
    "PairedComparison",
    "bootstrap_ci",
    "paired_bootstrap_test",
    "head_correctness",
    "HeadError",
    "ConstraintError",
    "collect_head_errors",
    "collect_constraint_errors",
    "summarize_head_errors",
    "format_head_error_report",
]
