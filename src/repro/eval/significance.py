"""Statistical significance for detector comparisons.

Accuracy deltas on a finite eval set need error bars before claiming a
winner. Two standard tools:

- :func:`bootstrap_ci` — percentile bootstrap confidence interval for a
  per-example binary outcome (e.g. head correctness);
- :func:`paired_bootstrap_test` — paired bootstrap comparing two systems
  on the *same* examples: the probability that system B would beat system
  A on a resample. Paired designs exploit that both systems see identical
  queries, giving far more power than unpaired comparison.

numpy-based; deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.estimate:.3f} [{self.lower:.3f}, {self.upper:.3f}]"


def bootstrap_ci(
    outcomes: list[bool] | np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean of binary outcomes."""
    if not 0 < confidence < 1:
        raise EvaluationError("confidence must be in (0, 1)")
    values = np.asarray(outcomes, dtype=np.float64)
    if values.size == 0:
        raise EvaluationError("cannot bootstrap an empty outcome list")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1 - confidence) / 2
    return BootstrapCI(
        estimate=float(values.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired bootstrap test between two systems."""

    mean_a: float
    mean_b: float
    delta: float  # mean_b - mean_a
    #: P(resampled delta <= 0): small means B reliably beats A.
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether B beats A at the given one-sided alpha."""
        return self.p_value < alpha


def paired_bootstrap_test(
    outcomes_a: list[bool] | np.ndarray,
    outcomes_b: list[bool] | np.ndarray,
    resamples: int = 2000,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap: does B beat A beyond resampling noise?

    ``outcomes_a[i]`` and ``outcomes_b[i]`` must refer to the same
    example. The reported p-value is one-sided for "B > A".
    """
    a = np.asarray(outcomes_a, dtype=np.float64)
    b = np.asarray(outcomes_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise EvaluationError("outcome vectors must be 1-D and aligned")
    if a.size == 0:
        raise EvaluationError("cannot compare empty outcome lists")
    deltas = b - a
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, a.size, size=(resamples, a.size))
    resampled = deltas[indices].mean(axis=1)
    p_value = float((resampled <= 0).mean())
    return PairedComparison(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        delta=float(deltas.mean()),
        p_value=p_value,
    )


def head_correctness(detector, examples) -> list[bool]:
    """Per-example head correctness — the outcome vector the tests above
    consume (abstentions count as wrong, matching HeadEvalResult)."""
    outcomes = []
    for example in examples:
        detection = detector.detect(example.query)
        outcomes.append(detection.head == example.gold.head)
    return outcomes
