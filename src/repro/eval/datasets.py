"""Labelled evaluation sets.

Held-out intents (a generator run with a seed never used for training)
provide queries with gold head / modifier / constraint labels — the
synthetic stand-in for the paper's human-judged query sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.mining.pairs import PairCollection
from repro.querylog.models import GoldLabel, QueryLog


@dataclass(frozen=True, slots=True)
class EvalExample:
    """One labelled query."""

    query: str
    gold: GoldLabel

    @property
    def domain(self) -> str:
        """Gold domain of the example's intent."""
        return self.gold.domain


def build_eval_set(
    log: QueryLog,
    min_modifiers: int = 1,
    max_examples: int | None = None,
    domains: tuple[str, ...] | None = None,
) -> list[EvalExample]:
    """Labelled examples from a (held-out) log's gold table.

    Only queries with at least ``min_modifiers`` gold modifiers qualify —
    head detection is trivial on single-segment queries. Order is
    deterministic (by query string) so sweeps are comparable.
    """
    if min_modifiers < 0:
        raise EvaluationError("min_modifiers must be non-negative")
    examples = []
    for query in sorted(log.gold_labels):
        gold = log.gold_labels[query]
        if len(gold.modifiers) < min_modifiers:
            continue
        if domains is not None and gold.domain not in domains:
            continue
        if gold.head not in query:
            continue  # collision artifact: label belongs to another surface
        examples.append(EvalExample(query=query, gold=gold))
        if max_examples is not None and len(examples) >= max_examples:
            break
    return examples


def unseen_pair_subset(
    examples: list[EvalExample], training_pairs: PairCollection
) -> list[EvalExample]:
    """Examples none of whose (modifier → head) pairs were mined in
    training — the pure-generalization test bed (experiment R5)."""
    unseen = []
    for example in examples:
        gold = example.gold
        seen = any(
            (modifier.surface, gold.head) in training_pairs
            for modifier in gold.modifiers
        )
        if not seen:
            unseen.append(example)
    return unseen


def split_by_domain(examples: list[EvalExample]) -> dict[str, list[EvalExample]]:
    """Group examples by their gold domain (sorted keys)."""
    grouped: dict[str, list[EvalExample]] = {}
    for example in examples:
        grouped.setdefault(example.domain, []).append(example)
    return dict(sorted(grouped.items()))
