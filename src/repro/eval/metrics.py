"""Metric primitives: set P/R/F1, ranking quality."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.utils.mathx import safe_div


@dataclass(frozen=True, slots=True)
class SetMetrics:
    """Precision / recall / F1 with the raw counts behind them."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP), 0 when undefined."""
        return safe_div(self.true_positives, self.true_positives + self.false_positives)

    @property
    def recall(self) -> float:
        """TP / (TP + FN), 0 when undefined."""
        return safe_div(self.true_positives, self.true_positives + self.false_negatives)

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return safe_div(2 * p * r, p + r)

    def __add__(self, other: "SetMetrics") -> "SetMetrics":
        return SetMetrics(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


def precision_recall_f1(predicted: Iterable[str], gold: Iterable[str]) -> SetMetrics:
    """Set-overlap metrics between predicted and gold item sets."""
    predicted_set = set(predicted)
    gold_set = set(gold)
    tp = len(predicted_set & gold_set)
    return SetMetrics(
        true_positives=tp,
        false_positives=len(predicted_set) - tp,
        false_negatives=len(gold_set) - tp,
    )


def ndcg_at_k(relevances: Sequence[float], k: int) -> float:
    """Normalized discounted cumulative gain of a ranked relevance list.

    ``relevances[i]`` is the graded relevance of the item ranked at
    position ``i`` (0-based). Returns 0 when nothing is relevant.
    """
    if k <= 0:
        raise EvaluationError("k must be positive")
    dcg = _dcg(relevances[:k])
    ideal = _dcg(sorted(relevances, reverse=True)[:k])
    return safe_div(dcg, ideal)


def average_precision_at_k(relevant_flags: Sequence[bool], k: int) -> float:
    """AP@k of a ranked binary-relevance list."""
    if k <= 0:
        raise EvaluationError("k must be positive")
    hits = 0
    total = 0.0
    for index, flag in enumerate(relevant_flags[:k]):
        if flag:
            hits += 1
            total += hits / (index + 1)
    return safe_div(total, min(k, max(1, sum(relevant_flags))))


def precision_at_k(relevant_flags: Sequence[bool], k: int) -> float:
    """Fraction of the top-``k`` that is relevant."""
    if k <= 0:
        raise EvaluationError("k must be positive")
    top = relevant_flags[:k]
    if not top:
        return 0.0
    return sum(top) / len(top)


def _dcg(relevances: Sequence[float]) -> float:
    return sum(rel / math.log2(rank + 2) for rank, rel in enumerate(relevances))
