"""Structured search relevance.

A flat bag-of-words scorer treats "iphone 5s smart cover" as three equally
important tokens; the structured scorer knows the document must be about a
*smart cover* (head), must satisfy *iphone 5s* (constraint), and merely
prefers "popular" (subjective modifier). Field weighting (title > body)
follows standard practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import Detection, HeadModifierDetector
from repro.text.normalizer import normalize


@dataclass(frozen=True, slots=True)
class Document:
    """A retrievable document with a title and an optional body."""

    doc_id: str
    title: str
    body: str = ""

    def contains(self, phrase: str) -> tuple[bool, bool]:
        """(in title, in body) membership of a normalized phrase."""
        needle = f" {normalize(phrase)} "
        title = f" {normalize(self.title)} "
        body = f" {normalize(self.body)} "
        return needle in title, needle in body


class StructuredRelevanceScorer:
    """Head/constraint-aware relevance.

    Score composition (defaults):

    - head match contributes ``head_weight`` (title hit counts fully, body
      hit at ``body_discount``); a document that never mentions the head
      is multiplied by ``head_miss_penalty`` — it is about something else;
    - constraints contribute ``constraint_weight`` * (fraction matched);
      each *unmatched* constraint multiplies the final score by
      ``violation_penalty``, and by the harsher ``conflict_penalty`` when
      the document names a *sibling* instance of the same concept instead
      ("iphone 5" on an "iphone 5s" query) — a constrained query is simply
      not satisfied by a document that contradicts the constraint;
    - non-constraint modifiers contribute the small remaining weight.
    """

    def __init__(
        self,
        detector: HeadModifierDetector,
        head_weight: float = 0.6,
        constraint_weight: float = 0.3,
        preference_weight: float = 0.1,
        body_discount: float = 0.6,
        violation_penalty: float = 0.3,
        conflict_penalty: float = 0.1,
        head_miss_penalty: float = 0.2,
    ) -> None:
        total = head_weight + constraint_weight + preference_weight
        if abs(total - 1.0) > 1e-9:
            raise ValueError("component weights must sum to 1")
        for name, value in (
            ("violation_penalty", violation_penalty),
            ("conflict_penalty", conflict_penalty),
            ("head_miss_penalty", head_miss_penalty),
        ):
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        self._detector = detector
        self._head_weight = head_weight
        self._constraint_weight = constraint_weight
        self._preference_weight = preference_weight
        self._body_discount = body_discount
        self._violation_penalty = violation_penalty
        self._conflict_penalty = conflict_penalty
        self._head_miss_penalty = head_miss_penalty

    def score(self, query: str | Detection, document: Document) -> float:
        """Relevance of ``document`` to ``query`` in [0, 1]."""
        detection = (
            query if isinstance(query, Detection) else self._detector.detect(query)
        )
        head = detection.head
        head_score = self._phrase_score(document, head) if head else 0.0

        constraints = detection.constraints
        preferences = tuple(
            m for m in detection.modifiers if m not in set(constraints)
        )
        constraint_score, _ = self._group_score(document, constraints)
        preference_score, _ = self._group_score(document, preferences)

        score = (
            self._head_weight * head_score
            + self._constraint_weight * constraint_score
            + self._preference_weight * preference_score
        )
        if head and head_score == 0.0:
            score *= self._head_miss_penalty
        for term in detection.modifier_terms:
            if not term.is_constraint:
                continue
            if self._phrase_score(document, term.text) > 0:
                continue
            if self._names_conflicting_sibling(document, term):
                score *= self._conflict_penalty
            else:
                score *= self._violation_penalty
        return score

    def _names_conflicting_sibling(self, document: Document, term) -> bool:
        """Does the document mention another instance of the constraint's
        concept ("iphone 5" where the query asked for "iphone 5s")?"""
        concept = term.top_concept
        if concept is None:
            return False
        taxonomy = self._detector.conceptualizer.taxonomy
        for sibling in taxonomy.instances_of(concept):
            if sibling == term.text:
                continue
            in_title, in_body = document.contains(sibling)
            if in_title or in_body:
                return True
        return False

    def rank(
        self, query: str, documents: list[Document], top_k: int | None = None
    ) -> list[tuple[Document, float]]:
        """Documents sorted by descending structured relevance."""
        detection = self._detector.detect(query)
        scored = [(doc, self.score(detection, doc)) for doc in documents]
        scored.sort(key=lambda pair: (-pair[1], pair[0].doc_id))
        return scored if top_k is None else scored[:top_k]

    def _phrase_score(self, document: Document, phrase: str) -> float:
        in_title, in_body = document.contains(phrase)
        if in_title:
            return 1.0
        if in_body:
            return self._body_discount
        return 0.0

    def _group_score(self, document: Document, phrases: tuple[str, ...]) -> tuple[float, int]:
        """(mean phrase score, number of complete misses) for a group."""
        if not phrases:
            return 1.0, 0
        scores = [self._phrase_score(document, p) for p in phrases]
        violations = sum(1 for s in scores if s == 0.0)
        return sum(scores) / len(scores), violations


class BagOfWordsScorer:
    """Flat token-overlap baseline (Jaccard over title+body tokens)."""

    def score(self, query: str, document: Document) -> float:
        """Jaccard overlap between query tokens and document tokens."""
        query_tokens = set(normalize(query).split())
        doc_tokens = set(normalize(f"{document.title} {document.body}").split())
        if not query_tokens or not doc_tokens:
            return 0.0
        return len(query_tokens & doc_tokens) / len(query_tokens | doc_tokens)

    def rank(
        self, query: str, documents: list[Document], top_k: int | None = None
    ) -> list[tuple[Document, float]]:
        """Documents sorted by descending token overlap."""
        scored = [(doc, self.score(query, doc)) for doc in documents]
        scored.sort(key=lambda pair: (-pair[1], pair[0].doc_id))
        return scored if top_k is None else scored[:top_k]
