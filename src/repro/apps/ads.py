"""Constraint-aware ads keyword matching.

A bid keyword should be served when it asks for the *same thing* as the
query: identical (or concept-compatible) heads, and no conflicting
constraints. An ad for "galaxy s4 case" and a query "iphone 5s case" share
two of three tokens, yet serving it would be wrong — both constrain the
same concept (smartphone) with different instances. Token-overlap
matchers make exactly this mistake; the structured matcher does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import Detection, HeadModifierDetector
from repro.text.normalizer import normalize


@dataclass(frozen=True, slots=True)
class Ad:
    """An advertiser's bid keyword."""

    ad_id: str
    keyword: str


@dataclass(frozen=True, slots=True)
class ScoredAd:
    ad: Ad
    score: float


class AdMatcher:
    """Head/constraint-aware query→ad matching.

    Scoring:

    - head agreement: exact head string ``1.0``; same top concept
      ``concept_head_score``; otherwise the ad is rejected;
    - query-constraint coverage scales the score between
      ``generic_discount`` (nothing matched) and 1.0 (all matched);
    - each *conflicting* ad constraint (same concept as a query constraint,
      different instance) multiplies the score by ``conflict_penalty``;
    - each other ad constraint the query never asked for (an
      over-specified ad) multiplies it by ``overspec_penalty``.
    """

    def __init__(
        self,
        detector: HeadModifierDetector,
        inventory: list[Ad],
        concept_head_score: float = 0.3,
        conflict_penalty: float = 0.05,
        overspec_penalty: float = 0.15,
        generic_discount: float = 0.6,
    ) -> None:
        self._detector = detector
        self._inventory = list(inventory)
        self._concept_head_score = concept_head_score
        self._conflict_penalty = conflict_penalty
        self._overspec_penalty = overspec_penalty
        self._generic_discount = generic_discount
        # Ad keywords are static: detect once at build time, as a
        # production matcher would.
        self._ad_detections: list[tuple[Ad, Detection]] = [
            (ad, self._detector.detect(ad.keyword)) for ad in self._inventory
        ]

    @property
    def inventory_size(self) -> int:
        """Number of ads in the matcher's inventory."""
        return len(self._inventory)

    def match(self, query: str, top_k: int = 5) -> list[ScoredAd]:
        """The ``top_k`` best-matching ads for ``query`` (score > 0 only)."""
        detection = self._detector.detect(query)
        scored = []
        for ad, ad_detection in self._ad_detections:
            score = self._score(detection, ad_detection)
            if score > 0:
                scored.append(ScoredAd(ad, score))
        scored.sort(key=lambda s: (-s.score, s.ad.ad_id))
        return scored[:top_k]

    def _score(self, query: Detection, ad: Detection) -> float:
        head_score = self._head_agreement(query, ad)
        if head_score == 0.0:
            return 0.0
        query_constraints = set(query.constraints)
        ad_constraints = set(ad.constraints)
        matched = query_constraints & ad_constraints
        extra = ad_constraints - query_constraints
        conflicts = self._count_conflicts(query, ad)
        overspecified = max(0, len(extra) - conflicts)
        score = head_score
        if query_constraints:
            coverage = len(matched) / len(query_constraints)
            score *= self._generic_discount + (1 - self._generic_discount) * coverage
        score *= self._conflict_penalty**conflicts
        score *= self._overspec_penalty**overspecified
        return score

    def _head_agreement(self, query: Detection, ad: Detection) -> float:
        if query.head is None or ad.head is None:
            return 0.0
        if query.head == ad.head:
            return 1.0
        query_concept = query.head_term.top_concept if query.head_term else None
        ad_concept = ad.head_term.top_concept if ad.head_term else None
        if query_concept is not None and query_concept == ad_concept:
            return self._concept_head_score
        return 0.0

    def _count_conflicts(self, query: Detection, ad: Detection) -> int:
        """Constraints of the same concept bound to different instances."""
        query_by_concept = _constraints_by_concept(query)
        ad_by_concept = _constraints_by_concept(ad)
        conflicts = 0
        for concept, query_value in query_by_concept.items():
            ad_value = ad_by_concept.get(concept)
            if ad_value is not None and ad_value != query_value:
                conflicts += 1
        return conflicts


def _constraints_by_concept(detection: Detection) -> dict[str, str]:
    result: dict[str, str] = {}
    for term in detection.modifier_terms:
        if term.is_constraint and term.top_concept is not None:
            result[term.top_concept] = term.text
    return result


class TokenOverlapAdMatcher:
    """Baseline: Jaccard token overlap between query and bid keyword."""

    def __init__(self, inventory: list[Ad]) -> None:
        self._inventory = list(inventory)

    def match(self, query: str, top_k: int = 5) -> list[ScoredAd]:
        """The ``top_k`` ads by Jaccard token overlap with ``query``."""
        query_tokens = set(normalize(query).split())
        scored = []
        for ad in self._inventory:
            ad_tokens = set(normalize(ad.keyword).split())
            union = query_tokens | ad_tokens
            if not union:
                continue
            score = len(query_tokens & ad_tokens) / len(union)
            if score > 0:
                scored.append(ScoredAd(ad, score))
        scored.sort(key=lambda s: (-s.score, s.ad.ad_id))
        return scored[:top_k]
