"""Synthetic document/ad collections for the application experiments.

Built from held-out labelled queries. The design mirrors the adversarial
structure of real retrieval:

- the *relevant* page does **not** mirror the query verbatim — real pages
  carry boilerplate ("official site", "free shipping"), which dilutes
  token overlap;
- the *conflicting* page/ad echoes the query closely but substitutes a
  same-concept sibling for one constraint ("iphone 5" for "iphone 5s"),
  chosen to share surface tokens — flat matchers rank it high, yet it
  violates the constraint and is irrelevant;
- a *generic* page/ad matches the head only (partially relevant);
- an *off-head* page matches the constraints but not the head
  (irrelevant).

Ad acceptability is judged semantically (same head, no constraint
violation), not by id, and the inventory is deduplicated by keyword.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.ads import Ad
from repro.apps.relevance import Document
from repro.eval.datasets import EvalExample
from repro.taxonomy.store import ConceptTaxonomy
from repro.utils.randx import rng_from_seed

#: Graded relevance levels.
REL_PERFECT = 3.0
REL_PARTIAL = 1.0
REL_IRRELEVANT = 0.0

_FILLER = "official site guide deals and more"


@dataclass(frozen=True)
class JudgedCollection:
    """Documents plus per-query graded relevance judgments."""

    documents: list[Document]
    judgments: dict[str, dict[str, float]]  # query -> doc_id -> relevance

    def relevance(self, query: str, doc_id: str) -> float:
        """Graded relevance of ``doc_id`` for ``query`` (0 when unjudged)."""
        return self.judgments.get(query, {}).get(doc_id, REL_IRRELEVANT)

    def candidates(self, query: str) -> list[str]:
        """Doc ids judged (relevant or distractor) for this query."""
        return sorted(self.judgments.get(query, {}))


@dataclass(frozen=True)
class JudgedAdInventory:
    """Deduplicated ads plus semantic acceptability judgments.

    An ad is acceptable for a query iff its head equals the query's gold
    head and every constraint in the ad keyword is one of the query's
    gold constraints (no conflicts, no over-specification).
    """

    ads: list[Ad]
    #: ad_id -> (head, constraints in the keyword)
    ad_semantics: dict[str, tuple[str, frozenset[str]]]
    #: query -> (gold head, gold constraints)
    query_semantics: dict[str, tuple[str, frozenset[str]]] = field(default_factory=dict)

    def is_acceptable(self, query: str, ad_id: str) -> bool:
        """Whether serving this ad on this query is semantically correct."""
        query_sem = self.query_semantics.get(query)
        ad_sem = self.ad_semantics.get(ad_id)
        if query_sem is None or ad_sem is None:
            return False
        query_head, query_constraints = query_sem
        ad_head, ad_constraints = ad_sem
        return ad_head == query_head and ad_constraints <= query_constraints


def synthesize_documents(
    examples: list[EvalExample],
    taxonomy: ConceptTaxonomy,
    seed: int = 31,
) -> JudgedCollection:
    """Build a judged document collection from labelled queries."""
    rng = rng_from_seed(seed, "documents")
    documents: list[Document] = []
    judgments: dict[str, dict[str, float]] = {}
    for index, example in enumerate(examples):
        gold = example.gold
        constraints = [m.surface for m in gold.modifiers if m.is_constraint]
        preferences = [m.surface for m in gold.modifiers if not m.is_constraint]
        base = f"d{index:05d}"
        per_query: dict[str, float] = {}

        # Relevant page: head + constraints, diluted with boilerplate.
        perfect = Document(
            doc_id=f"{base}-rel",
            title=f"{' '.join(constraints)} {gold.head} {_FILLER}".strip(),
            body=f"shop {gold.head} selection updated weekly",
        )
        documents.append(perfect)
        per_query[perfect.doc_id] = REL_PERFECT

        generic = Document(
            doc_id=f"{base}-gen",
            title=f"{gold.head} overview",
            body=f"everything about {gold.head}",
        )
        documents.append(generic)
        per_query[generic.doc_id] = REL_PARTIAL if constraints else REL_PERFECT

        conflict = _conflicting_constraint(taxonomy, gold, rng)
        if conflict is not None:
            original, substitute = conflict
            conflicting_title = " ".join(
                preferences
                + [substitute if c == original else c for c in constraints]
                + [gold.head]
            )
            conflicting = Document(
                doc_id=f"{base}-conf",
                title=conflicting_title,
                body=" ".join(preferences + [gold.head]),
            )
            documents.append(conflicting)
            per_query[conflicting.doc_id] = REL_IRRELEVANT

        if constraints:
            off_head = Document(
                doc_id=f"{base}-off",
                title=" ".join(constraints + ["news"]),
                body=" ".join(constraints),
            )
            documents.append(off_head)
            per_query[off_head.doc_id] = REL_IRRELEVANT

        judgments[example.query] = per_query
    return JudgedCollection(documents=documents, judgments=judgments)


def synthesize_ads(
    examples: list[EvalExample],
    taxonomy: ConceptTaxonomy,
    seed: int = 37,
    exact_keyword_rate: float = 0.5,
) -> JudgedAdInventory:
    """Build a judged, deduplicated ad inventory from labelled queries.

    Only ``exact_keyword_rate`` of the queries get an exactly-matching bid
    keyword — the interesting case is the rest, where the matcher must
    prefer the generic head keyword over a *conflicting* one that shares
    more surface tokens.
    """
    rng = rng_from_seed(seed, "ads")
    by_keyword: dict[str, tuple[Ad, tuple[str, frozenset[str]]]] = {}
    query_semantics: dict[str, tuple[str, frozenset[str]]] = {}

    def register(keyword: str, head: str, constraints: frozenset[str]) -> None:
        if keyword not in by_keyword:
            ad = Ad(f"ad{len(by_keyword):05d}", keyword)
            by_keyword[keyword] = (ad, (head, constraints))

    for example in examples:
        gold = example.gold
        constraints = [m.surface for m in gold.modifiers if m.is_constraint]
        query_semantics[example.query] = (gold.head, frozenset(constraints))

        if rng.random() < exact_keyword_rate and constraints:
            register(
                " ".join(constraints + [gold.head]), gold.head, frozenset(constraints)
            )
        register(gold.head, gold.head, frozenset())

        conflict = _conflicting_constraint(taxonomy, gold, rng)
        if conflict is not None:
            original, substitute = conflict
            conflict_constraints = frozenset(
                substitute if c == original else c for c in constraints
            )
            register(
                " ".join(sorted(conflict_constraints) + [gold.head]),
                gold.head,
                conflict_constraints,
            )

    ads = [ad for ad, _ in by_keyword.values()]
    semantics = {ad.ad_id: sem for ad, sem in by_keyword.values()}
    return JudgedAdInventory(
        ads=ads, ad_semantics=semantics, query_semantics=query_semantics
    )


def _conflicting_constraint(
    taxonomy: ConceptTaxonomy, gold, rng
) -> tuple[str, str] | None:
    """Pick (original constraint, same-concept substitute) for a query.

    The substitute maximizes shared tokens with the original ("iphone 5s"
    → "iphone 5") so that token-overlap matchers are maximally tempted.
    """
    for modifier in gold.modifiers:
        if not modifier.is_constraint or modifier.concept is None:
            continue
        siblings = [
            instance
            for instance in taxonomy.instances_of(modifier.concept)
            if instance != modifier.surface
        ]
        if not siblings:
            continue
        original_tokens = set(modifier.surface.split())
        siblings.sort(key=lambda s: (-len(original_tokens & set(s.split())), s))
        return modifier.surface, siblings[0]
    return None
