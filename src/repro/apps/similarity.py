"""Intent-level query similarity.

Token overlap says "iphone 5s case" and "iphone 5s charger" are nearly
identical (2/3 tokens) and that "iphone 5s case" and "case for iphone 5s"
differ — both wrong at the intent level. Comparing *detections* instead
gets it right: same head + compatible constraints = same ask.

Used for query clustering, cache keying, and related-search suggestion —
the same "search relevance" family of consumers the paper deployed into.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import Detection, HeadModifierDetector
from repro.utils.mathx import harmonic_mean


@dataclass(frozen=True)
class IntentSimilarity:
    """Breakdown of an intent-level comparison."""

    head_score: float
    constraint_score: float
    preference_score: float
    conflicts: int

    @property
    def score(self) -> float:
        """Combined similarity in [0, 1]; conflicts are disqualifying."""
        if self.head_score == 0.0:
            return 0.0
        base = (
            0.6 * self.head_score
            + 0.3 * self.constraint_score
            + 0.1 * self.preference_score
        )
        return base * (0.1**self.conflicts)


class QueryIntentMatcher:
    """Compares short texts at the intent level via their detections."""

    def __init__(
        self,
        detector: HeadModifierDetector,
        concept_head_score: float = 0.5,
        same_intent_threshold: float = 0.75,
    ) -> None:
        if not 0 < same_intent_threshold <= 1:
            raise ValueError("same_intent_threshold must be in (0, 1]")
        self._detector = detector
        self._concept_head_score = concept_head_score
        self._threshold = same_intent_threshold

    def compare(self, query_a: str, query_b: str) -> IntentSimilarity:
        """Full similarity breakdown between two short texts."""
        return self.compare_detections(
            self._detector.detect(query_a), self._detector.detect(query_b)
        )

    def compare_detections(self, a: Detection, b: Detection) -> IntentSimilarity:
        """Similarity breakdown between two precomputed detections."""
        return IntentSimilarity(
            head_score=self._head_agreement(a, b),
            constraint_score=_set_agreement(set(a.constraints), set(b.constraints)),
            preference_score=_set_agreement(
                _preferences(a), _preferences(b)
            ),
            conflicts=self._count_conflicts(a, b),
        )

    def similarity(self, query_a: str, query_b: str) -> float:
        """Scalar intent similarity in [0, 1]."""
        return self.compare(query_a, query_b).score

    def same_intent(self, query_a: str, query_b: str) -> bool:
        """Whether the two texts ask for the same thing."""
        return self.similarity(query_a, query_b) >= self._threshold

    def _head_agreement(self, a: Detection, b: Detection) -> float:
        if a.head is None or b.head is None:
            return 0.0
        if a.head == b.head:
            return 1.0
        concept_a = a.head_term.top_concept if a.head_term else None
        concept_b = b.head_term.top_concept if b.head_term else None
        if concept_a is not None and concept_a == concept_b:
            return self._concept_head_score
        return 0.0

    def _count_conflicts(self, a: Detection, b: Detection) -> int:
        """Constraints binding the same concept to different instances."""
        by_concept_a = _constraint_concepts(a)
        by_concept_b = _constraint_concepts(b)
        return sum(
            1
            for concept, value in by_concept_a.items()
            if concept in by_concept_b and by_concept_b[concept] != value
        )


def _preferences(detection: Detection) -> set[str]:
    constraints = set(detection.constraints)
    return {m for m in detection.modifiers if m not in constraints}


def _constraint_concepts(detection: Detection) -> dict[str, str]:
    result = {}
    for term in detection.modifier_terms:
        if term.is_constraint and term.top_concept is not None:
            result[term.top_concept] = term.text
    return result


def _set_agreement(a: set[str], b: set[str]) -> float:
    """F1-style agreement; both-empty counts as full agreement."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    overlap = len(a & b)
    return harmonic_mean(overlap / len(a), overlap / len(b))
