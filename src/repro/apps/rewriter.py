"""Constraint-preserving query rewriting.

Relaxing a query for recall must not change its meaning: subjective
modifiers can always go, constraints never can. The rewriter produces the
relaxation ladder a retrieval stack would try in order.
"""

from __future__ import annotations

from repro.core.detector import HeadModifierDetector, TermRole


class QueryRewriter:
    """Generates meaning-preserving relaxations of a short text."""

    def __init__(self, detector: HeadModifierDetector) -> None:
        self._detector = detector

    def must_keep(self, query: str) -> tuple[str, ...]:
        """The irreducible core: head plus constraint modifiers, in query
        order."""
        detection = self._detector.detect(query)
        kept = []
        for term in detection.terms:
            if term.role is TermRole.HEAD:
                kept.append(term.text)
            elif term.role is TermRole.MODIFIER and term.is_constraint:
                kept.append(term.text)
        return tuple(kept)

    def relax(self, query: str) -> list[str]:
        """Relaxation ladder, most specific first.

        Step 0 is the original (normalized) query; each later step drops
        one more non-constraint modifier (left to right); the final step
        is the irreducible core. Consecutive duplicates are removed.
        """
        detection = self._detector.detect(query)
        droppable = [
            term.text
            for term in detection.terms
            if term.role is TermRole.MODIFIER and term.is_constraint is False
        ]
        ladder = [detection.query]
        remaining = detection.query
        for drop in droppable:
            remaining = _remove_phrase(remaining, drop)
            if remaining and remaining != ladder[-1]:
                ladder.append(remaining)
        core = " ".join(self.must_keep(query))
        if core and core != ladder[-1]:
            ladder.append(core)
        return ladder

    def rewrite_for_recall(self, query: str) -> str:
        """The broadest meaning-preserving rewrite (head + constraints)."""
        core = self.must_keep(query)
        return " ".join(core) if core else query


def _remove_phrase(text: str, phrase: str) -> str:
    tokens = text.split()
    phrase_tokens = phrase.split()
    n = len(phrase_tokens)
    for start in range(len(tokens) - n + 1):
        if tokens[start : start + n] == phrase_tokens:
            return " ".join(tokens[:start] + tokens[start + n :])
    return text
