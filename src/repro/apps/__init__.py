"""Applications of head/modifier/constraint detection.

The paper motivates the mechanism with two production uses: **search
relevance** (a document matching the head + constraints beats one matching
only surface tokens) and **ads matching** (an ad keyword must agree with
the query's head and not conflict with its constraints). A third natural
consumer is **query rewriting** (relax non-constraint modifiers for
recall). All three are implemented against the public detector API.
"""

from repro.apps.ads import Ad, AdMatcher, ScoredAd, TokenOverlapAdMatcher
from repro.apps.corpus import synthesize_ads, synthesize_documents
from repro.apps.relevance import (
    BagOfWordsScorer,
    Document,
    StructuredRelevanceScorer,
)
from repro.apps.rewriter import QueryRewriter
from repro.apps.similarity import IntentSimilarity, QueryIntentMatcher

__all__ = [
    "QueryIntentMatcher",
    "IntentSimilarity",
    "Document",
    "StructuredRelevanceScorer",
    "BagOfWordsScorer",
    "Ad",
    "ScoredAd",
    "AdMatcher",
    "TokenOverlapAdMatcher",
    "QueryRewriter",
    "synthesize_documents",
    "synthesize_ads",
]
