"""Iteration helpers."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import islice
from typing import TypeVar

T = TypeVar("T")


def batched(items: Iterable[T], batch_size: int) -> Iterator[list[T]]:
    """Yield lists of up to ``batch_size`` consecutive items.

    >>> list(batched([1, 2, 3, 4, 5], batch_size=2))
    [[1, 2], [3, 4], [5]]
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    current: list[T] = []
    for item in items:
        current.append(item)
        if len(current) == batch_size:
            yield current
            current = []
    if current:
        yield current


def sliding_windows(items: Sequence[T], size: int) -> Iterator[tuple[T, ...]]:
    """Yield consecutive windows of exactly ``size`` items.

    >>> list(sliding_windows("abcd", 2))
    [('a', 'b'), ('b', 'c'), ('c', 'd')]
    """
    if size <= 0:
        raise ValueError("size must be positive")
    for start in range(len(items) - size + 1):
        yield tuple(items[start : start + size])


def take(items: Iterable[T], n: int) -> list[T]:
    """Return the first ``n`` items of an iterable as a list."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return list(islice(items, n))
