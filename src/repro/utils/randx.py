"""Deterministic randomness helpers.

Everything synthetic in this library (taxonomy corpus, query log) must be
reproducible from a single integer seed; these helpers keep that discipline
in one place.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def stable_hash(*parts: str) -> int:
    """A process-independent 64-bit hash of the given string parts.

    ``hash()`` is salted per-process, so it cannot be used to derive seeds or
    synthetic URLs that must be stable across runs.
    """
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rng_from_seed(seed: int, *scope: str) -> random.Random:
    """Create an independent ``random.Random`` for a named scope.

    Deriving sub-generators by name means adding a new consumer of
    randomness does not perturb the streams of existing consumers.
    """
    return random.Random(stable_hash(str(seed), *scope))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return rng.choices(items, weights=weights, k=1)[0]
