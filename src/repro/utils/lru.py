"""A small bounded LRU map, and its sharded variant.

Long-running detector processes memoize pure per-phrase computations
(concept readings, pair affinities). An unbounded dict grows with the
vocabulary of the traffic — fine in a benchmark, a slow leak in a
service. ``LruCache`` is the drop-in replacement: ``get`` refreshes
recency, ``put`` evicts the least-recently-used entry once ``capacity``
is exceeded.

Python dicts preserve insertion order, so recency is maintained by
re-inserting touched keys; eviction pops the oldest (first) key. All
operations are O(1).

:class:`ShardedLruCache` spreads one logical cache over N independent
``LruCache`` shards selected by :func:`shard_of` (crc32 of the key, the
same deterministic sharding the training pipeline uses for query logs).
Eviction pressure stays local to a shard, and the layout matches how a
sharded serving tier would partition a distributed cache — the stats it
reports are per-key-space, not per-process.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from typing import Generic, TypeVar, cast
from zlib import crc32


def shard_of(key: Hashable, num_shards: int) -> int:
    """Deterministic shard index for ``key`` (stable across processes).

    Strings hash via crc32 of their UTF-8 bytes — the same scheme
    :mod:`repro.training.parallel` uses to shard query logs — so a key
    always lands on the same shard regardless of ``PYTHONHASHSEED``.
    Non-string keys fall back to ``hash`` (process-stable, which is all
    an in-process cache needs).
    """
    if isinstance(key, str):
        return crc32(key.encode("utf-8")) % num_shards
    return hash(key) % num_shards

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LruCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry.

    >>> cache = LruCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b", the LRU entry
    >>> "b" in cache
    False
    """

    __slots__ = ("_capacity", "_data", "_hits", "_misses")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._data: dict[K, V] = {}
        self._hits = 0
        self._misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Number of ``get`` calls that found their key."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of ``get`` calls that did not find their key."""
        return self._misses

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or ``default``."""
        value = self._data.pop(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        hit = cast("V", value)
        self._data[key] = hit  # re-insert at the MRU end
        self._hits += 1
        return hit

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when full."""
        self._data.pop(key, None)
        self._data[key] = value
        if len(self._data) > self._capacity:
            self._data.pop(next(iter(self._data)))

    def clear(self) -> None:
        """Drop all entries (hit/miss counters are kept)."""
        self._data.clear()

    def hottest(self, n: int) -> list[K]:
        """Up to ``n`` keys, most-recently-used first.

        Recency is the LRU's own hotness signal: the dict is ordered
        oldest→newest, so the reversed prefix is the hot set. Used by
        replica cache warm-up (the router replays a sibling's hottest
        keys through a cold replica before routing to it).
        """
        if n <= 0:
            return []
        hottest: list[K] = []
        for key in reversed(self._data):
            if len(hottest) >= n:
                break
            hottest.append(key)
        return hottest

    def stats(self) -> dict[str, object]:
        """Counters as one JSON-friendly dict (hit_rate over all gets)."""
        lookups = self._hits + self._misses
        return {
            "size": len(self._data),
            "capacity": self._capacity,
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": self._hits / lookups if lookups else 0.0,
        }

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)


class ShardedLruCache(Generic[K, V]):
    """One logical LRU cache spread over ``num_shards`` independent shards.

    The total ``capacity`` is split evenly (any remainder goes to the
    first shards), and each key is pinned to one shard by
    :func:`shard_of`. The interface mirrors :class:`LruCache`; hit/miss
    counters aggregate across shards.

    >>> cache = ShardedLruCache(capacity=8, num_shards=4)
    >>> cache.put("a", 1)
    >>> cache.get("a")
    1
    """

    __slots__ = ("_shards",)

    def __init__(self, capacity: int, num_shards: int = 8) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if capacity < num_shards:
            raise ValueError(
                f"capacity ({capacity}) must be >= num_shards ({num_shards})"
            )
        base, extra = divmod(capacity, num_shards)
        self._shards: list[LruCache[K, V]] = [
            LruCache(base + (1 if index < extra else 0))
            for index in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        """Number of independent shards."""
        return len(self._shards)

    @property
    def capacity(self) -> int:
        """Total entries held across all shards."""
        return sum(shard.capacity for shard in self._shards)

    @property
    def hits(self) -> int:
        """Aggregate hit count across shards."""
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        """Aggregate miss count across shards."""
        return sum(shard.misses for shard in self._shards)

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or ``default``."""
        return self._shards[shard_of(key, len(self._shards))].get(key, default)

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) ``key`` on its shard, evicting that
        shard's LRU entry when the shard is full."""
        self._shards[shard_of(key, len(self._shards))].put(key, value)

    def clear(self) -> None:
        """Drop all entries (hit/miss counters are kept)."""
        for shard in self._shards:
            shard.clear()

    def hottest(self, n: int) -> list[K]:
        """Up to ``n`` keys across shards, hottest first.

        Per-shard recency lists (:meth:`LruCache.hottest`) are
        interleaved round-robin — position 0 of every shard, then
        position 1, ... — so the result is deterministic and no shard's
        hot head is starved by a neighbour's.
        """
        if n <= 0:
            return []
        per_shard = [shard.hottest(n) for shard in self._shards]
        hottest: list[K] = []
        for position in range(max((len(keys) for keys in per_shard), default=0)):
            for keys in per_shard:
                if position < len(keys):
                    hottest.append(keys[position])
                    if len(hottest) >= n:
                        return hottest
        return hottest

    def stats(self) -> dict[str, object]:
        """Aggregate counters plus per-shard sizes."""
        lookups = self.hits + self.misses
        return {
            "size": len(self),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "shard_sizes": [len(shard) for shard in self._shards],
        }

    def __contains__(self, key: K) -> bool:
        return key in self._shards[shard_of(key, len(self._shards))]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)
