"""A small bounded LRU map.

Long-running detector processes memoize pure per-phrase computations
(concept readings, pair affinities). An unbounded dict grows with the
vocabulary of the traffic — fine in a benchmark, a slow leak in a
service. ``LruCache`` is the drop-in replacement: ``get`` refreshes
recency, ``put`` evicts the least-recently-used entry once ``capacity``
is exceeded.

Python dicts preserve insertion order, so recency is maintained by
re-inserting touched keys; eviction pops the oldest (first) key. All
operations are O(1).
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LruCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry.

    >>> cache = LruCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b", the LRU entry
    >>> "b" in cache
    False
    """

    __slots__ = ("_capacity", "_data", "_hits", "_misses")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._data: dict[K, V] = {}
        self._hits = 0
        self._misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Number of ``get`` calls that found their key."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of ``get`` calls that did not find their key."""
        return self._misses

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or ``default``."""
        value = self._data.pop(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        self._data[key] = value  # re-insert at the MRU end
        self._hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when full."""
        self._data.pop(key, None)
        self._data[key] = value
        if len(self._data) > self._capacity:
            self._data.pop(next(iter(self._data)))

    def clear(self) -> None:
        """Drop all entries (hit/miss counters are kept)."""
        self._data.clear()

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)
