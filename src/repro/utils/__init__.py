"""Shared low-level helpers: math, IO, iteration, timing, RNG."""

from repro.utils.iteration import batched, sliding_windows, take
from repro.utils.lru import LruCache
from repro.utils.mathx import (
    entropy,
    harmonic_mean,
    log_add,
    normalize_distribution,
    safe_div,
    zipf_weights,
)
from repro.utils.randx import rng_from_seed, stable_hash, weighted_choice
from repro.utils.timer import Timer

__all__ = [
    "batched",
    "sliding_windows",
    "take",
    "LruCache",
    "entropy",
    "harmonic_mean",
    "log_add",
    "normalize_distribution",
    "safe_div",
    "zipf_weights",
    "rng_from_seed",
    "stable_hash",
    "weighted_choice",
    "Timer",
]
