"""Numeric helpers used across the library.

Small, dependency-light functions; anything heavier (matrix work) lives next
to its caller and uses numpy directly.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning ``default`` when the denominator is zero."""
    if denominator == 0:
        return default
    return numerator / denominator


def log_add(log_a: float, log_b: float) -> float:
    """Return ``log(exp(log_a) + exp(log_b))`` without overflow."""
    if log_a == float("-inf"):
        return log_b
    if log_b == float("-inf"):
        return log_a
    hi, lo = (log_a, log_b) if log_a >= log_b else (log_b, log_a)
    return hi + math.log1p(math.exp(lo - hi))


def entropy(weights: Iterable[float]) -> float:
    """Shannon entropy (nats) of an unnormalized non-negative weight vector.

    Zero weights are ignored. An empty or all-zero vector has entropy 0.
    """
    ws = [w for w in weights if w > 0]
    total = sum(ws)
    if total <= 0:
        return 0.0
    acc = 0.0
    for w in ws:
        p = w / total
        acc -= p * math.log(p)
    return acc


def normalize_distribution(weights: Mapping[str, float]) -> dict[str, float]:
    """Return a probability distribution proportional to ``weights``.

    Non-positive entries are dropped. Raises ``ValueError`` when nothing
    remains, because a silent empty distribution hides upstream bugs.
    """
    kept = {k: w for k, w in weights.items() if w > 0}
    total = sum(kept.values())
    if total <= 0:
        raise ValueError("cannot normalize: no positive weights")
    return {k: w / total for k, w in kept.items()}


def harmonic_mean(a: float, b: float) -> float:
    """Harmonic mean of two non-negative numbers (0 when either is 0)."""
    if a <= 0 or b <= 0:
        return 0.0
    return 2 * a * b / (a + b)


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Weights of a Zipf distribution over ranks ``1..n`` (normalized).

    Used by the synthetic substrates so frequency distributions look like
    real web/log data rather than being uniform.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]
