"""Whole-program graphs: module imports and a name-resolved call graph.

The file-local rules (REP001-REP006) see one AST at a time, so a sync
helper that calls ``time.sleep`` two hops below an ``async def``, an
illegal ``core -> serving`` import, or a replica op nobody sends all
pass a per-file lint. This module grows the analysis layer into
whole-program shape, the same way PR 6 grew per-query detection into
batch array programs: one deterministic pass over every
:class:`~repro.analysis.context.SourceFile` builds

- a **module import graph** (:class:`ModuleGraph`) — one node per
  project file, one edge per ``import``/``from .. import`` statement
  that resolves to another project file, tagged with its line and
  whether it is *deferred* (written inside a function body, so it does
  not execute at load time); and
- an **intra-project call graph** (:class:`CallGraph`) — one node per
  module-level function or method, edges resolved through each file's
  import table (:meth:`~repro.analysis.context.FileContext.resolve_call`),
  ``self.``/``cls.`` method lookup with base-class chasing, package
  ``__init__`` re-exports, and a unique-name fallback for attribute
  calls with project-style (underscored) names. External calls that are
  rooted in an import (``time.sleep``, ``subprocess.run``) are kept per
  function so closure rules (REP008) can test them against a policy
  table without the graph itself taking a policy position.

Both graphs iterate in sorted order everywhere, so two runs over the
same sources render byte-identical JSON/DOT. Construction is cached per
run, keyed by the content hashes of the input files — repeated
``lint_project`` calls in one process (the test suite, ``--graph``
after a lint) pay for parsing once.

The project rules REP007 (layering), REP008 (transitive blocking),
REP009 (wire-protocol conformance), and REP010 (dead public API) are
all views over these graphs; the CLI exposes them directly via
``repro lint --graph {dot,json}``.
"""

from __future__ import annotations

import ast
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.context import SourceFile

#: Single-name builtin calls worth recording as externals (the blocking
#: builtins REP002/REP008 police); everything else single-name is noise.
_BUILTIN_EXTERNALS = frozenset({"open", "input"})

#: How many ``__init__`` re-export hops / base-class links to chase.
_RESOLVE_DEPTH = 5

#: Bounded construction cache: content-hash key -> built graphs.
_CACHE_CAPACITY = 4
_CACHE: "OrderedDict[tuple[tuple[str, str], ...], ProjectGraphs]" = OrderedDict()


def subsystem_of(relpath: str) -> str:
    """The architecture subsystem a package-relative path belongs to.

    Directories name their subsystem (``serving/router.py`` ->
    ``serving``, ``analysis/rules/rep001_determinism.py`` ->
    ``analysis``); top-level modules are their own (``errors.py`` ->
    ``errors``, ``cli.py`` -> ``cli``); the package root ``__init__.py``
    is the pseudo-subsystem ``root``. Benchmark sources, linted under a
    ``benchmarks/`` prefix, form the ``benchmarks`` subsystem.
    """
    head, sep, _ = relpath.partition("/")
    if sep:
        return head
    if relpath == "__init__.py":
        return "root"
    return relpath[:-3] if relpath.endswith(".py") else relpath


def module_name(relpath: str) -> str:
    """Dotted module name of a package-relative path.

    ``serving/router.py`` -> ``repro.serving.router``; ``__init__.py``
    -> ``repro``; ``benchmarks/bench_x.py`` -> ``benchmarks.bench_x``
    (benchmark scripts are not part of the installed package).
    """
    stem = relpath[:-3] if relpath.endswith(".py") else relpath
    if stem == "__init__":
        return "repro"
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    dotted = stem.replace("/", ".")
    if dotted.startswith("benchmarks."):
        return dotted
    return f"repro.{dotted}"


@dataclass(frozen=True, order=True)
class ImportEdge:
    """One resolved intra-project import statement."""

    source: str  #: importing file (package-relative path)
    target: str  #: imported file (package-relative path)
    line: int  #: 1-based line of the import statement
    deferred: bool  #: written inside a function body (not load-time)


@dataclass(frozen=True, order=True)
class FunctionNode:
    """One module-level function or method in the call graph."""

    node_id: str  #: ``relpath:qualname`` (``serving/router.py:Router.detect``)
    path: str
    qualname: str
    line: int
    is_async: bool


@dataclass(frozen=True, order=True)
class CallSite:
    """One resolved intra-project call: ``caller`` invokes ``callee``."""

    caller: str  #: caller node id
    callee: str  #: callee node id
    line: int  #: 1-based line of the call expression


@dataclass(frozen=True, order=True)
class ExternalCall:
    """One import-rooted call that leaves the project (``time.sleep``)."""

    caller: str  #: caller node id
    name: str  #: resolved dotted name of the external target
    line: int


class ModuleGraph:
    """The project's file-level import graph (sorted, immutable)."""

    def __init__(self, modules: Sequence[str], edges: Sequence[ImportEdge]) -> None:
        self.modules: tuple[str, ...] = tuple(sorted(modules))
        self.edges: tuple[ImportEdge, ...] = tuple(sorted(edges))
        by_source: dict[str, list[ImportEdge]] = {}
        for edge in self.edges:
            by_source.setdefault(edge.source, []).append(edge)
        self._by_source = {source: tuple(found) for source, found in by_source.items()}

    def imports_of(self, relpath: str) -> tuple[ImportEdge, ...]:
        """Outgoing import edges of one file, sorted."""
        return self._by_source.get(relpath, ())

    def load_time_cycles(self) -> list[tuple[str, ...]]:
        """Cycles among *load-time* (non-deferred) imports.

        Deferred imports execute on first call, not at module load, so
        they cannot deadlock the interpreter's import machinery — they
        are the sanctioned way to break a cycle, and excluding them here
        is what makes that escape valve real. Returns each strongly
        connected component with more than one member (or a self-loop)
        as a sorted tuple of paths, in sorted order.
        """
        adjacency: dict[str, list[str]] = {module: [] for module in self.modules}
        for edge in self.edges:
            if not edge.deferred and edge.source != edge.target:
                adjacency.setdefault(edge.source, []).append(edge.target)
        components = _strongly_connected(self.modules, adjacency)
        return sorted(
            tuple(sorted(component))
            for component in components
            if len(component) > 1
        )


def _strongly_connected(
    nodes: Sequence[str], adjacency: dict[str, list[str]]
) -> list[list[str]]:
    """Tarjan's algorithm, iterative (sorted traversal: deterministic)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(adjacency.get(node, ()))
            advanced = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


class CallGraph:
    """The project's name-resolved intra-project call graph."""

    def __init__(
        self,
        functions: Sequence[FunctionNode],
        calls: Sequence[CallSite],
        externals: Sequence[ExternalCall],
    ) -> None:
        self.functions: dict[str, FunctionNode] = {
            node.node_id: node for node in sorted(functions)
        }
        self.calls: tuple[CallSite, ...] = tuple(sorted(calls))
        self.externals: tuple[ExternalCall, ...] = tuple(sorted(externals))
        calls_by_caller: dict[str, list[CallSite]] = {}
        for site in self.calls:
            calls_by_caller.setdefault(site.caller, []).append(site)
        self._calls_by_caller = {
            caller: tuple(found) for caller, found in calls_by_caller.items()
        }
        externals_by_caller: dict[str, list[ExternalCall]] = {}
        for external in self.externals:
            externals_by_caller.setdefault(external.caller, []).append(external)
        self._externals_by_caller = {
            caller: tuple(found) for caller, found in externals_by_caller.items()
        }

    def calls_of(self, node_id: str) -> tuple[CallSite, ...]:
        """Resolved project calls made by one function, sorted."""
        return self._calls_by_caller.get(node_id, ())

    def externals_of(self, node_id: str) -> tuple[ExternalCall, ...]:
        """Import-rooted external calls made by one function, sorted."""
        return self._externals_by_caller.get(node_id, ())


@dataclass(frozen=True)
class ProjectGraphs:
    """Everything :func:`build_graphs` derives from one source set."""

    modules: ModuleGraph
    calls: CallGraph


class _ClassInfo:
    """Method table + base names of one class, for ``self.x()`` lookup."""

    __slots__ = ("methods", "bases")

    def __init__(self) -> None:
        self.methods: dict[str, str] = {}  # method name -> node id
        self.bases: list[str] = []  # dotted base names (import-resolved)


class _FileFacts:
    """Everything one parsed file contributes to the graphs."""

    __slots__ = ("relpath", "imports", "tree", "classes", "functions", "import_table")

    def __init__(self, relpath: str, tree: ast.Module, import_table: dict[str, str]) -> None:
        self.relpath = relpath
        self.tree = tree
        self.import_table = import_table
        #: (dotted target, line, deferred, module_form)
        self.imports: list[tuple[str, int, bool, bool]] = []
        self.classes: dict[str, _ClassInfo] = {}
        self.functions: dict[str, FunctionNode] = {}  # qualname -> node


def _import_targets(
    node: ast.Import | ast.ImportFrom, package: str
) -> list[tuple[str, bool]]:
    """Dotted names an import statement might bind, as (dotted,
    module_form) pairs. A module-form target (``import a.b``, the base
    of a ``from a.b import x``) must match a project file exactly; a
    symbol-form target (``a.b.x``) may resolve one symbol deep — the
    distinction keeps ``from repro.utils import x`` from fabricating an
    edge to the package root when ``utils`` has no ``__init__``."""
    targets: list[tuple[str, bool]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            targets.append((alias.name, True))
        return targets
    base = node.module or ""
    if node.level:
        parts = package.split(".")
        keep = len(parts) - node.level + 1
        if keep < 1:
            return targets
        base = ".".join(parts[:keep])
        if node.module:
            base = f"{base}.{node.module}"
    if not base:
        return targets
    for alias in node.names:
        targets.append((f"{base}.{alias.name}", False))
    targets.append((base, True))
    return targets


def _parse_files(sources: Sequence[SourceFile]) -> list[_FileFacts]:
    """Parse every source into the per-file fact sheet (unparsable files
    are skipped: the engine rejects them before rules ever run, and the
    graph should not die on a corpus member the lint did not target)."""
    facts: list[_FileFacts] = []
    for source in sorted(sources, key=lambda item: item.relpath):
        try:
            tree = ast.parse(source.text, filename=source.relpath)
        except SyntaxError:
            continue
        import_table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    import_table[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    import_table[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        facts.append(_FileFacts(source.relpath, tree, import_table))
    return facts


def _collect_imports(facts: _FileFacts) -> None:
    """Record (dotted, line, deferred) for every import statement."""
    dotted_self = module_name(facts.relpath)
    package = (
        dotted_self
        if facts.relpath.endswith("__init__.py")
        else dotted_self.rsplit(".", 1)[0]
    )

    def visit(node: ast.AST, deferred: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                for target, module_form in _import_targets(child, package):
                    facts.imports.append(
                        (target, child.lineno, deferred, module_form)
                    )
            # Function bodies run on call, and `if TYPE_CHECKING:` blocks
            # never run at all — neither executes at module load.
            child_deferred = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) or (isinstance(child, ast.If) and _is_type_checking(child.test))
            visit(child, child_deferred)

    visit(facts.tree, False)


def _is_type_checking(test: ast.expr) -> bool:
    """``TYPE_CHECKING`` / ``typing.TYPE_CHECKING`` as an ``if`` test."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _collect_definitions(facts: _FileFacts) -> None:
    """Record module-level functions, classes, and their methods."""
    for node in facts.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions[node.name] = FunctionNode(
                f"{facts.relpath}:{node.name}",
                facts.relpath,
                node.name,
                node.lineno,
                isinstance(node, ast.AsyncFunctionDef),
            )
        elif isinstance(node, ast.ClassDef):
            info = _ClassInfo()
            for base in node.bases:
                dotted = _dotted_of(base, facts.import_table)
                if dotted is not None:
                    info.bases.append(dotted)
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{member.name}"
                    facts.functions[qualname] = FunctionNode(
                        f"{facts.relpath}:{qualname}",
                        facts.relpath,
                        qualname,
                        member.lineno,
                        isinstance(member, ast.AsyncFunctionDef),
                    )
                    info.methods[member.name] = f"{facts.relpath}:{qualname}"
            facts.classes[node.name] = info


def _dotted_of(node: ast.expr, import_table: dict[str, str]) -> str | None:
    """Dotted name of a name/attribute chain through the import table
    (the standalone twin of ``FileContext.resolve_call``)."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    parts[0] = import_table.get(parts[0], parts[0])
    return ".".join(parts)


def _root_name(node: ast.expr) -> str | None:
    """The leftmost ``Name`` of a call target, if any."""
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None


class _Resolver:
    """Cross-file name resolution over the parsed fact sheets."""

    def __init__(self, facts: Sequence[_FileFacts]) -> None:
        self.by_path: dict[str, _FileFacts] = {f.relpath: f for f in facts}
        # Longest-prefix module lookup: dotted module name -> relpath.
        self.module_files: dict[str, str] = {}
        for sheet in facts:
            self.module_files[module_name(sheet.relpath)] = sheet.relpath
            if sheet.relpath.startswith("benchmarks/"):
                # Benchmark scripts import each other bare (`from _hw
                # import ...` with benchmarks/ on sys.path).
                stem = sheet.relpath[len("benchmarks/") : -3]
                self.module_files.setdefault(stem, sheet.relpath)
        # Unique-name fallback: terminal name -> node ids defining it.
        names: dict[str, list[str]] = {}
        for sheet in facts:
            for qualname, node in sheet.functions.items():
                names.setdefault(qualname.rsplit(".", 1)[-1], []).append(node.node_id)
        self.by_terminal = {name: sorted(ids) for name, ids in names.items()}

    def module_of(self, dotted: str) -> tuple[str, list[str]] | None:
        """Split a dotted name into (file, symbol-path remainder) by the
        longest module prefix that names a project file."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            relpath = self.module_files.get(prefix)
            if relpath is not None:
                return relpath, parts[cut:]
        return None

    def resolve_symbol(
        self, relpath: str, symbol_path: list[str], depth: int = _RESOLVE_DEPTH
    ) -> str | None:
        """A symbol path inside one file to a function node id (chasing
        ``__init__`` re-exports and class constructors)."""
        if depth <= 0 or not symbol_path:
            return None
        sheet = self.by_path.get(relpath)
        if sheet is None:
            return None
        head = symbol_path[0]
        if len(symbol_path) == 1:
            node = sheet.functions.get(head)
            if node is not None:
                return node.node_id
            info = sheet.classes.get(head)
            if info is not None:  # instantiation runs the constructor
                return info.methods.get("__init__")
        elif len(symbol_path) == 2:
            node = sheet.functions.get(f"{head}.{symbol_path[1]}")
            if node is not None:
                return node.node_id
            info = sheet.classes.get(head)
            if info is not None:
                return self.method_on(sheet, head, symbol_path[1], depth - 1)
        # Re-export: `from repro.serving import DetectionService` binds
        # the symbol on the package __init__; chase its import table.
        re_export = sheet.import_table.get(head)
        if re_export is not None:
            located = self.module_of(".".join([re_export, *symbol_path[1:]]))
            if located is not None and located[0] != relpath:
                target, remainder = located
                if remainder:
                    return self.resolve_symbol(target, remainder, depth - 1)
        return None

    def method_on(
        self, sheet: _FileFacts, class_name: str, method: str, depth: int = _RESOLVE_DEPTH
    ) -> str | None:
        """Look a method up on a class, walking project-resolvable bases."""
        if depth <= 0:
            return None
        info = sheet.classes.get(class_name)
        if info is None:
            return None
        found = info.methods.get(method)
        if found is not None:
            return found
        for base in info.bases:
            if "." not in base:  # base defined in the same file
                resolved = self.method_on(sheet, base, method, depth - 1)
                if resolved is not None:
                    return resolved
                continue
            located = self.module_of(base)
            if located is None:
                continue
            base_path, remainder = located
            base_sheet = self.by_path.get(base_path)
            if base_sheet is None or len(remainder) != 1:
                continue
            resolved = self.method_on(base_sheet, remainder[0], method, depth - 1)
            if resolved is not None:
                return resolved
        return None


def _collect_calls(
    facts: _FileFacts, resolver: _Resolver
) -> tuple[list[CallSite], list[ExternalCall]]:
    """Resolve every call expression inside each function of one file."""
    calls: list[CallSite] = []
    externals: list[ExternalCall] = []

    def resolve(call: ast.Call, owner: str, class_name: str | None) -> None:
        func = call.func
        dotted = _dotted_of(func, facts.import_table)
        if dotted is None:
            return
        parts = dotted.split(".")
        # self.method() / cls.method(): the enclosing class's namespace.
        if parts[0] in ("self", "cls") and class_name is not None:
            if len(parts) == 2:
                callee = resolver.method_on(facts, class_name, parts[1])
                if callee is not None:
                    calls.append(CallSite(owner, callee, call.lineno))
            return
        root = _root_name(func)
        if root is None:
            return
        if root in facts.import_table or (
            len(parts) == 1 and parts[0] in facts.functions
        ):
            local = facts.functions.get(dotted) if len(parts) == 1 else None
            if local is not None:
                calls.append(CallSite(owner, local.node_id, call.lineno))
                return
            located = resolver.module_of(dotted)
            if located is not None:
                relpath, remainder = located
                callee = resolver.resolve_symbol(relpath, remainder)
                if callee is not None:
                    calls.append(CallSite(owner, callee, call.lineno))
                    return
                if not remainder:
                    return  # a module object called? nothing to record
            if root in facts.import_table:
                externals.append(ExternalCall(owner, dotted, call.lineno))
            return
        if len(parts) == 1:
            if parts[0] in facts.classes:
                callee = facts.classes[parts[0]].methods.get("__init__")
                if callee is not None:
                    calls.append(CallSite(owner, callee, call.lineno))
            elif parts[0] in _BUILTIN_EXTERNALS:
                externals.append(ExternalCall(owner, parts[0], call.lineno))
            return
        # ClassName.method() on a same-file class.
        if parts[0] in facts.classes and len(parts) == 2:
            callee = resolver.method_on(facts, parts[0], parts[1])
            if callee is not None:
                calls.append(CallSite(owner, callee, call.lineno))
            return
        # Unique-name fallback for attribute calls with project-style
        # (underscored) names: `service.swap_snapshot()` links when the
        # project defines exactly one `swap_snapshot`.
        terminal = parts[-1]
        if "_" in terminal.strip("_"):
            candidates = resolver.by_terminal.get(terminal, [])
            if len(candidates) == 1:
                calls.append(CallSite(owner, candidates[0], call.lineno))

    def walk_function(
        body: ast.FunctionDef | ast.AsyncFunctionDef, owner: str, class_name: str | None
    ) -> None:
        # Nested defs/lambdas are attributed to the enclosing function:
        # a closure's blocking call still runs on the caller's stack.
        for node in ast.walk(body):
            if isinstance(node, ast.Call):
                resolve(node, owner, class_name)

    for node in facts.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk_function(node, f"{facts.relpath}:{node.name}", None)
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk_function(
                        member, f"{facts.relpath}:{node.name}.{member.name}", node.name
                    )
    return calls, externals


def build_graphs(sources: Sequence[SourceFile]) -> ProjectGraphs:
    """Build (or fetch from the per-run cache) both project graphs.

    The cache key is the sorted tuple of (path, content-hash) pairs, so
    any edit to any file rebuilds, while repeated runs over identical
    sources — every project rule in one lint, then ``--graph`` — reuse
    one construction. Input order never matters: files are processed in
    sorted path order regardless of discovery order.
    """
    key = tuple(
        sorted(
            (source.relpath, hashlib.sha256(source.text.encode("utf-8")).hexdigest())
            for source in sources
        )
    )
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        return cached

    facts = _parse_files(sources)
    for sheet in facts:
        _collect_imports(sheet)
        _collect_definitions(sheet)
    resolver = _Resolver(facts)

    edges: list[ImportEdge] = []
    for sheet in facts:
        seen: set[tuple[str, int, bool]] = set()
        for dotted, line, deferred, module_form in sheet.imports:
            located = resolver.module_of(dotted)
            if located is None:
                continue
            target, remainder = located
            if remainder and (module_form or len(remainder) > 1):
                continue  # prefix match too shallow to be this import
            if target == sheet.relpath:
                continue
            marker = (target, line, deferred)
            if marker in seen:
                continue
            seen.add(marker)
            edges.append(ImportEdge(sheet.relpath, target, line, deferred))

    functions: list[FunctionNode] = []
    calls: list[CallSite] = []
    externals: list[ExternalCall] = []
    for sheet in facts:
        functions.extend(sheet.functions.values())
        file_calls, file_externals = _collect_calls(sheet, resolver)
        calls.extend(file_calls)
        externals.extend(file_externals)

    graphs = ProjectGraphs(
        modules=ModuleGraph([sheet.relpath for sheet in facts], edges),
        calls=CallGraph(functions, calls, externals),
    )
    _CACHE[key] = graphs
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)
    return graphs


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
#: JSON graph document schema version (see :func:`graphs_to_dict`).
GRAPH_VERSION = 1


def graphs_to_dict(graphs: ProjectGraphs) -> dict[str, object]:
    """Both graphs as one JSON-ready document (stable schema)::

        {
          "version": 1,
          "modules": [{"path", "subsystem",
                       "imports": [{"target", "line", "deferred"}, ...]},
                      ...],                      # sorted by path
          "functions": [{"id", "path", "qualname", "line", "async",
                         "calls": [{"callee", "line"}, ...]},
                        ...],                    # sorted by id
          "cycles": [["a.py", "b.py"], ...]      # load-time SCCs, sorted
        }

    Everything iterates sorted, so serializing with ``sort_keys`` yields
    byte-identical output for identical sources (the determinism pin in
    ``tests/analysis/test_graph.py``). External (non-project) calls are
    deliberately not serialized: the document describes the program's
    own structure, not its stdlib surface.
    """
    modules: list[dict[str, object]] = []
    for path in graphs.modules.modules:
        modules.append(
            {
                "path": path,
                "subsystem": subsystem_of(path),
                "imports": [
                    {
                        "target": edge.target,
                        "line": edge.line,
                        "deferred": edge.deferred,
                    }
                    for edge in graphs.modules.imports_of(path)
                ],
            }
        )
    functions: list[dict[str, object]] = []
    for node_id in sorted(graphs.calls.functions):
        node = graphs.calls.functions[node_id]
        functions.append(
            {
                "id": node.node_id,
                "path": node.path,
                "qualname": node.qualname,
                "line": node.line,
                "async": node.is_async,
                "calls": [
                    {"callee": site.callee, "line": site.line}
                    for site in graphs.calls.calls_of(node_id)
                ],
            }
        )
    return {
        "version": GRAPH_VERSION,
        "modules": modules,
        "functions": functions,
        "cycles": [list(cycle) for cycle in graphs.modules.load_time_cycles()],
    }


def render_graph_dot(graphs: ProjectGraphs) -> str:
    """The module import graph as Graphviz DOT, clustered by subsystem.

    Deferred imports render dashed — at a glance, solid edges are the
    load-time structure REP007's cycle check runs on.
    """
    lines = ["digraph imports {", "  rankdir=LR;", "  node [shape=box];"]
    by_subsystem: dict[str, list[str]] = {}
    for path in graphs.modules.modules:
        by_subsystem.setdefault(subsystem_of(path), []).append(path)
    for subsystem in sorted(by_subsystem):
        lines.append(f'  subgraph "cluster_{subsystem}" {{')
        lines.append(f'    label="{subsystem}";')
        for path in by_subsystem[subsystem]:
            lines.append(f'    "{path}";')
        lines.append("  }")
    seen: set[tuple[str, str, bool]] = set()
    for edge in graphs.modules.edges:
        marker = (edge.source, edge.target, edge.deferred)
        if marker in seen:
            continue
        seen.add(marker)
        style = " [style=dashed]" if edge.deferred else ""
        lines.append(f'  "{edge.source}" -> "{edge.target}"{style};')
    lines.append("}")
    return "\n".join(lines)


def iter_async_roots(
    graphs: ProjectGraphs, prefix: str = "serving/"
) -> Iterator[FunctionNode]:
    """The ``async def`` nodes under ``prefix``, sorted — REP008's roots."""
    for node_id in sorted(graphs.calls.functions):
        node = graphs.calls.functions[node_id]
        if node.is_async and node.path.startswith(prefix):
            yield node
