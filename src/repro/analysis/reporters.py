"""Render a :class:`~repro.analysis.engine.LintResult` as text or JSON.

The text reporter is for humans at a terminal; the JSON reporter is the
machine surface (CI uploads it as an artifact) with a stable schema::

    {
      "version": 1,
      "clean": false,
      "files_checked": 42,
      "rules_run": ["REP001", ...],
      "findings": [{"rule", "path", "line", "col", "message"}, ...],
      "suppressed": [...same shape...],
      "baselined": [...same shape...],
      "stale_baseline": {"<fingerprint>": {"rule", "path"}, ...},
      "counts": {"active": 3, "suppressed": 5, "baselined": 0, "stale": 0}
    }

Schema changes bump ``version``; ``tests/analysis/test_reporters.py``
pins the shape.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult

#: JSON report schema version.
REPORT_VERSION = 1


def render_json(result: LintResult) -> str:
    """The machine-readable report (one JSON document)."""
    payload = {
        "version": REPORT_VERSION,
        "clean": result.clean,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "findings": [finding.to_dict() for finding in result.active],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "stale_baseline": result.stale_baseline,
        "counts": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale": len(result.stale_baseline),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_text(result: LintResult) -> str:
    """The human-readable report."""
    lines: list[str] = []
    for finding in result.active:
        lines.append(finding.render())
    if result.stale_baseline:
        if lines:
            lines.append("")
        lines.append("stale baseline entries (finding fixed; remove with --write-baseline):")
        for fingerprint, context in sorted(result.stale_baseline.items()):
            lines.append(
                f"  {fingerprint}  {context.get('rule', '?')} in "
                f"{context.get('path', '?')}"
            )
    summary = (
        f"{result.files_checked} files, "
        f"{len(result.rules_run)} rules: "
        f"{len(result.active)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr"
        f"{'y' if len(result.stale_baseline) == 1 else 'ies'}"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)
