"""Project-invariant static analysis (``repro lint``).

The reproduction keeps three load-bearing invariants that runtime tests
alone enforce too late: bit-identical reference-vs-compiled/vectorized
paths, deterministic sharded replay, and a non-blocking asyncio serving
layer with finalize-guarded resources. This package encodes them as
AST-based lint rules so a violation is rejected at diff time, before it
ships as a flaky benchmark or a prod incident:

========  ============================================================
REP001    nondeterminism in ``runtime/``/``training/``/``mining/``
          (unseeded module-level RNG, iteration over unordered sets,
          unsorted directory listings)
REP002    blocking calls inside ``async def`` in ``serving/``
REP003    a synchronous lock held across ``await``
REP004    executor/mmap creation without a close/context-manager/
          ``weakref.finalize`` guard
REP005    parity coverage — public symbols of the compiled/vectorized
          fast paths must name a reference twin and be exercised by a
          test under ``tests/``
REP006    bare/overbroad ``except`` that can swallow ``ShardError`` /
          ``ServingError``
========  ============================================================

Findings can be suppressed per line with a justified comment::

    risky_call()  # repro: noqa[REP004] -- mapping outlives its views

(the justification after ``--`` is mandatory; a bare suppression is
itself reported as **REP000**), or grandfathered in a committed baseline
file (see :mod:`repro.analysis.baseline`). The engine is exposed on the
command line as ``repro lint`` with stable exit codes: 0 clean, 1
findings, 2 usage error.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintResult, ProjectContext, SourceFile, run_lint
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, rule_ids

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ProjectContext",
    "Rule",
    "SourceFile",
    "all_rules",
    "rule_ids",
    "run_lint",
]
