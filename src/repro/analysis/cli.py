"""The ``repro lint`` command.

Thin argparse-to-engine glue with stable exit codes — the CI contract:

- **0** — clean (no active findings, no stale baseline entries), and
  always after a successful ``--write-baseline``;
- **1** — active findings (or stale baseline entries: the baseline only
  ratchets down, so a fixed finding must be removed from it);
- **2** — usage error (unknown rule id, bad path, unreadable baseline),
  via :class:`~repro.errors.AnalysisError` and the top-level handler in
  :mod:`repro.cli`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.engine import discover_project, find_project_root, run_lint
from repro.analysis.graph import build_graphs, graphs_to_dict, render_graph_dot
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_text


def _parse_rule_filter(values: list[str] | None) -> set[str] | None:
    """``--rule REP001 --rule REP002,REP007`` -> {REP001, REP002, REP007}."""
    if not values:
        return None
    return {
        rule_id.strip()
        for value in values
        for rule_id in value.split(",")
        if rule_id.strip()
    } or None

#: Baseline location relative to the project root.
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> None:
    """Register ``repro lint`` on the main CLI's subparser table."""
    p = sub.add_parser(
        "lint",
        help="check project invariants (determinism, async hygiene, "
        "resource guards, parity coverage)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories inside src/repro to lint "
        "(default: the whole package)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    p.add_argument(
        "--rule",
        action="append",
        metavar="REPxxx[,REPyyy...]",
        help="run only these rules (repeatable and/or comma-separated)",
    )
    p.add_argument(
        "--graph",
        choices=("dot", "json"),
        default=None,
        help="emit the whole-program import/call graph in this format "
        "instead of linting",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default <project>/{DEFAULT_BASELINE})",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current unsuppressed finding into the "
        "baseline and exit 0",
    )
    p.add_argument(
        "--output",
        metavar="FILE",
        help="also write the report to FILE (CI artifact)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    p.add_argument(
        "--root",
        metavar="DIR",
        help="project root (default: nearest pyproject.toml above cwd)",
    )
    p.set_defaults(handler=cmd_lint)


def cmd_lint(args: argparse.Namespace) -> int:
    """Handler behind ``repro lint`` (exit codes in the module docstring)."""
    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule.rule_id}  [{scope}]  {rule.summary}")
        return 0

    project_root = (
        Path(args.root).resolve() if args.root else find_project_root()
    )
    baseline_path = (
        Path(args.baseline) if args.baseline else project_root / DEFAULT_BASELINE
    )
    baseline = Baseline.load(baseline_path)
    rule_filter = _parse_rule_filter(args.rule)
    sources, test_sources, src_corpus = discover_project(
        project_root, list(args.paths)
    )

    if args.graph:
        graphs = build_graphs(src_corpus)
        if args.graph == "json":
            report = json.dumps(graphs_to_dict(graphs), indent=2, sort_keys=True)
        else:
            report = render_graph_dot(graphs)
        print(report)
        if args.output:
            Path(args.output).write_text(report + "\n", encoding="utf-8")
            print(f"graph written to {args.output}", file=sys.stderr)
        return 0
    result = run_lint(
        sources,
        test_sources=test_sources,
        baseline=baseline,
        rule_filter=rule_filter,
        src_corpus=src_corpus,
    )

    if args.write_baseline:
        updated = Baseline()
        for fingerprint, context in result.live_fingerprints.items():
            updated.add(fingerprint, context["rule"], context["path"])
        updated.save(baseline_path)
        print(
            f"wrote {baseline_path}: {len(updated)} grandfathered finding(s) "
            f"({len(result.stale_baseline)} stale entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} dropped)"
        )
        return 0

    report = (
        render_json(result) if args.format == "json" else render_text(result)
    )
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"report written to {args.output}", file=sys.stderr)
    return 0 if result.clean else 1
