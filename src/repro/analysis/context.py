"""What a rule sees: one parsed file, or the whole project.

Rules never touch the filesystem. The engine parses every source file
once into a :class:`FileContext` (source text, split lines, AST) and
hands per-file rules one context at a time; cross-file rules (REP005)
receive the whole :class:`ProjectContext`, which also carries the test
corpus so coverage checks don't re-read the tree per rule.

Paths are always POSIX-style and relative to the ``repro`` package root
(``runtime/pool.py``, not ``/abs/src/repro/runtime/pool.py``) so rule
scopes, baselines, and reports are machine-independent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppression, parse_suppressions

if TYPE_CHECKING:  # deferred at runtime; see ProjectContext.graphs
    from repro.analysis.graph import ProjectGraphs


@dataclass(frozen=True)
class SourceFile:
    """One source file as (package-relative path, text) — the engine's
    input unit, trivially fakeable in tests."""

    relpath: str
    text: str


class FileContext:
    """A parsed source file plus its per-line suppressions."""

    def __init__(self, source: SourceFile) -> None:
        self.relpath = source.relpath
        self.text = source.text
        self.lines = source.text.splitlines()
        self.tree = ast.parse(source.text, filename=source.relpath)
        self.suppressions: dict[int, Suppression]
        self.suppression_findings: list[Finding]
        self.suppressions, self.suppression_findings = parse_suppressions(
            source.relpath, source.text
        )

    def line_text(self, line: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    @cached_property
    def imports(self) -> dict[str, str]:
        """Local name → dotted module/symbol path, from this file's imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        sleep`` maps ``sleep -> time.sleep``. Rules use this to resolve
        call targets without guessing at aliases.
        """
        table: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return table

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted name of a call target, through the import table.

        ``sleep(1)`` after ``from time import sleep`` resolves to
        ``time.sleep``; ``np.random.shuffle`` to ``numpy.random.shuffle``.
        Returns ``None`` for calls on arbitrary expressions.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        parts[0] = self.imports.get(parts[0], parts[0])
        return ".".join(parts)


@dataclass
class ProjectContext:
    """Everything the engine linted in one run.

    ``files`` are the lintable package sources; ``test_corpus`` is the
    concatenable text of files under ``tests/`` (paths + text), used by
    coverage rules; ``src_corpus`` maps every package file to its text
    (a superset of ``files`` when ``--rule``/path filters narrowed the
    run) so cross-file twin lookups see the whole tree.
    """

    files: list[FileContext]
    test_corpus: list[SourceFile] = field(default_factory=list)
    src_corpus: list[SourceFile] = field(default_factory=list)

    def test_text(self) -> str:
        """All test sources as one searchable blob."""
        return "\n".join(source.text for source in self.test_corpus)

    def src_text_excluding(self, relpath: str) -> str:
        """All package sources except ``relpath``, as one blob."""
        corpus = self.src_corpus or [
            SourceFile(ctx.relpath, ctx.text) for ctx in self.files
        ]
        return "\n".join(
            source.text for source in corpus if source.relpath != relpath
        )

    @property
    def graphs(self) -> "ProjectGraphs":
        """The whole-program import/call graphs over ``src_corpus``
        (falling back to ``files`` for in-memory fixture projects).

        Construction is content-hash cached in
        :func:`repro.analysis.graph.build_graphs`, so the four graph
        rules in one run share a single build.
        """
        # Deferred to break the load-time cycle (graph imports
        # SourceFile from this module); REP007 sanctions exactly this.
        from repro.analysis.graph import build_graphs

        corpus = self.src_corpus or [
            SourceFile(ctx.relpath, ctx.text) for ctx in self.files
        ]
        return build_graphs(corpus)
