"""Small AST utilities shared by the rule implementations."""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: Nodes that open a new scope; same-scope walks stop at these.
SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Yield descendants of ``node`` without entering nested scopes.

    ``node`` itself is not yielded; a nested function/class/lambda is
    yielded but not descended into — its body belongs to another scope.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child → parent for every node under ``tree``."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def async_functions(tree: ast.AST) -> Iterator[ast.AsyncFunctionDef]:
    """Every ``async def`` in the file, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def terminal_name(node: ast.expr) -> str | None:
    """The final identifier of a name/attribute chain (``self._lock`` →
    ``_lock``), or ``None`` for other expressions."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
