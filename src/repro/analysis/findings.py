"""The unit of lint output: one :class:`Finding` per rule violation.

A finding pins a rule id to a source location plus a human-readable
message. Its :meth:`Finding.fingerprint` identifies the violation across
unrelated edits — it hashes the rule, the file, and the *text* of the
offending line rather than the line number, so inserting code above a
grandfathered finding does not invalidate a baseline entry, while
editing the offending line itself does (the finding then resurfaces for
a fresh look).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sort order (path, line, col, rule) is the order reporters print in.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)

    def fingerprint(self, line_text: str) -> str:
        """Stable identity of this violation for baseline matching.

        ``line_text`` is the source line the finding points at; hashing
        its stripped text instead of the line number keeps baseline
        entries valid across edits elsewhere in the file.
        """
        payload = "\x1f".join((self.rule, self.path, line_text.strip()))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, object]:
        """JSON-reporter shape (one object per finding)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The text-reporter line: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
