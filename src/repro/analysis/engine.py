"""The lint engine: parse once, dispatch rules, filter, report.

:func:`run_lint` is the whole pipeline in one call — parse sources into
a :class:`~repro.analysis.context.ProjectContext`, run every registered
rule (optionally filtered to a subset of ids), then apply per-line
``noqa`` suppressions and the committed baseline. The result separates
*active* findings (what fails the build) from *suppressed* and
*baselined* ones (reported for transparency, exit-code-neutral), plus
*stale* baseline entries (fixed findings whose grandfather entry should
be deleted).

File discovery (:func:`discover_project`) is itself bound by REP001's
discipline: directory walks are sorted, so reports and baselines are
byte-stable across filesystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext, ProjectContext, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules
from repro.errors import AnalysisError

#: Rules that run on benchmark scripts. Benchmarks are measurement
#: harnesses, not package code: determinism (REP001), exception
#: discipline (REP006), and layering (REP007) apply; async hygiene,
#: parity, and dead-API rules are package-surface concerns and would
#: only generate noise there. REP000 (malformed noqa) always applies.
BENCHMARK_RULES = frozenset({"REP000", "REP001", "REP006", "REP007"})


def _benchmark_scoped(finding: Finding) -> bool:
    """Drop findings on ``benchmarks/`` files from out-of-scope rules."""
    return finding.path.startswith("benchmarks/") and (
        finding.rule not in BENCHMARK_RULES
    )


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``active`` findings gate the exit code; the other buckets exist so
    reporters can show *why* the run is clean, not just that it is.
    """

    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: dict[str, dict[str, str]] = field(default_factory=dict)
    #: fingerprint → {rule, path} of every unsuppressed live finding;
    #: exactly what ``--write-baseline`` persists.
    live_fingerprints: dict[str, dict[str, str]] = field(default_factory=dict)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing gates the exit code (stale entries do:
        a shrinking baseline must actually be shrunk)."""
        return not self.active and not self.stale_baseline


def lint_project(
    project: ProjectContext,
    baseline: Baseline | None = None,
    rule_filter: set[str] | None = None,
) -> LintResult:
    """Run the registered rules over a prepared project context."""
    rules = _selected_rules(rule_filter)
    result = LintResult(
        files_checked=len(project.files),
        rules_run=[rule.rule_id for rule in rules],
    )
    raw: list[Finding] = []
    for ctx in project.files:
        # REP000 (malformed suppressions) is engine-level, not a rule,
        # and cannot itself be suppressed or filtered away.
        raw.extend(ctx.suppression_findings)
    for rule in rules:
        if rule.project_check is not None:
            raw.extend(
                finding
                for finding in rule.project_check(project)
                if not _benchmark_scoped(finding)
            )
        if rule.file_check is not None:
            for ctx in project.files:
                if ctx.relpath.startswith("benchmarks/") and (
                    rule.rule_id not in BENCHMARK_RULES
                ):
                    continue
                if rule.applies_to(ctx.relpath):
                    raw.extend(rule.file_check(ctx))

    contexts = {ctx.relpath: ctx for ctx in project.files}
    baseline = baseline or Baseline()
    matched: set[str] = set()
    for finding in sorted(raw):
        ctx = contexts.get(finding.path)
        suppression = ctx.suppressions.get(finding.line) if ctx else None
        if (
            suppression is not None
            and finding.rule != "REP000"
            and suppression.covers(finding.rule)
        ):
            result.suppressed.append(finding)
            continue
        line_text = ctx.line_text(finding.line) if ctx else ""
        fingerprint = finding.fingerprint(line_text)
        result.live_fingerprints[fingerprint] = {
            "rule": finding.rule,
            "path": finding.path,
        }
        if fingerprint in baseline:
            matched.add(fingerprint)
            result.baselined.append(finding)
            continue
        result.active.append(finding)
    result.stale_baseline = baseline.stale(matched)
    return result


def run_lint(
    sources: list[SourceFile],
    test_sources: list[SourceFile] | None = None,
    baseline: Baseline | None = None,
    rule_filter: set[str] | None = None,
    src_corpus: list[SourceFile] | None = None,
) -> LintResult:
    """Lint in-memory sources (the tests' entry point; the CLI builds
    the same inputs from disk via :func:`discover_project`)."""
    files = []
    for source in sources:
        try:
            files.append(FileContext(source))
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {source.relpath}: {exc}") from exc
    project = ProjectContext(
        files=files,
        test_corpus=list(test_sources or []),
        src_corpus=list(src_corpus or []),
    )
    return lint_project(project, baseline=baseline, rule_filter=rule_filter)


def _selected_rules(rule_filter: set[str] | None) -> list[Rule]:
    rules = all_rules()
    if rule_filter is None:
        return rules
    known = {rule.rule_id for rule in rules}
    unknown = sorted(rule_filter - known)
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [rule for rule in rules if rule.rule_id in rule_filter]


# ----------------------------------------------------------------------
# filesystem discovery
# ----------------------------------------------------------------------
def find_project_root(start: Path | None = None) -> Path:
    """Walk up from ``start`` (default: cwd) to the ``pyproject.toml``."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    raise AnalysisError(
        f"no pyproject.toml at or above {current}; pass explicit paths"
    )


def _read_tree(root: Path, base: Path) -> list[SourceFile]:
    """Read every ``*.py`` under ``root`` (sorted: REP001 discipline),
    with paths relative to ``base``."""
    return [
        SourceFile(path.relative_to(base).as_posix(), path.read_text(encoding="utf-8"))
        for path in sorted(root.rglob("*.py"))
    ]


def discover_project(
    project_root: Path, paths: list[str] | None = None
) -> tuple[list[SourceFile], list[SourceFile], list[SourceFile]]:
    """Load (lint targets, test corpus, full src corpus) from disk.

    With no ``paths``, the lint target is the whole ``src/repro``
    package plus ``benchmarks/`` (linted under a ``benchmarks/`` path
    prefix with the scope-limited :data:`BENCHMARK_RULES` set). Explicit
    ``paths`` (files or directories, given relative to the project root
    or absolute) narrow the target; the twin/test corpora always cover
    the full tree so cross-file rules keep their context.
    """
    package_root = project_root / "src" / "repro"
    if not package_root.is_dir():
        raise AnalysisError(f"no src/repro package under {project_root}")
    src_corpus = _read_tree(package_root, package_root)
    bench_root = project_root / "benchmarks"
    if bench_root.is_dir():
        # Prefixed so rule scopes, reports, and the import graph can
        # tell measurement harnesses from package code.
        src_corpus.extend(
            SourceFile(f"benchmarks/{source.relpath}", source.text)
            for source in _read_tree(bench_root, bench_root)
        )
    tests_root = project_root / "tests"
    test_corpus = _read_tree(tests_root, tests_root) if tests_root.is_dir() else []

    if not paths:
        return src_corpus, test_corpus, src_corpus

    roots = (package_root.resolve(), project_root.resolve())
    selected: dict[str, SourceFile] = {}
    by_relpath = {source.relpath: source for source in src_corpus}
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = project_root / path
            if not path.exists() and (package_root / raw).exists():
                # `repro lint serving` means src/repro/serving.
                path = package_root / raw
        path = path.resolve()
        if path.is_dir():
            chosen = [
                source
                for source in src_corpus
                if _on_disk(source.relpath, roots).is_relative_to(path)
            ]
            if not chosen:
                raise AnalysisError(f"no lintable files under {raw}")
            for source in chosen:
                selected[source.relpath] = source
        elif path.is_file():
            relpath = _relpath_of(path, roots)
            if relpath is None:
                raise AnalysisError(
                    f"{raw} is outside the src/repro package and benchmarks/"
                )
            selected[relpath] = by_relpath.get(
                relpath, SourceFile(relpath, path.read_text(encoding="utf-8"))
            )
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return list(selected.values()), test_corpus, src_corpus


def _on_disk(relpath: str, roots: tuple[Path, Path]) -> Path:
    """Map a lint relpath back to its on-disk location (benchmark
    sources live under the project root, package sources under
    ``src/repro``)."""
    package_root, project_root = roots
    base = project_root if relpath.startswith("benchmarks/") else package_root
    return (base / relpath).resolve()


def _relpath_of(path: Path, roots: tuple[Path, Path]) -> str | None:
    """Inverse of :func:`_on_disk` for explicit file arguments."""
    package_root, project_root = roots
    try:
        return path.relative_to(package_root).as_posix()
    except ValueError:
        pass
    try:
        relpath = path.relative_to(project_root).as_posix()
    except ValueError:
        return None
    return relpath if relpath.startswith("benchmarks/") else None
