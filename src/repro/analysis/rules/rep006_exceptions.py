"""REP006 — bare/overbroad ``except`` that can swallow failure signals.

:class:`~repro.errors.ShardError` and
:class:`~repro.errors.ServingError` are load-bearing: the pools,
parallel miner, and serving layer all promise that a worker failure
*surfaces deterministically* rather than producing silently partial
output. A ``except:`` or ``except Exception:`` between the raise site
and the caller eats that promise.

Flagged: bare ``except``; ``except Exception``/``except BaseException``
(alone or in a tuple) whose handler body contains no ``raise``. Handlers
that re-raise (``raise ShardError(...) from exc``) are the sanctioned
translation pattern and pass. Intentional terminal handlers — per-item
error attribution at a fan-out boundary — document themselves with a
justified ``# repro: noqa[REP006]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.asthelpers import walk_same_scope
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import file_rule

_BROAD = {"Exception", "BaseException"}


def _broad_names(ctx: FileContext, handler: ast.ExceptHandler) -> list[str]:
    """The overbroad type names this handler catches (empty = specific)."""
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        resolved = ctx.resolve_call(expr) or ""
        terminal = resolved.rsplit(".", maxsplit=1)[-1]
        if terminal in _BROAD:
            names.append(terminal)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for stmt in handler.body
        for node in [stmt, *walk_same_scope(stmt)]
    )


@file_rule(
    "REP006",
    "bare/overbroad except can swallow ShardError/ServingError",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    """Flag bare excepts and broad handlers that never re-raise."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Finding(
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                "REP006",
                "bare `except:` swallows everything including "
                "ShardError/ServingError (and KeyboardInterrupt); catch the "
                "specific exception",
            )
            continue
        broad = _broad_names(ctx, node)
        if broad and not _reraises(node):
            yield Finding(
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                "REP006",
                f"`except {broad[0]}` without a re-raise can swallow "
                "ShardError/ServingError; catch the specific type, re-raise, "
                "or justify with noqa[REP006]",
            )
