"""REP002 — blocking calls inside ``async def`` in the serving layer.

The serving tier's entire throughput story (PR 4) rests on the event
loop never blocking: micro-batches run on an executor thread precisely
so the loop keeps admitting requests. One ``time.sleep`` or synchronous
``subprocess``/file/socket call in a coroutine stalls *every* in-flight
request for its duration — invisible in unit tests, catastrophic under
load. Use ``asyncio.sleep``, ``loop.run_in_executor``, or the asyncio
stream/subprocess APIs instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.asthelpers import async_functions, walk_same_scope
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import file_rule

_EXACT = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "open",
    "input",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "urllib.request.urlopen",
}

_PREFIXES = ("subprocess.", "requests.", "shutil.", "http.client.")


def _is_blocking(resolved: str) -> bool:
    return resolved in _EXACT or resolved.startswith(_PREFIXES)


@file_rule(
    "REP002",
    "blocking call inside async def stalls the serving event loop",
    scope=("serving/",),
)
def check(ctx: FileContext) -> Iterator[Finding]:
    """Flag blocking calls inside ``async def`` coroutines."""
    for coroutine in async_functions(ctx.tree):
        for node in walk_same_scope(coroutine):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved is None or not _is_blocking(resolved):
                continue
            yield Finding(
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                "REP002",
                f"blocking call `{resolved}` inside `async def "
                f"{coroutine.name}` stalls every in-flight request; use the "
                "asyncio equivalent or run_in_executor",
            )
