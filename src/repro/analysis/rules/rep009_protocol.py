"""REP009 — wire-protocol conformance between router and replicas.

The fleet speaks length-prefixed JSON frames whose ``op`` field selects
the replica-side handler (detect/health/stats/cache_keys/reload). The
two halves of the protocol live in different files, so nothing file-
local stops them drifting: an op ``ReplicaServer`` dispatches that no
client ever sends is dead protocol surface, and an op a client sends
that the server never dispatches is a latent runtime error that only
fires under the right traffic. Both directions are cross-checked here:

- **server ops** — string constants compared against a name ending in
  ``op`` (``if op == "detect":``) inside ``serving/replica.py``;
- **client ops** — ``{"op": "..."}`` dict literals anywhere else under
  ``serving/`` (the router and client helpers build frames that way).

Additionally, every ``/stats`` key asserted by the test suite
(``stats["hedges_fired"]``-style subscripts on stats-ish names) must
appear as a string constant somewhere in the package — a key the tests
pin but nothing produces means the assertion passes only against stale
fixtures or dead code.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import ProjectContext, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.registry import project_rule

#: The replica server module (protocol owner); the rule only runs when
#: a linted file matches, so fixture projects without a fleet skip it.
SERVER_FILE = "serving/replica.py"


def _parse(source: SourceFile) -> ast.Module | None:
    try:
        return ast.parse(source.text, filename=source.relpath)
    except SyntaxError:
        return None


def _server_ops(tree: ast.Module) -> dict[str, int]:
    """op literal -> first dispatch line, from ``op == "..."`` compares."""
    ops: dict[str, int] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        left, right = node.left, node.comparators[0]
        name = left.id if isinstance(left, ast.Name) else (
            left.attr if isinstance(left, ast.Attribute) else None
        )
        if name is None or not name.lower().endswith("op"):
            continue
        if isinstance(right, ast.Constant) and isinstance(right.value, str):
            ops.setdefault(right.value, node.lineno)
    return ops


def _client_ops(tree: ast.Module) -> dict[str, int]:
    """op literal -> first send line, from ``{"op": "..."}`` literals."""
    ops: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "op"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                ops.setdefault(value.value, node.lineno)
    return ops


def _asserted_stats_keys(test_corpus: list[SourceFile]) -> dict[str, tuple[str, int]]:
    """stats key -> (test relpath, line) for every ``stats[...]``-style
    subscript with a string key in the test suite."""
    keys: dict[str, tuple[str, int]] = {}
    for source in sorted(test_corpus, key=lambda item: item.relpath):
        tree = _parse(source)
        if tree is None:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Subscript):
                continue
            index = node.slice
            if not (
                isinstance(index, ast.Constant) and isinstance(index.value, str)
            ):
                continue
            base = node.value
            while isinstance(base, ast.Subscript):
                base = base.value
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if name is None or "stats" not in name.lower():
                continue
            keys.setdefault(index.value, (f"tests/{source.relpath}", node.lineno))
    return keys


def _produced_strings(src_corpus: list[SourceFile]) -> set[str]:
    """Every string constant and keyword-argument name in the package —
    the universe of keys the source can put into a stats payload."""
    produced: set[str] = set()
    for source in src_corpus:
        tree = _parse(source)
        if tree is None:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                produced.add(node.value)
            elif isinstance(node, ast.keyword) and node.arg is not None:
                produced.add(node.arg)
    return produced


@project_rule(
    "REP009",
    "replica wire-protocol op or tested /stats key has no counterpart",
)
def check(project: ProjectContext) -> Iterator[Finding]:
    """Cross-check replica ops and test-asserted stats keys."""
    linted = {ctx.relpath: ctx for ctx in project.files}
    server_ctx = linted.get(SERVER_FILE)
    if server_ctx is None:
        return  # no protocol owner in this run (fixtures, narrowed runs)

    corpus = project.src_corpus or [
        SourceFile(ctx.relpath, ctx.text) for ctx in project.files
    ]
    server_ops = _server_ops(server_ctx.tree)
    client_ops: dict[str, tuple[str, int]] = {}
    for source in sorted(corpus, key=lambda item: item.relpath):
        if source.relpath == SERVER_FILE or not source.relpath.startswith("serving/"):
            continue
        tree = _parse(source)
        if tree is None:
            continue
        for op, line in _client_ops(tree).items():
            client_ops.setdefault(op, (source.relpath, line))

    for op in sorted(set(server_ops) - set(client_ops)):
        yield Finding(
            SERVER_FILE,
            server_ops[op],
            1,
            "REP009",
            f"replica op `{op}` is dispatched by ReplicaServer but no "
            "serving-side client ever sends it; remove the dead handler or "
            "add the client call site",
        )
    for op in sorted(set(client_ops) - set(server_ops)):
        path, line = client_ops[op]
        if path not in linted:
            continue  # narrowed run: only report on files being linted
        yield Finding(
            path,
            line,
            1,
            "REP009",
            f"serving client sends replica op `{op}` but ReplicaServer "
            "never dispatches it; the frame would fall through to the "
            "error path on every send",
        )

    produced = _produced_strings(corpus)
    for key, (path, line) in sorted(_asserted_stats_keys(project.test_corpus).items()):
        if key not in produced:
            yield Finding(
                path,
                line,
                1,
                "REP009",
                f"test asserts /stats key `{key}` but no string constant in "
                "src/repro produces it; the assertion can only pass against "
                "stale fixtures",
            )
