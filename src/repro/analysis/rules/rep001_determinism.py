"""REP001 — nondeterminism in the deterministic subsystems.

``runtime/``, ``training/``, and ``mining/`` promise bit-identical
output for any worker count (PR 1-3's parity suites). Three constructs
quietly break that promise:

- **unseeded module-level RNG** (``random.shuffle``, ``numpy.random.*``)
  — per-process streams diverge between workers and runs. Seeded
  generator construction (``random.Random(seed)``,
  ``numpy.random.default_rng(seed)``, :func:`repro.utils.randx.rng_from_seed`)
  is the sanctioned form and is not flagged.
- **iterating an unordered set** in a ``for``/comprehension — order is
  salted per process (``PYTHONHASHSEED``), so anything ordered or
  float-accumulated downstream differs run to run. Membership tests and
  ``sorted(set(...))`` are fine.
- **unsorted directory listings** (``os.listdir``, ``glob``,
  ``Path.glob``) — filesystem order is platform-dependent; wrap in
  ``sorted(...)``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.asthelpers import parent_map
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import file_rule

#: Seeded-generator constructors exempt from the module-RNG ban.
_SEEDED_RNG = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
}

_LISTING_OS = {"os.listdir", "os.scandir"}
_LISTING_ATTRS = {"glob", "iglob", "rglob"}

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}


def _is_module_rng(resolved: str) -> bool:
    if resolved in _SEEDED_RNG:
        return False
    return resolved.startswith("random.") or resolved.startswith("numpy.random.")


def _is_unsorted_listing(resolved: str | None, call: ast.Call) -> bool:
    if resolved in _LISTING_OS:
        return True
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in _LISTING_ATTRS


def _is_set_expr(ctx: FileContext, node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node.func)
        if resolved in ("set", "frozenset"):
            return True
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


@file_rule(
    "REP001",
    "nondeterminism (unseeded RNG, set iteration, unsorted listings) in "
    "the bit-identical subsystems",
    scope=("runtime/", "training/", "mining/", "benchmarks/"),
)
def check(ctx: FileContext) -> Iterator[Finding]:
    """Flag unseeded RNG, set iteration, and unsorted listings."""
    parents = parent_map(ctx.tree)

    def finding(node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(ctx.relpath, line, col, "REP001", message)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve_call(node.func)
            if resolved is not None and _is_module_rng(resolved):
                yield finding(
                    node,
                    f"unseeded module-level RNG `{resolved}` breaks replay "
                    "determinism; derive a seeded generator via "
                    "repro.utils.randx.rng_from_seed",
                )
            elif _is_unsorted_listing(resolved, node):
                parent = parents.get(node)
                wrapped = (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id == "sorted"
                )
                if not wrapped:
                    shown = resolved or f"*.{getattr(node.func, 'attr', '?')}"
                    yield finding(
                        node,
                        f"directory listing `{shown}` is filesystem-ordered; "
                        "wrap it in sorted(...)",
                    )
        iterables: list[ast.expr] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if _is_set_expr(ctx, iterable):
                yield finding(
                    iterable,
                    "iterating an unordered set feeds hash-salted order into "
                    "downstream accumulation; iterate sorted(...) or keep a "
                    "list alongside the set",
                )
