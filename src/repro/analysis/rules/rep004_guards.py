"""REP004 — executor/mmap creation without a release guard.

PR 2-4 each shipped a leak of this shape before growing a guard: a
``ProcessPoolExecutor``/``ThreadPoolExecutor`` or ``mmap`` created, used
and abandoned keeps worker processes, threads, or file mappings alive
until interpreter exit. Every creation site must be visibly paired with
a release in its enclosing scope — one of:

- the creation is a ``with`` context manager,
- the enclosing scope calls ``.shutdown()``/``.close()``/``.terminate()``
  (typically in ``try/finally`` or a ``close()`` method), or
- the enclosing scope registers a ``weakref.finalize`` guard (the PR 3
  pattern for objects whose lifetime is the GC's business).

For ``self.<attr>`` assignments the enclosing *class* is the scope (the
release conventionally lives in ``close()``); otherwise the enclosing
function, else the module. The check is deliberately syntactic — it
proves a release path is *written*, the lifecycle tests prove it runs.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.asthelpers import parent_map
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import file_rule

_GUARDED_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "mmap.mmap",
}

_RELEASE_ATTRS = {"shutdown", "close", "terminate"}


def _is_with_context(
    node: ast.Call, parents: dict[ast.AST, ast.AST]
) -> bool:
    parent = parents.get(node)
    return isinstance(parent, ast.withitem) and parent.context_expr is node


def _assigns_to_self(
    node: ast.Call, parents: dict[ast.AST, ast.AST]
) -> bool:
    parent = parents.get(node)
    if not isinstance(parent, (ast.Assign, ast.AnnAssign)):
        return False
    targets = parent.targets if isinstance(parent, ast.Assign) else [parent.target]
    return any(
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        for target in targets
    )


def _guard_scope(
    node: ast.Call, parents: dict[ast.AST, ast.AST], tree: ast.AST, to_class: bool
) -> ast.AST:
    """Innermost enclosing function (or class, for self-attributes)."""
    current = parents.get(node)
    while current is not None:
        if to_class and isinstance(current, ast.ClassDef):
            return current
        if not to_class and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return current
        current = parents.get(current)
    return tree


def _has_release(ctx: FileContext, scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _RELEASE_ATTRS:
            return True
        if ctx.resolve_call(func) == "weakref.finalize":
            return True
    return False


@file_rule(
    "REP004",
    "executor/mmap created without close()/context-manager/finalize guard",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    """Flag executor/mmap creations with no release in scope."""
    parents = parent_map(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node.func)
        if resolved not in _GUARDED_CONSTRUCTORS:
            continue
        if _is_with_context(node, parents):
            continue
        scope = _guard_scope(node, parents, ctx.tree, _assigns_to_self(node, parents))
        if _has_release(ctx, scope):
            continue
        short = resolved.rsplit(".", maxsplit=1)[-1]
        yield Finding(
            ctx.relpath,
            node.lineno,
            node.col_offset + 1,
            "REP004",
            f"`{short}` created without a paired release in its enclosing "
            "scope; use a `with` block, call shutdown()/close() in "
            "try/finally or close(), or register weakref.finalize",
        )
