"""REP005 — parity coverage of the compiled/vectorized fast paths.

The fast paths earn their keep only while they stay bit-identical to
the reference implementations, and that equivalence is only real while
tests assert it. Every *public* symbol of ``training/vectorized.py``,
``runtime/compiled.py``, ``runtime/vectorized.py``,
``serving/router.py``, and ``serving/metrics.py`` must therefore

1. **name a reference twin** — an affix-stripped counterpart elsewhere
   in the package (``derive_pattern_table_vectorized`` →
   ``derive_pattern_table``), a base class defined outside the file
   (``CompiledSegmenter(Segmenter)``), or an explicit
   ``:func:`/:class:`/:meth:`` cross-reference in its docstring; and
2. **be named by a test** under ``tests/`` — textual mention is the
   bar: a fast-path symbol no test even names has no parity pin.

This is a cross-file (project) rule: it reads the whole source tree and
the test corpus, not one file at a time.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.context import FileContext, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.registry import project_rule

#: Files whose public surface must stay pinned to the reference.
TARGETS = (
    "training/vectorized.py",
    "runtime/compiled.py",
    "runtime/vectorized.py",
    "serving/router.py",
    "serving/metrics.py",
)

_FUNC_SUFFIXES = ("_vectorized", "_compiled", "_fast")
_CLASS_PREFIXES = ("Compiled", "Vectorized")
_DOC_XREF = re.compile(r":(?:func|class|meth):`[^`]+`")


def _word_in(name: str, corpus: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", corpus) is not None


def _twin_candidates(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef) -> list[str]:
    name = node.name
    candidates = []
    if isinstance(node, ast.ClassDef):
        for prefix in _CLASS_PREFIXES:
            if name.startswith(prefix) and len(name) > len(prefix):
                candidates.append(name[len(prefix):])
    else:
        for suffix in _FUNC_SUFFIXES:
            if name.endswith(suffix) and len(name) > len(suffix):
                candidates.append(name[: -len(suffix)])
    return candidates


def _has_twin(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef,
    rest_of_src: str,
) -> bool:
    docstring = ast.get_docstring(node) or ""
    if _DOC_XREF.search(docstring):
        return True
    for candidate in _twin_candidates(node):
        if _word_in(candidate, rest_of_src):
            return True
    if isinstance(node, ast.ClassDef):
        for base in node.bases:
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if base_name and _word_in(base_name, rest_of_src):
                return True
    return False


def _public_symbols(
    ctx: FileContext,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef]:
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node


@project_rule(
    "REP005",
    "public fast-path symbol lacks a reference twin or a naming test",
)
def check(project: ProjectContext) -> Iterator[Finding]:
    """Flag fast-path symbols missing a twin or a naming test."""
    test_text = project.test_text()
    for ctx in project.files:
        if ctx.relpath not in TARGETS:
            continue
        rest_of_src = project.src_text_excluding(ctx.relpath)
        for node in _public_symbols(ctx):
            if not _has_twin(node, rest_of_src):
                yield Finding(
                    ctx.relpath,
                    node.lineno,
                    node.col_offset + 1,
                    "REP005",
                    f"public fast-path symbol `{node.name}` names no "
                    "reference twin (affix-stripped counterpart, reference "
                    "base class, or :func:/:class: docstring cross-reference)",
                )
            if test_text and not _word_in(node.name, test_text):
                yield Finding(
                    ctx.relpath,
                    node.lineno,
                    node.col_offset + 1,
                    "REP005",
                    f"public fast-path symbol `{node.name}` is not named by "
                    "any test under tests/; add a parity test before "
                    "trusting it",
                )
