"""REP010 — dead public API: exported surface nothing reaches.

A public function or class that neither the CLI, the tests, the
benchmarks, nor any ``__init__`` re-export can reach is surface the
project pays review and refactoring cost for without any consumer —
and worse, it silently decays because nothing exercises it.

Reachability is computed in two tiers, both deliberately conservative
(a false "dead" verdict is expensive; a false "live" one is cheap):

1. **module liveness** — the import-graph closure (deferred edges
   included) from the root set: ``cli`` modules, every ``__init__.py``,
   every benchmark script, and every module the test suite imports. A
   module outside that closure can never run, so all its public symbols
   are dead.
2. **symbol liveness** — inside a live module, a public top-level
   symbol is live if any *other* file (source, test, or benchmark)
   mentions its name as an identifier token, or its own file uses the
   name beyond the single ``def``/``class`` line (registration tables,
   recursion, ``__all__``). Textual matching over-approximates real
   references, which is exactly the conservative direction.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from collections.abc import Iterator

from repro.analysis.context import ProjectContext, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.graph import module_name
from repro.analysis.registry import project_rule

_IDENTIFIER = re.compile(r"\w+")


def _is_root(relpath: str) -> bool:
    """Entry-point files whose own publics are reachable by definition."""
    return (
        relpath.endswith("__init__.py")
        or relpath == "cli.py"
        or relpath.endswith("/cli.py")
        or relpath.startswith("benchmarks/")
    )


def _test_imported_modules(test_corpus: list[SourceFile]) -> set[str]:
    """Dotted names the test suite imports (prefix set, e.g. both
    ``repro.serving.router`` and ``repro.serving``)."""
    imported: set[str] = set()
    for source in test_corpus:
        try:
            tree = ast.parse(source.text, filename=source.relpath)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imported.add(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                imported.add(node.module)
                for alias in node.names:
                    imported.add(f"{node.module}.{alias.name}")
    return imported


@project_rule(
    "REP010",
    "public symbol unreachable from CLI, tests, benchmarks, or re-exports",
)
def check(project: ProjectContext) -> Iterator[Finding]:
    """Flag public top-level symbols with no reachable consumer."""
    if not project.test_corpus:
        # Without the test corpus, "unreachable from tests" cannot be
        # judged — abstain rather than flag every fixture project.
        return
    graphs = project.graphs
    corpus = project.src_corpus or [
        SourceFile(ctx.relpath, ctx.text) for ctx in project.files
    ]

    test_imports = _test_imported_modules(project.test_corpus)
    roots = {
        path
        for path in graphs.modules.modules
        if _is_root(path) or module_name(path) in test_imports
    }
    live: set[str] = set()
    queue = deque(sorted(roots))
    while queue:
        path = queue.popleft()
        if path in live:
            continue
        live.add(path)
        for edge in graphs.modules.imports_of(path):
            if edge.target not in live:
                queue.append(edge.target)

    identifiers: dict[str, set[str]] = {
        source.relpath: set(_IDENTIFIER.findall(source.text)) for source in corpus
    }
    for source in project.test_corpus:
        identifiers[f"tests/{source.relpath}"] = set(
            _IDENTIFIER.findall(source.text)
        )

    for ctx in project.files:
        if _is_root(ctx.relpath):
            continue
        module_live = ctx.relpath in live
        own_counts: dict[str, int] = {}
        for token in _IDENTIFIER.findall(ctx.text):
            own_counts[token] = own_counts.get(token, 0) + 1
        for node in ctx.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            referenced_elsewhere = any(
                node.name in tokens
                for path, tokens in identifiers.items()
                if path != ctx.relpath
            )
            if referenced_elsewhere or own_counts.get(node.name, 0) >= 2:
                continue  # textual reference = live (conservative)
            if module_live:
                message = (
                    f"public `{node.name}` has no consumer anywhere (no "
                    "other file names it, and its own module never uses "
                    "it); delete it, test it, or mark it private"
                )
            else:
                message = (
                    f"public `{node.name}` lives in a module unreachable "
                    "from the CLI, tests, benchmarks, or any __init__ "
                    "re-export, and nothing names it; delete it or wire "
                    "the module in"
                )
            yield Finding(
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                "REP010",
                message,
            )
