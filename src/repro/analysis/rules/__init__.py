"""Rule implementations; importing this package registers every rule.

One module per rule keeps each invariant's definition (and its false-
positive boundary) reviewable in isolation. New rules: add a module
here, decorate the checker with ``@file_rule``/``@project_rule``, and
import it below — the registry, CLI ``--rule`` filter, reporters, and
docs table pick it up automatically.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    rep001_determinism,
    rep002_blocking,
    rep003_locks,
    rep004_guards,
    rep005_parity,
    rep006_exceptions,
    rep007_layering,
    rep008_transitive,
    rep009_protocol,
    rep010_deadapi,
)
