"""REP007 — architecture layering over the module import graph.

Nine subsystems only stay nine subsystems if their dependency
directions hold. The allowed edges form one declared DAG::

    utils / errors / text                 (foundations)
        ↑
    taxonomy → querylog → mining → core   (domain layer)
        ↑
    runtime → training                    (model build/run layer)
        ↑
    serving                               (online layer)

with ``eval``/``baselines``/``apps`` as core-level consumers,
``analysis`` importing nothing above ``utils`` (the linter must never
depend on what it lints), and the package root / ``cli`` / benchmarks
free to import anything. Two checks run over
:class:`~repro.analysis.graph.ModuleGraph`:

1. every cross-subsystem import edge (including deferred ones) must be
   allowed by :data:`ALLOWED_IMPORTS`; and
2. **load-time** import cycles are rejected outright. Deferred
   (function-body) imports are excluded from the cycle check — they are
   the sanctioned escape valve — but still face check 1, so an upward
   deferred import needs an explicit justified ``noqa`` on its line.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.graph import subsystem_of
from repro.analysis.registry import project_rule

#: The layer DAG: subsystem -> subsystems it may import. This table is
#: the single source of truth (README/TOUR render it; a test asserts it
#: is acyclic). Order within each tuple is cosmetic; sorted for review.
_FOUNDATIONS = ("errors", "text", "utils")
ALLOWED_IMPORTS: dict[str, tuple[str, ...]] = {
    "errors": (),
    "utils": (),
    "text": ("errors", "utils"),
    "taxonomy": _FOUNDATIONS,
    "querylog": ("taxonomy", *_FOUNDATIONS),
    "mining": ("querylog", "taxonomy", *_FOUNDATIONS),
    "core": ("mining", "querylog", "taxonomy", *_FOUNDATIONS),
    "runtime": ("core", "mining", "querylog", "taxonomy", *_FOUNDATIONS),
    "training": ("runtime", "core", "mining", "querylog", "taxonomy", *_FOUNDATIONS),
    "serving": (
        "training",
        "runtime",
        "core",
        "mining",
        "querylog",
        "taxonomy",
        *_FOUNDATIONS,
    ),
    "eval": ("core", "mining", "querylog", "taxonomy", *_FOUNDATIONS),
    "baselines": ("core", "mining", "querylog", "taxonomy", *_FOUNDATIONS),
    "apps": ("baselines", "eval", "core", "mining", "querylog", "taxonomy", *_FOUNDATIONS),
    "analysis": ("errors", "utils"),
    # Top-level consumers: may import any subsystem.
    "root": ("*",),
    "cli": ("*",),
    "benchmarks": ("*",),
}


def is_allowed(source_subsystem: str, target_subsystem: str) -> bool:
    """May ``source_subsystem`` import ``target_subsystem``?"""
    if source_subsystem == target_subsystem:
        return True
    allowed = ALLOWED_IMPORTS.get(source_subsystem)
    if allowed is None:
        return False  # undeclared subsystem: extend the table explicitly
    return "*" in allowed or target_subsystem in allowed


@project_rule(
    "REP007",
    "import violates the architecture layer DAG or forms a load-time cycle",
)
def check(project: ProjectContext) -> Iterator[Finding]:
    """Flag layer-DAG violations and load-time import cycles."""
    graphs = project.graphs
    linted = {ctx.relpath for ctx in project.files}
    flagged: set[tuple[str, int]] = set()
    for edge in graphs.modules.edges:
        if edge.source not in linted:
            continue  # narrowed run: only report on files being linted
        source_subsystem = subsystem_of(edge.source)
        target_subsystem = subsystem_of(edge.target)
        if is_allowed(source_subsystem, target_subsystem):
            continue
        flagged.add((edge.source, edge.line))
        declared = ALLOWED_IMPORTS.get(source_subsystem)
        if declared is None:
            reason = (
                f"subsystem `{source_subsystem}` is not declared in the "
                "layer table (ALLOWED_IMPORTS); add it with an explicit "
                "dependency list"
            )
        else:
            reason = (
                f"`{source_subsystem}` may only import "
                f"{{{', '.join(sorted(declared)) or 'nothing'}}}"
            )
        yield Finding(
            edge.source,
            edge.line,
            1,
            "REP007",
            f"layering violation: `{source_subsystem}` → "
            f"`{target_subsystem}` (imports {edge.target}); {reason}",
        )
    for cycle in graphs.modules.load_time_cycles():
        members = set(cycle)
        chain = " → ".join(cycle)
        for edge in graphs.modules.edges:
            if (
                edge.deferred
                or edge.source not in members
                or edge.target not in members
                or edge.source not in linted
                or (edge.source, edge.line) in flagged
            ):
                continue
            yield Finding(
                edge.source,
                edge.line,
                1,
                "REP007",
                f"load-time import cycle {{{chain}}}: importing "
                f"{edge.target} at module load closes the loop; defer the "
                "import into the function that needs it",
            )
