"""REP008 — transitive blocking calls below serving coroutines.

The call-graph closure of REP002. That rule sees one file at a time, so
``async def reload`` calling a sync helper that calls
``read_snapshot_header`` which ``open``\\ s a file passes it — yet the
event loop stalls exactly as if the coroutine had called ``open``
itself, because a sync callee runs on the caller's stack.

This rule walks the :class:`~repro.analysis.graph.CallGraph` from every
``async def`` under ``serving/``: breadth-first over *sync* callees
only (an ``await``\\ ed coroutine suspends rather than blocks, and
callables handed to ``run_in_executor``/``to_thread`` are arguments,
not call expressions, so the traversal excludes them for free). Any
reachable blocking primitive — REP002's own table — at depth ≥ 2 is
reported with the full call chain; depth-1 hits stay REP002's.

The finding anchors on the *first hop* (the call site inside the
coroutine) so a ``noqa`` there acknowledges the whole chain, and BFS
guarantees the reported chain is a shortest one.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.analysis.context import ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.graph import iter_async_roots
from repro.analysis.registry import project_rule
from repro.analysis.rules.rep002_blocking import _is_blocking


@project_rule(
    "REP008",
    "async def in serving/ reaches a blocking call through sync callees",
)
def check(project: ProjectContext) -> Iterator[Finding]:
    """Flag serving coroutines whose sync call closure blocks."""
    graphs = project.graphs
    call_graph = graphs.calls
    linted = {ctx.relpath for ctx in project.files}
    for root in iter_async_roots(graphs):
        if root.path not in linted:
            continue
        # (node id, call chain so far, line of the first hop's call site)
        queue: deque[tuple[str, tuple[str, ...], int]] = deque()
        for site in call_graph.calls_of(root.node_id):
            callee = call_graph.functions.get(site.callee)
            if callee is None or callee.is_async:
                continue
            queue.append((site.callee, (root.node_id, site.callee), site.line))
        visited: set[str] = {root.node_id}
        reported: set[str] = set()  # one finding per blocking primitive
        while queue:
            node_id, chain, first_line = queue.popleft()
            if node_id in visited:
                continue
            visited.add(node_id)
            for external in call_graph.externals_of(node_id):
                if not _is_blocking(external.name) or external.name in reported:
                    continue
                reported.add(external.name)
                node = call_graph.functions[node_id]
                rendered = " → ".join(chain)
                yield Finding(
                    root.path,
                    first_line,
                    1,
                    "REP008",
                    f"`async def {root.qualname}` reaches blocking "
                    f"`{external.name}` ({node.path}:{external.line}) through "
                    f"sync callees: {rendered}; run the sync chain in an "
                    "executor or make it async",
                )
            for site in call_graph.calls_of(node_id):
                callee = call_graph.functions.get(site.callee)
                if callee is None or callee.is_async or site.callee in visited:
                    continue
                queue.append((site.callee, chain + (site.callee,), first_line))
