"""REP003 — a synchronous lock held across ``await``.

``with some_lock:`` around an ``await`` is a deadlock engine: the
coroutine parks at the await point *still holding the lock*, the event
loop schedules another task, and if that task (or the executor thread
completing the awaited future) needs the same lock, nothing ever
progresses. The safe forms are ``async with asyncio.Lock()`` (released
cooperatively) or restructuring so the lock never spans a suspension
point. The rule flags sync ``with`` blocks whose context manager looks
like a lock (``threading``/``multiprocessing`` lock constructors, or a
name ending in ``lock``/``mutex``) and whose body awaits.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.asthelpers import (
    async_functions,
    terminal_name,
    walk_same_scope,
)
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import file_rule

_LOCK_CONSTRUCTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Condition",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
    "multiprocessing.Semaphore",
}


def _looks_like_lock(ctx: FileContext, expr: ast.expr) -> bool:
    if isinstance(expr, ast.Call):
        resolved = ctx.resolve_call(expr.func)
        if resolved in _LOCK_CONSTRUCTORS:
            return True
        # `with self._lock.acquire():` style — judge the receiver.
        if isinstance(expr.func, ast.Attribute) and expr.func.attr == "acquire":
            expr = expr.func.value
    name = terminal_name(expr)
    if name is None:
        return False
    lowered = name.lower()
    return lowered.endswith(("lock", "mutex")) or lowered in ("sem", "semaphore")


def _awaits_inside(with_node: ast.With) -> bool:
    return any(
        isinstance(node, ast.Await)
        for stmt in with_node.body
        for node in walk_same_scope(stmt)
    )


@file_rule(
    "REP003",
    "synchronous lock held across await (deadlock hazard)",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    """Flag sync ``with <lock>:`` blocks whose body awaits."""
    for coroutine in async_functions(ctx.tree):
        for node in walk_same_scope(coroutine):
            if not isinstance(node, ast.With):
                continue
            lockish = [
                item.context_expr
                for item in node.items
                if _looks_like_lock(ctx, item.context_expr)
            ]
            if not lockish or not _awaits_inside(node):
                continue
            held = terminal_name(lockish[0]) or "lock"
            yield Finding(
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                "REP003",
                f"sync lock `{held}` held across await in `async def "
                f"{coroutine.name}`; use `async with asyncio.Lock()` or "
                "release before suspending",
            )
