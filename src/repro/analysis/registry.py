"""The rule registry: declare once, dispatch everywhere.

A rule is a pure function from a context to findings, registered with
:func:`file_rule` (sees one :class:`~repro.analysis.context.FileContext`
at a time) or :func:`project_rule` (sees the whole
:class:`~repro.analysis.context.ProjectContext`; for cross-file checks
like parity coverage). ``scope`` restricts a file rule to package
subtrees — paths are package-relative, so ``("runtime/",)`` matches
``runtime/pool.py``.

Importing :mod:`repro.analysis.rules` populates the registry; the
engine, CLI, and docs all read it through :func:`all_rules` so there is
exactly one source of truth for what ``repro lint`` enforces.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analysis.context import FileContext, ProjectContext
from repro.analysis.findings import Finding

FileCheck = Callable[[FileContext], Iterable[Finding]]
ProjectCheck = Callable[[ProjectContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: id, one-line summary, checker, file scope."""

    rule_id: str
    summary: str
    scope: tuple[str, ...]  # package-relative path prefixes; () = everywhere
    file_check: FileCheck | None = None
    project_check: ProjectCheck | None = None

    def applies_to(self, relpath: str) -> bool:
        """True when ``relpath`` falls inside this rule's scope."""
        return not self.scope or relpath.startswith(self.scope)


_REGISTRY: dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule


def file_rule(
    rule_id: str, summary: str, scope: tuple[str, ...] = ()
) -> Callable[[FileCheck], FileCheck]:
    """Register a per-file rule (decorator)."""

    def decorate(check: FileCheck) -> FileCheck:
        _register(Rule(rule_id, summary, scope, file_check=check))
        return check

    return decorate


def project_rule(
    rule_id: str, summary: str
) -> Callable[[ProjectCheck], ProjectCheck]:
    """Register a whole-project rule (decorator)."""

    def decorate(check: ProjectCheck) -> ProjectCheck:
        _register(Rule(rule_id, summary, (), project_check=check))
        return check

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id (stable report order)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Sorted ids of every registered rule."""
    return [rule.rule_id for rule in all_rules()]
