"""Per-line suppressions: ``# repro: noqa[REPxxx] -- justification``.

A suppression silences the named rules on its line only, and the
justification after ``--`` is mandatory — the comment is the audit
trail explaining why the invariant does not apply. A suppression with a
missing/empty justification or an unknown rule id is itself reported as
**REP000**, so the escape hatch cannot silently rot.

Grammar (one comment per line, anywhere in the trailing comment)::

    risky_call()  # repro: noqa[REP004] -- mapping outlives the views
    other_call()  # repro: noqa[REP002,REP006] -- startup, loop not live

A noqa on its *own* line (optionally inside a block of comment lines)
covers the next source line instead — for statements too long to carry
a trailing justification::

    # repro: noqa[REP004] -- the mapping must outlive this function:
    # the numpy views below alias its pages.
    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.findings import Finding

#: Rule id syntax: REP + three digits.
RULE_ID = re.compile(r"^REP\d{3}$")

_NOQA = re.compile(
    r"#\s*repro:\s*noqa"  # marker
    r"(?:\[(?P<rules>[^\]]*)\])?"  # [REP001,REP002] (required in practice)
    r"(?:\s*--\s*(?P<why>.*?))?\s*$"  # -- justification (to end of line)
)


@dataclass(frozen=True)
class Suppression:
    """One parsed noqa comment on one line."""

    line: int
    rules: frozenset[str]
    justification: str

    def covers(self, rule: str) -> bool:
        """True when this suppression names ``rule``."""
        return rule in self.rules


def _comment_tokens(text: str) -> list[tuple[int, int, str]]:
    """Real ``#`` comments as (line, col, text) — docstrings that merely
    *mention* a noqa (like this package's own) are not comments."""
    comments = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # partial scan of a file the AST parser will reject anyway
    return comments


def parse_suppressions(
    relpath: str, text: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Scan source ``text`` for noqa comments.

    Returns the valid suppressions keyed by 1-based line number, plus a
    REP000 finding for every malformed one (blanket ``noqa`` without
    rule ids, unknown ids, or a missing justification).
    """
    lines = text.splitlines()
    suppressions: dict[int, Suppression] = {}
    findings: list[Finding] = []
    for number, comment_col, comment in _comment_tokens(text):
        match = _NOQA.search(comment)
        if match is None:
            continue
        col = comment_col + match.start() + 1
        target = number
        own_line = not lines[number - 1][:comment_col].strip()
        if own_line:
            # A standalone noqa covers the next source line (skipping the
            # rest of its comment block).
            target += 1
            while target <= len(lines) and (
                not lines[target - 1].strip()
                or lines[target - 1].lstrip().startswith("#")
            ):
                target += 1
        raw_rules = match.group("rules")
        why = (match.group("why") or "").strip()
        if raw_rules is None or not raw_rules.strip():
            findings.append(
                Finding(
                    relpath,
                    number,
                    col,
                    "REP000",
                    "blanket noqa is not allowed; name the rules, e.g. "
                    "`# repro: noqa[REP004] -- why`",
                )
            )
            continue
        rules = frozenset(part.strip() for part in raw_rules.split(","))
        bad = sorted(rule for rule in rules if not RULE_ID.match(rule))
        if bad:
            findings.append(
                Finding(
                    relpath,
                    number,
                    col,
                    "REP000",
                    f"noqa names unknown rule id(s) {', '.join(bad)} "
                    "(expected REPxxx)",
                )
            )
            continue
        if not why:
            findings.append(
                Finding(
                    relpath,
                    number,
                    col,
                    "REP000",
                    "noqa without a justification; append `-- <why this "
                    "invariant does not apply here>`",
                )
            )
            continue
        existing = suppressions.get(target)
        if existing is not None:
            rules = rules | existing.rules
            why = f"{existing.justification}; {why}"
        suppressions[target] = Suppression(target, rules, why)
    return suppressions, findings
