"""Grandfathered findings: the committed lint baseline.

Introducing a new rule on a living tree usually surfaces pre-existing
findings that are not this diff's business to fix. Rather than blocking
every PR until the tree is spotless (or worse, weakening the rule), the
offending findings are *baselined*: ``repro lint --write-baseline``
records their fingerprints in a committed JSON file, and subsequent runs
report only findings **not** in the baseline.

Fingerprints hash the rule, file, and offending line's text — not line
numbers — so unrelated edits don't invalidate entries, while touching
the offending line itself resurfaces the finding for a fresh look. A
baseline entry whose finding no longer exists is *stale*; the engine
reports stale entries so the file ratchets monotonically toward empty
(the repo ships with an empty baseline, and the CI lint job keeps it
that way).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError

#: Format marker written into every baseline file.
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of grandfathered finding fingerprints.

    Entries map fingerprint → ``{rule, path}`` context (the context is
    for human readers of the JSON; matching is by fingerprint alone).
    """

    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise AnalysisError(
                f"baseline {path} is not a lint baseline "
                '(expected {"version": ..., "findings": {...}})'
            )
        findings = payload["findings"]
        if not isinstance(findings, dict):
            raise AnalysisError(f"baseline {path}: findings must be an object")
        entries: dict[str, dict[str, str]] = {}
        for fingerprint, context in findings.items():
            if not isinstance(context, dict):
                raise AnalysisError(
                    f"baseline {path}: entry {fingerprint!r} must be an object"
                )
            entries[str(fingerprint)] = {
                "rule": str(context.get("rule", "?")),
                "path": str(context.get("path", "?")),
            }
        return cls(entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline (sorted keys: diffs stay reviewable)."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": {
                fingerprint: self.entries[fingerprint]
                for fingerprint in sorted(self.entries)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, fingerprint: str, rule: str, path: str) -> None:
        """Record one grandfathered finding."""
        self.entries[fingerprint] = {"rule": rule, "path": path}

    def stale(self, live_fingerprints: set[str]) -> dict[str, dict[str, str]]:
        """Entries whose finding no longer exists (fixed or rewritten) —
        candidates for removal so the baseline only ever shrinks."""
        return {
            fingerprint: context
            for fingerprint, context in self.entries.items()
            if fingerprint not in live_fingerprints
        }
