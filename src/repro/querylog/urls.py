"""Synthetic result-URL model.

URLs encode the semantics the click model needs:

- **host** is derived from the head's *concept* (result pages about phone
  accessories live on one site, about hotels on another);
- **path** is the head *instance* (the page is about that thing);
- **query string** lists the intent's *constraint* modifiers, sorted (the
  page is specialized to them);
- non-constraint modifiers do not appear anywhere.

So two queries share full URLs iff they share head + constraints, and they
share host+path iff they share the head — the two granularities the miners
compare at.
"""

from __future__ import annotations

import re

from repro.utils.randx import stable_hash

_SLUG_RE = re.compile(r"[^a-z0-9]+")

#: Number of distinct result URLs per intent (top search results).
RESULTS_PER_INTENT = 3


def slugify(text: str) -> str:
    """Lowercase URL-safe slug of a term."""
    return _SLUG_RE.sub("-", text.lower()).strip("-")


def intent_base_url(head: str, head_concept: str, constraints: tuple[str, ...]) -> str:
    """Deterministic landing-page URL for an intent."""
    host = f"{slugify(head_concept)}.example.com"
    path = slugify(head)
    base = f"https://{host}/{path}"
    if constraints:
        params = "+".join(slugify(c) for c in sorted(constraints))
        base = f"{base}?c={params}"
    return base


def result_urls(head: str, head_concept: str, constraints: tuple[str, ...]) -> list[str]:
    """The top-``RESULTS_PER_INTENT`` result URLs for an intent.

    Rank suffixes are derived from a stable hash so different intents do
    not accidentally share URLs.
    """
    base = intent_base_url(head, head_concept, constraints)
    token = stable_hash(base) % 100_000
    return [f"{base}&r={token + rank}" if "?" in base else f"{base}?r={token + rank}"
            for rank in range(RESULTS_PER_INTENT)]


def url_host_path(url: str) -> str:
    """Strip scheme and query string: the "what page is this about" key."""
    without_scheme = url.split("://", 1)[-1]
    return without_scheme.split("?", 1)[0]
