"""Generative search-log model.

Latent *intents* are sampled from the taxonomy's ground-truth concept
patterns and rendered into query surfaces, click histograms, and sessions.
See the package docstring for the invariants the click model guarantees.

Everything is deterministic given ``LogConfig.seed``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from random import Random

from repro.errors import QueryLogError
from repro.querylog.models import GoldLabel, GoldModifier, QueryLog, SessionRecord
from repro.querylog.urls import result_urls
from repro.taxonomy.seed_data import PatternSeed, pattern_seeds
from repro.taxonomy.store import ConceptTaxonomy
from repro.taxonomy.typicality import TypicalityScorer
from repro.text.lexicon import INTENT_VERBS, SUBJECTIVE_MODIFIERS
from repro.utils.mathx import zipf_weights
from repro.utils.randx import rng_from_seed, stable_hash, weighted_choice

#: Connector word used when rendering "head CONNECTOR modifier" surfaces.
_PLACE_CONCEPTS = frozenset({"city", "country"})

_SUBJECTIVE = tuple(sorted(SUBJECTIVE_MODIFIERS))
_VERBS = tuple(sorted(INTENT_VERBS))

_NOISE_QUERIES = (
    "facebook login", "gmail", "youtube", "weather", "maps", "news",
    "craigslist", "translate", "calculator", "ebay", "netflix", "amazon",
)


@dataclass(frozen=True)
class LogConfig:
    """Knobs of the log generator.

    The defaults produce a log of ~10-40k distinct queries (depending on
    ``num_intents``) whose shape matches the regularities the paper's
    miners rely on; individual probabilities are exposed so tests and
    ablations can switch phenomena off.
    """

    seed: int = 13
    num_intents: int = 4000
    volume_per_intent: float = 12.0
    zipf_exponent: float = 0.9
    subjective_prob: float = 0.3
    intent_verb_prob: float = 0.08
    connector_prob: float = 0.25
    #: Probability of also emitting a head-first surface ("hotels rome").
    reversed_prob: float = 0.12
    second_modifier_prob: float = 0.12
    #: Concepts whose modifiers are only *sometimes* constraints; their
    #: flag is sampled per intent. These make constraint detection harder
    #: than a lexicon lookup, as in real logs.
    weak_constraint_concepts: frozenset[str] = frozenset({"color", "year"})
    weak_constraint_prob: float = 0.5
    head_only_factor: float = 0.7
    modifier_only_factor: float = 0.4
    session_prob: float = 0.25
    noise_volume: int = 400
    click_rate: float = 0.65
    #: Fraction of each query's clicks diverted to unrelated URLs
    #: (misclicks, bots, result-page noise). 0 = clean log.
    click_noise: float = 0.0
    domains: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_intents <= 0:
            raise QueryLogError("num_intents must be positive")
        for name in (
            "subjective_prob", "intent_verb_prob", "connector_prob",
            "reversed_prob", "second_modifier_prob", "weak_constraint_prob",
            "session_prob", "click_noise",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise QueryLogError(f"{name} must be in [0, 1], got {value}")


@dataclass
class _Intent:
    """One latent intent with its sampled volume."""

    head: str
    head_concept: str
    domain: str
    modifiers: list[GoldModifier] = field(default_factory=list)
    frequency: int = 1

    @property
    def constraints(self) -> tuple[str, ...]:
        return tuple(m.surface for m in self.modifiers if m.is_constraint)

    def urls(self) -> list[str]:
        return result_urls(self.head, self.head_concept, self.constraints)


class QueryLogGenerator:
    """Renders sampled intents into a :class:`QueryLog`."""

    def __init__(
        self,
        taxonomy: ConceptTaxonomy,
        config: LogConfig | None = None,
        patterns: tuple[PatternSeed, ...] | None = None,
    ) -> None:
        self._taxonomy = taxonomy
        self._typicality = TypicalityScorer(taxonomy)
        self._config = config or LogConfig()
        pats = patterns if patterns is not None else pattern_seeds()
        if self._config.domains is not None:
            allowed = set(self._config.domains)
            pats = tuple(p for p in pats if p.domain in allowed)
        if not pats:
            raise QueryLogError("no concept patterns available for generation")
        self._patterns = pats
        self._pattern_weights = [p.weight for p in pats]
        # (concept -> sorted instance distribution), cached for sampling.
        self._instance_cache: dict[str, tuple[list[str], list[float]]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> QueryLog:
        """Produce the full log: intent queries, standalone sub-queries,
        sessions, and background noise."""
        cfg = self._config
        rng = rng_from_seed(cfg.seed, "querylog")
        intents = self._sample_intents(rng)
        surfaces: list[tuple[str, int, dict[str, int], GoldLabel]] = []
        sessions: list[SessionRecord] = []
        head_usage: Counter[tuple[str, str]] = Counter()
        modifier_usage: Counter[str] = Counter()

        for intent in intents:
            head_usage[(intent.head, intent.head_concept)] += intent.frequency
            for modifier in intent.modifiers:
                if modifier.concept is not None:
                    modifier_usage[modifier.surface] += intent.frequency
            surfaces.extend(self._render_intent(rng, intent))
            session, extra_surfaces = self._maybe_session(rng, intent, len(sessions))
            if session is not None:
                sessions.append(session)
                surfaces.extend(extra_surfaces)

        surfaces.extend(self._standalone_heads(rng, head_usage))
        surfaces.extend(self._standalone_modifiers(rng, modifier_usage))
        surfaces.extend(self._noise(rng))

        log = QueryLog()
        # Highest-volume surface first so gold-label collisions resolve to
        # the dominant intent.
        for query, freq, clicks, gold in sorted(
            surfaces, key=lambda s: (-s[1], s[0])
        ):
            log.add_record(query, freq, clicks, gold=gold)
        for session in sessions:
            log.add_session(session)
        return log

    # ------------------------------------------------------------------
    # intent sampling
    # ------------------------------------------------------------------
    def _sample_intents(self, rng: Random) -> list[_Intent]:
        cfg = self._config
        volumes = zipf_weights(cfg.num_intents, cfg.zipf_exponent)
        total_volume = cfg.num_intents * cfg.volume_per_intent
        intents: list[_Intent] = []
        attempts = 0
        while len(intents) < cfg.num_intents and attempts < cfg.num_intents * 20:
            attempts += 1
            intent = self._sample_one_intent(rng)
            if intent is None:
                continue
            intent.frequency = max(1, round(total_volume * volumes[len(intents)]))
            intents.append(intent)
        if len(intents) < cfg.num_intents:
            raise QueryLogError(
                "could not sample enough intents; taxonomy too small for config"
            )
        return intents

    def _sample_one_intent(self, rng: Random) -> _Intent | None:
        cfg = self._config
        pattern = weighted_choice(rng, self._patterns, self._pattern_weights)
        head = self._sample_instance(rng, pattern.head_concept)
        modifier = self._sample_instance(rng, pattern.modifier_concept)
        if head is None or modifier is None or head == modifier:
            return None
        intent = _Intent(head=head, head_concept=pattern.head_concept, domain=pattern.domain)
        intent.modifiers.append(
            self._make_modifier(rng, modifier, pattern.modifier_concept)
        )
        if rng.random() < cfg.second_modifier_prob:
            extra = self._sample_second_modifier(rng, pattern, {head, modifier})
            if extra is not None:
                intent.modifiers.append(extra)
        if rng.random() < cfg.subjective_prob:
            adjective = rng.choice(_SUBJECTIVE)
            if adjective not in {head, modifier}:
                intent.modifiers.insert(
                    0, GoldModifier(adjective, is_constraint=False, concept=None)
                )
        return intent

    def _make_modifier(self, rng: Random, surface: str, concept: str) -> GoldModifier:
        cfg = self._config
        is_constraint = True
        if concept in cfg.weak_constraint_concepts:
            # Deterministic per instance: e.g. users at large treat "black"
            # as a preference but "2013" as a requirement. Instance-level
            # droppability evidence in the log can therefore learn it.
            roll = stable_hash("weak-constraint", surface) % 1000
            is_constraint = roll >= cfg.weak_constraint_prob * 1000
        return GoldModifier(surface, is_constraint=is_constraint, concept=concept)

    def _sample_second_modifier(
        self, rng: Random, pattern: PatternSeed, taken: set[str]
    ) -> GoldModifier | None:
        """A second modifier drawn from another pattern with the same head
        concept ("nurse jobs" + "seattle" → "nurse jobs in seattle")."""
        candidates = [
            p
            for p in self._patterns
            if p.head_concept == pattern.head_concept
            and p.modifier_concept != pattern.modifier_concept
        ]
        if not candidates:
            return None
        other = weighted_choice(rng, candidates, [p.weight for p in candidates])
        surface = self._sample_instance(rng, other.modifier_concept)
        if surface is None or surface in taken:
            return None
        return self._make_modifier(rng, surface, other.modifier_concept)

    def _sample_instance(self, rng: Random, concept: str) -> str | None:
        if concept not in self._instance_cache:
            dist = sorted(self._typicality.instance_distribution(concept).items())
            self._instance_cache[concept] = (
                [k for k, _ in dist],
                [v for _, v in dist],
            )
        instances, weights = self._instance_cache[concept]
        if not instances:
            return None
        return weighted_choice(rng, instances, weights)

    # ------------------------------------------------------------------
    # surface rendering
    # ------------------------------------------------------------------
    def _render_intent(
        self, rng: Random, intent: _Intent
    ) -> list[tuple[str, int, dict[str, int], GoldLabel]]:
        """Render an intent into 1-3 surface variants with split volume."""
        cfg = self._config
        variants: list[tuple[str, float, tuple[GoldModifier, ...]]] = []

        concept_mods = [m for m in intent.modifiers if m.concept is not None]
        lexical_mods = [m for m in intent.modifiers if m.concept is None]

        base_tokens = [m.surface for m in lexical_mods + concept_mods] + [intent.head]
        all_mods = tuple(lexical_mods + concept_mods)
        variants.append((" ".join(base_tokens), 0.6, all_mods))

        if concept_mods and rng.random() < cfg.reversed_prob:
            # Head-first keyword order ("hotels rome", "movies 2013"):
            # common in real logs and adversarial for positional rules.
            reversed_tokens = [intent.head] + [m.surface for m in concept_mods]
            variants.append((" ".join(reversed_tokens), 0.15, tuple(concept_mods)))
        if concept_mods and rng.random() < cfg.connector_prob:
            variants.append(
                (self._connector_surface(intent, concept_mods), 0.25, tuple(concept_mods))
            )
        if lexical_mods:
            stripped = [m.surface for m in concept_mods] + [intent.head]
            variants.append((" ".join(stripped), 0.15, tuple(concept_mods)))
        if rng.random() < cfg.intent_verb_prob:
            verb = rng.choice(_VERBS)
            verb_mod = GoldModifier(verb, is_constraint=False, concept=None)
            variants.append(
                (f"{verb} {' '.join(base_tokens)}", 0.1, (verb_mod,) + all_mods)
            )

        total_weight = sum(w for _, w, _ in variants)
        rendered = []
        for surface, weight, mods in variants:
            freq = max(1, round(intent.frequency * weight / total_weight))
            clicks = self._sample_clicks(rng, intent.urls(), freq)
            gold = GoldLabel(
                head=intent.head,
                modifiers=mods,
                domain=intent.domain,
                head_concept=intent.head_concept,
            )
            rendered.append((surface, freq, clicks, gold))
        return rendered

    def _connector_surface(self, intent: _Intent, concept_mods: list[GoldModifier]) -> str:
        """"case for iphone 5s" / "hotels in rome" style surface."""
        first, *rest = concept_mods
        connector = "in" if first.concept in _PLACE_CONCEPTS else "for"
        prefix = " ".join(m.surface for m in rest)
        head_part = f"{prefix} {intent.head}".strip()
        return f"{head_part} {connector} {first.surface}"

    def _sample_clicks(self, rng: Random, urls: list[str], freq: int) -> dict[str, int]:
        """Expected click counts over the result URLs (largest remainder).

        Deterministic proportional allocation, not per-click sampling: the
        paper's log aggregates millions of impressions, so click
        histograms are dense — two queries with the same result set must
        have near-identical histograms even at low volume.
        """
        total = round(freq * self._config.click_rate)
        if total <= 0:
            return {}
        noise_clicks = round(total * self._config.click_noise)
        total -= noise_clicks
        weights = zipf_weights(len(urls), 1.2)
        floors = [int(total * w) for w in weights]
        remainders = [total * w - f for w, f in zip(weights, floors)]
        leftover = total - sum(floors)
        for index in sorted(
            range(len(urls)), key=lambda i: -remainders[i]
        )[:leftover]:
            floors[index] += 1
        clicks = {url: count for url, count in zip(urls, floors) if count > 0}
        for _ in range(noise_clicks):
            # Misclicks land on a small pool of popular off-topic pages
            # (portals, ads), shared across queries — correlated noise is
            # what actually hurts similarity-based mining; uniform noise
            # is orthogonal to everything and cosine ignores it.
            noise_url = f"https://portal{rng.randrange(40)}.example.org/home"
            clicks[noise_url] = clicks.get(noise_url, 0) + 1
        return clicks

    # ------------------------------------------------------------------
    # standalone sub-queries, sessions, noise
    # ------------------------------------------------------------------
    def _standalone_heads(
        self, rng: Random, usage: Counter[tuple[str, str]]
    ) -> list[tuple[str, int, dict[str, int], GoldLabel]]:
        cfg = self._config
        out = []
        for (head, concept), volume in usage.items():
            freq = max(1, round(volume * cfg.head_only_factor))
            urls = result_urls(head, concept, ())
            clicks = self._sample_clicks(rng, urls, freq)
            domain = self._taxonomy.domain_of(concept) or "general"
            gold = GoldLabel(head=head, modifiers=(), domain=domain, head_concept=concept)
            out.append((head, freq, clicks, gold))
        return out

    def _standalone_modifiers(
        self, rng: Random, usage: Counter[str]
    ) -> list[tuple[str, int, dict[str, int], GoldLabel]]:
        cfg = self._config
        out = []
        for surface, volume in usage.items():
            top = self._typicality.top_concepts(surface, 1)
            if not top:
                continue
            concept = top[0][0]
            freq = max(1, round(volume * cfg.modifier_only_factor))
            urls = result_urls(surface, concept, ())
            clicks = self._sample_clicks(rng, urls, freq)
            domain = self._taxonomy.domain_of(concept) or "general"
            gold = GoldLabel(head=surface, modifiers=(), domain=domain, head_concept=concept)
            out.append((surface, freq, clicks, gold))
        return out

    def _maybe_session(
        self, rng: Random, intent: _Intent, session_index: int
    ) -> tuple[SessionRecord | None, list]:
        """One reformulation session for this intent, plus log records for
        any session query the rendered variants did not already cover.

        Users drop *non-constraint* modifiers (subjective or weak concept
        modifiers) and stay satisfied; for constraint-only intents they
        start underspecified and add the constraint back.
        """
        if rng.random() >= self._config.session_prob:
            return None, []
        session_id = f"s{session_index:06d}"
        ordered = self._ordered_modifiers(intent)
        full = " ".join([m.surface for m in ordered] + [intent.head])
        droppable = [m for m in ordered if not m.is_constraint]
        if droppable:
            dropped = droppable[0]
            remaining = [m for m in ordered if m is not dropped]
            reduced = " ".join([m.surface for m in remaining] + [intent.head])
            session = SessionRecord(session_id, (full, reduced))
            extra = [self._session_surface(rng, intent, remaining, reduced)]
            return session, extra
        if ordered:
            # All modifiers are constraints: underspecify, then refine.
            dropped = ordered[0]
            remaining = [m for m in ordered if m is not dropped]
            under = " ".join([m.surface for m in remaining] + [intent.head])
            session = SessionRecord(session_id, (under, full))
            extra = [self._session_surface(rng, intent, remaining, under)]
            return session, extra
        return None, []

    def _ordered_modifiers(self, intent: _Intent) -> list[GoldModifier]:
        """Modifiers in surface order (lexical first, as rendered)."""
        lexical = [m for m in intent.modifiers if m.concept is None]
        concept = [m for m in intent.modifiers if m.concept is not None]
        return lexical + concept

    def _session_surface(
        self,
        rng: Random,
        intent: _Intent,
        modifiers: list[GoldModifier],
        query: str,
    ) -> tuple[str, int, dict[str, int], GoldLabel]:
        """A low-volume record for a session query (users did issue it)."""
        constraints = tuple(m.surface for m in modifiers if m.is_constraint)
        urls = result_urls(intent.head, intent.head_concept, constraints)
        freq = max(1, round(intent.frequency * 0.05))
        clicks = self._sample_clicks(rng, urls, freq)
        gold = GoldLabel(
            head=intent.head,
            modifiers=tuple(modifiers),
            domain=intent.domain,
            head_concept=intent.head_concept,
        )
        return query, freq, clicks, gold

    def _noise(self, rng: Random) -> list[tuple[str, int, dict[str, int], GoldLabel]]:
        cfg = self._config
        if cfg.noise_volume <= 0:
            return []
        out = []
        per_query = max(1, cfg.noise_volume // len(_NOISE_QUERIES))
        for query in _NOISE_QUERIES:
            url = f"https://www.{query.split()[0]}.com/"
            freq = max(1, round(per_query * (0.5 + rng.random())))
            out.append((query, freq, {url: round(freq * cfg.click_rate)}, None))
        return out


def generate_log(
    taxonomy: ConceptTaxonomy,
    config: LogConfig | None = None,
    patterns: tuple[PatternSeed, ...] | None = None,
) -> QueryLog:
    """Convenience wrapper: build a generator and run it once."""
    return QueryLogGenerator(taxonomy, config, patterns).generate()
