"""Search-log substrate.

The paper mines instance-level head-modifier pairs from a production search
log (queries, frequencies, clicks, sessions). This package is the synthetic
equivalent: a generative model whose latent *intents* (head instance +
modifier instances, each modifier flagged constraint / non-constraint)
render into query surfaces and click distributions.

The crucial property: **clicked URLs are a function of the intent's head
and its constraint modifiers only.** Dropping a non-constraint modifier
leaves the click distribution unchanged; dropping the head or a constraint
changes it. That is precisely the observable signal the paper's log mining
exploits, so the mining code runs unmodified against a real log.

Ground-truth labels are kept in a separate table
(:attr:`QueryLog.gold_labels`) that the mining path never reads; it stands
in for the paper's human-judged evaluation queries.
"""

from repro.querylog.generator import LogConfig, QueryLogGenerator, generate_log
from repro.querylog.models import (
    GoldLabel,
    GoldModifier,
    QueryLog,
    QueryRecord,
    SessionRecord,
)
from repro.querylog.stats import LogStatistics, click_similarity, host_path_similarity
from repro.querylog.storage import load_query_log, save_query_log
from repro.querylog.urls import result_urls, url_host_path

__all__ = [
    "LogConfig",
    "QueryLogGenerator",
    "generate_log",
    "QueryLog",
    "QueryRecord",
    "SessionRecord",
    "GoldLabel",
    "GoldModifier",
    "LogStatistics",
    "click_similarity",
    "host_path_similarity",
    "save_query_log",
    "load_query_log",
    "result_urls",
    "url_host_path",
]
