"""Aggregate statistics over a query log.

These are the observable signals mining and the constraint features build
on: click-distribution similarity at two granularities, term document
frequencies, standalone-query probabilities, and click dispersion.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Mapping

from repro.querylog.models import QueryLog
from repro.querylog.urls import url_host_path
from repro.utils.mathx import entropy, safe_div


def click_similarity(a: Mapping[str, int], b: Mapping[str, int]) -> float:
    """Cosine similarity between two clicked-URL histograms.

    Full-URL granularity: high only when two queries land users on the
    same *result pages* — the signal that tells constraints apart from
    droppable modifiers.
    """
    return _cosine(a, b)


def host_path_similarity(a: Mapping[str, int], b: Mapping[str, int]) -> float:
    """Cosine similarity after collapsing URLs to host+path.

    Host+path identifies *what the page is about* regardless of result
    specialization, so a query and its head-only sub-query score high here
    even when their full URLs differ.
    """
    return _cosine(_collapse(a), _collapse(b))


def _collapse(clicks: Mapping[str, int]) -> Counter[str]:
    collapsed: Counter[str] = Counter()
    for url, count in clicks.items():
        collapsed[url_host_path(url)] += count
    return collapsed


def _cosine(a: Mapping[str, int], b: Mapping[str, int]) -> float:
    if not a or not b:
        return 0.0
    dot = sum(count * b.get(url, 0) for url, count in a.items())
    norm_a = math.sqrt(sum(c * c for c in a.values()))
    norm_b = math.sqrt(sum(c * c for c in b.values()))
    return safe_div(dot, norm_a * norm_b)


class LogStatistics:
    """Precomputed per-term and per-query statistics over one log.

    Construction is a single pass; lookups are O(1). Everything here uses
    only the observable log interface (never gold labels).
    """

    def __init__(self, log: QueryLog) -> None:
        self._log = log
        self._term_query_freq: Counter[str] = Counter()
        self._term_volume: Counter[str] = Counter()
        self._total_volume = 0
        for record in log.records():
            self._total_volume += record.frequency
            seen = set(record.tokens)
            for term in seen:
                self._term_query_freq[term] += 1
            for term in record.tokens:
                self._term_volume[term] += record.frequency
        self._num_queries = log.num_queries

    def absorb(self, record, *, new_query: bool) -> None:
        """Fold one record's delta contribution into the counters.

        ``record`` carries the *delta* frequency and the query's tokens;
        ``new_query`` says whether the surface string was previously
        unseen in the log (document frequencies count distinct queries,
        so merges into an existing query leave them untouched). All
        counters are integers, so the result is exactly — not
        approximately — what a from-scratch construction over the merged
        log would compute, regardless of fold order.
        """
        self._total_volume += record.frequency
        if new_query:
            for term in set(record.tokens):
                self._term_query_freq[term] += 1
            self._num_queries += 1
        for term in record.tokens:
            self._term_volume[term] += record.frequency

    @property
    def log(self) -> QueryLog:
        """The underlying query log."""
        return self._log

    @property
    def total_volume(self) -> int:
        """Total query volume of the log."""
        return self._total_volume

    # ------------------------------------------------------------------
    # term statistics
    # ------------------------------------------------------------------
    def term_idf(self, term: str) -> float:
        """Smoothed inverse query frequency of a single token."""
        df = self._term_query_freq.get(term, 0)
        return math.log((self._num_queries + 1) / (df + 1)) + 1.0

    def phrase_idf(self, phrase: str) -> float:
        """Mean token IDF of a (possibly multi-token) phrase."""
        tokens = phrase.split()
        if not tokens:
            return 0.0
        return sum(self.term_idf(t) for t in tokens) / len(tokens)

    def term_volume(self, term: str) -> int:
        """Total query volume containing the token."""
        return self._term_volume.get(term, 0)

    # ------------------------------------------------------------------
    # query statistics
    # ------------------------------------------------------------------
    def standalone_probability(self, phrase: str) -> float:
        """P(a random log query is exactly this phrase).

        The statistical baseline scores head candidates with this: heads
        are things people also search for on their own.
        """
        record = self._log.lookup(phrase)
        if record is None:
            return 0.0
        return safe_div(record.frequency, self._total_volume)

    def click_entropy(self, query: str) -> float:
        """Entropy (nats) of a query's click distribution; 0 when unknown.

        Navigational queries have near-zero entropy; ambiguous ones spread
        clicks across unrelated hosts.
        """
        record = self._log.lookup(query)
        if record is None or not record.clicks:
            return 0.0
        return entropy(record.clicks.values())

    def drop_similarity(self, query: str, without: str) -> float | None:
        """Full-URL click similarity between ``query`` and ``query`` with
        the segment ``without`` removed.

        Returns ``None`` when the reduced query is absent from the log (no
        evidence either way). High values mean the removed segment did not
        change what users clicked — i.e. it was not a constraint.
        """
        record = self._log.lookup(query)
        if record is None:
            return None
        reduced = _remove_segment(query, without)
        if reduced is None:
            return None
        reduced_record = self._log.lookup(reduced)
        if reduced_record is None:
            return None
        return click_similarity(record.clicks, reduced_record.clicks)

    def subquery_support(self, query: str, part: str) -> tuple[float, float] | None:
        """(host-path similarity, standalone probability) of ``part`` as a
        sub-query of ``query``; ``None`` when ``part`` is not in the log."""
        record = self._log.lookup(query)
        part_record = self._log.lookup(part)
        if record is None or part_record is None:
            return None
        return (
            host_path_similarity(record.clicks, part_record.clicks),
            self.standalone_probability(part),
        )


def _remove_segment(query: str, segment: str) -> str | None:
    """Remove one occurrence of a (token-aligned) segment from a query."""
    tokens = query.split()
    seg_tokens = segment.split()
    n = len(seg_tokens)
    if n == 0 or n >= len(tokens):
        return None
    for start in range(len(tokens) - n + 1):
        if tokens[start : start + n] == seg_tokens:
            remaining = tokens[:start] + tokens[start + n :]
            return " ".join(remaining)
    return None
