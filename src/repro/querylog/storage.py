"""Query-log persistence (JSON-lines, optionally gzipped).

One JSON object per line with a ``kind`` discriminator::

    {"kind": "meta", "version": 1}
    {"kind": "query", "q": "...", "f": 12, "clicks": {"url": 3}}
    {"kind": "gold", "q": "...", "head": "...", "mods": [["best", false, null]], "domain": "..."}
    {"kind": "session", "id": "s1", "queries": ["a", "b"]}

Gold records are separate lines so a "mining-only" consumer can skip them
entirely — mirroring that the paper's miners never see labels.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from pathlib import Path
from typing import IO

from repro.errors import QueryLogError
from repro.querylog.models import GoldLabel, GoldModifier, QueryLog, SessionRecord

_VERSION = 1


def save_query_log(log: QueryLog, path: str | Path, include_gold: bool = True) -> None:
    """Write ``log`` to ``path`` (gzip when the suffix is ``.gz``)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        with _open(tmp, "wt", gz=path.suffix == ".gz") as out:
            out.write(json.dumps({"kind": "meta", "version": _VERSION}) + "\n")
            for record in log.records():
                out.write(
                    json.dumps(
                        {
                            "kind": "query",
                            "q": record.query,
                            "f": record.frequency,
                            "clicks": dict(record.clicks),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            if include_gold:
                for query, gold in log.gold_labels.items():
                    out.write(json.dumps(_gold_to_json(query, gold), sort_keys=True) + "\n")
            for session in log.sessions():
                out.write(
                    json.dumps(
                        {
                            "kind": "session",
                            "id": session.session_id,
                            "queries": list(session.queries),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)


def load_query_log(path: str | Path, include_gold: bool = True) -> QueryLog:
    """Read a log written by :func:`save_query_log`.

    Raises :class:`QueryLogError` for any malformed or truncated file
    (including a corrupt gzip stream); low-level IO errors other than
    "file not found" never escape.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        return _load_query_log(path, include_gold)
    except (EOFError, OSError, UnicodeDecodeError) as exc:
        raise QueryLogError(f"{path}: unreadable log file ({exc})") from exc


def _load_query_log(path: Path, include_gold: bool) -> QueryLog:
    log = QueryLog()
    gold_rows: list[tuple[str, GoldLabel]] = []
    with _open(path, "rt", gz=path.suffix == ".gz") as handle:
        first = handle.readline()
        meta = _parse_line(first, path, 1)
        if meta.get("kind") != "meta" or meta.get("version") != _VERSION:
            raise QueryLogError(f"{path}: unsupported log header {first!r}")
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            obj = _parse_line(line, path, line_no)
            kind = obj.get("kind")
            try:
                if kind == "query":
                    log.add_record(obj["q"], obj["f"], obj["clicks"])
                elif kind == "gold":
                    if include_gold:
                        gold_rows.append((obj["q"], _gold_from_json(obj)))
                elif kind == "session":
                    log.add_session(SessionRecord(obj["id"], tuple(obj["queries"])))
                else:
                    raise QueryLogError(
                        f"{path}:{line_no}: unknown record kind {kind!r}"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                raise QueryLogError(
                    f"{path}:{line_no}: malformed {kind!r} record"
                ) from exc
    for query, gold in gold_rows:
        if log.lookup(query) is not None:
            log.attach_gold(query, gold)
    return log


def _gold_to_json(query: str, gold: GoldLabel) -> dict:
    return {
        "kind": "gold",
        "q": query,
        "head": gold.head,
        "head_concept": gold.head_concept,
        "mods": [[m.surface, m.is_constraint, m.concept] for m in gold.modifiers],
        "domain": gold.domain,
    }


def _gold_from_json(obj: dict) -> GoldLabel:
    return GoldLabel(
        head=obj["head"],
        modifiers=tuple(
            GoldModifier(surface, is_constraint=bool(flag), concept=concept)
            for surface, flag, concept in obj["mods"]
        ),
        domain=obj["domain"],
        head_concept=obj.get("head_concept"),
    )


def _parse_line(line: str, path: Path, line_no: int) -> dict:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise QueryLogError(f"{path}:{line_no}: invalid JSON") from exc
    if not isinstance(obj, dict):
        raise QueryLogError(f"{path}:{line_no}: expected an object")
    return obj


def _open(path: Path, mode: str, gz: bool) -> IO[str]:
    if gz:
        return gzip.open(path, mode, encoding="utf-8")
    return open(path, mode, encoding="utf-8")
