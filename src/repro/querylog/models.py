"""Query-log record types.

:class:`QueryRecord` is what a real log provides per distinct query string:
frequency and a clicked-URL histogram. :class:`GoldLabel` is the generator's
ground truth; it lives in a separate table so mining code *cannot* touch it
by construction.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.errors import QueryLogError
from repro.text.normalizer import normalize


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One distinct query string with aggregate behaviour.

    ``clicks`` maps clicked URL → click count across all impressions.
    """

    query: str
    frequency: int
    clicks: Mapping[str, int]

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise QueryLogError(f"frequency must be positive: {self.query!r}")

    @property
    def tokens(self) -> tuple[str, ...]:
        """The query's tokens (it is stored normalized)."""
        return tuple(self.query.split())

    @property
    def total_clicks(self) -> int:
        """Total clicks across all result URLs."""
        return sum(self.clicks.values())


@dataclass(frozen=True, slots=True)
class SessionRecord:
    """An ordered sequence of queries issued by one user in one sitting."""

    session_id: str
    queries: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.queries) < 1:
            raise QueryLogError("session must contain at least one query")

    def reformulation_pairs(self) -> Iterator[tuple[str, str]]:
        """Consecutive (earlier, later) query pairs within the session."""
        for i in range(len(self.queries) - 1):
            yield self.queries[i], self.queries[i + 1]


@dataclass(frozen=True, slots=True)
class GoldModifier:
    """Ground truth for one modifier of a query."""

    surface: str
    is_constraint: bool
    concept: str | None = None


@dataclass(frozen=True, slots=True)
class GoldLabel:
    """Ground truth for one query: its head, modifiers, and domain."""

    head: str
    modifiers: tuple[GoldModifier, ...]
    domain: str
    head_concept: str | None = None

    @property
    def constraint_surfaces(self) -> frozenset[str]:
        """Surfaces of the constraint modifiers."""
        return frozenset(m.surface for m in self.modifiers if m.is_constraint)

    @property
    def modifier_surfaces(self) -> frozenset[str]:
        """Surfaces of all modifiers."""
        return frozenset(m.surface for m in self.modifiers)


class QueryLog:
    """An in-memory query log: records, sessions, and (separate) gold labels."""

    def __init__(self) -> None:
        self._records: dict[str, QueryRecord] = {}
        self._sessions: list[SessionRecord] = []
        self._gold: dict[str, GoldLabel] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_record(
        self,
        query: str,
        frequency: int,
        clicks: Mapping[str, int],
        gold: GoldLabel | None = None,
    ) -> None:
        """Add (or merge) observations of one query string."""
        key = normalize(query)
        if not key:
            raise QueryLogError("query must be non-empty after normalization")
        existing = self._records.get(key)
        if existing is None:
            self._records[key] = QueryRecord(key, frequency, dict(clicks))
        else:
            merged = dict(existing.clicks)
            for url, count in clicks.items():
                merged[url] = merged.get(url, 0) + count
            self._records[key] = QueryRecord(
                key, existing.frequency + frequency, merged
            )
        if gold is not None and key not in self._gold:
            # First writer wins: when two intents collide on one surface
            # string, the generator emits the more frequent one first.
            self._gold[key] = gold

    def add_session(self, session: SessionRecord) -> None:
        """Append one session record."""
        self._sessions.append(session)

    # ------------------------------------------------------------------
    # the "observable log" interface (what mining is allowed to see)
    # ------------------------------------------------------------------
    def lookup(self, query: str) -> QueryRecord | None:
        """Record for an exact (normalized) query string, if present."""
        return self._records.get(normalize(query))

    def lookup_exact(self, key: str) -> QueryRecord | None:
        """Record stored under an *already-normalized* key.

        Hot-path variant of :meth:`lookup` for callers that have paid the
        normalization cost themselves (the incremental trainer's probe
        tracking resolves thousands of keys per fold).
        """
        return self._records.get(key)

    def records(self) -> Iterator[QueryRecord]:
        """Iterate over all query records."""
        yield from self._records.values()

    def sessions(self) -> Iterator[SessionRecord]:
        """Iterate over all session records."""
        yield from self._sessions

    @property
    def num_queries(self) -> int:
        """Number of distinct query strings."""
        return len(self._records)

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return len(self._sessions)

    @property
    def total_frequency(self) -> int:
        """Total query volume (sum of frequencies)."""
        return sum(r.frequency for r in self._records.values())

    # ------------------------------------------------------------------
    # ground truth (evaluation only — mining must not read this)
    # ------------------------------------------------------------------
    @property
    def gold_labels(self) -> Mapping[str, GoldLabel]:
        """Ground-truth labels by query (evaluation only)."""
        return self._gold

    def attach_gold(self, query: str, gold: GoldLabel) -> None:
        """Attach (or replace) the ground-truth label of a query."""
        key = normalize(query)
        if key not in self._records:
            raise QueryLogError(f"cannot label unknown query {query!r}")
        self._gold[key] = gold

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryLog(queries={self.num_queries}, sessions={self.num_sessions}, "
            f"volume={self.total_frequency})"
        )
