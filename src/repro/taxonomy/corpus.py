"""Synthetic web-corpus generator.

Probase's input was web text; ours is this generator. It renders the seed
knowledge base into English sentences that instantiate Hearst patterns, with
Zipf-shaped mention frequencies (popular instances are mentioned more, so
extraction counts — and therefore typicality — follow popularity), plus
pattern-free filler sentences so the extractor runs against realistic noise.

Running :func:`repro.taxonomy.hearst.extract_isa_pairs` over this corpus and
counting the results reconstructs (a noisy version of) the seed taxonomy —
the same build path Probase used, end to end.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.text.inflect import pluralize
from repro.taxonomy.seed_data import ConceptSeed, concept_seeds
from repro.utils.randx import rng_from_seed, weighted_choice
from repro.utils.mathx import zipf_weights

_TEMPLATES = (
    "{plural} such as {ilist} are popular this year",
    "many people prefer {plural} such as {ilist}",
    "such {plural} as {ilist} can be found online",
    "{ilist} and other {plural} are widely reviewed",
    "{ilist} or other {plural} may suit you better",
    "popular {plural} including {ilist} sell out quickly",
    "{plural} like {ilist} dominate the market",
    "{instance} is a {concept} that many people recommend",
)

_FILLER = (
    "the weather was pleasant for most of the week",
    "prices rose slightly compared to last month",
    "experts disagree about what happens next",
    "the store opens at nine and closes at six",
    "shipping is free for orders over fifty dollars",
    "the event was postponed because of the rain",
)


@dataclass(frozen=True, slots=True)
class CorpusConfig:
    """Knobs for corpus generation.

    ``sentences_per_concept`` scales extraction counts; ``zipf_exponent``
    controls how skewed instance popularity is (1.0 ≈ web text);
    ``filler_ratio`` is the fraction of pattern-free sentences mixed in.
    """

    seed: int = 7
    sentences_per_concept: int = 120
    zipf_exponent: float = 1.0
    filler_ratio: float = 0.3
    max_instances_per_sentence: int = 3

    def __post_init__(self) -> None:
        if self.sentences_per_concept <= 0:
            raise ValueError("sentences_per_concept must be positive")
        if not 0 <= self.filler_ratio < 1:
            raise ValueError("filler_ratio must be in [0, 1)")
        if self.max_instances_per_sentence <= 0:
            raise ValueError("max_instances_per_sentence must be positive")


def generate_corpus(
    config: CorpusConfig | None = None,
    seeds: tuple[ConceptSeed, ...] | None = None,
) -> Iterator[str]:
    """Yield synthetic web sentences for the given concept seeds."""
    config = config or CorpusConfig()
    seeds = seeds if seeds is not None else concept_seeds()
    rng = rng_from_seed(config.seed, "corpus")
    for concept_seed in seeds:
        weights = zipf_weights(len(concept_seed.instances), config.zipf_exponent)
        for _ in range(config.sentences_per_concept):
            if rng.random() < config.filler_ratio:
                yield rng.choice(_FILLER)
            yield _render_sentence(rng, concept_seed, weights, config)


def _render_sentence(rng, concept_seed: ConceptSeed, weights, config: CorpusConfig) -> str:
    template = rng.choice(_TEMPLATES)
    if "{instance}" in template:
        instance = weighted_choice(rng, concept_seed.instances, weights)
        return template.format(instance=instance, concept=concept_seed.concept)
    n = rng.randint(2, config.max_instances_per_sentence)
    chosen: list[str] = []
    for _ in range(n):
        pick = weighted_choice(rng, concept_seed.instances, weights)
        if pick not in chosen:
            chosen.append(pick)
    ilist = _join_list(chosen)
    return template.format(plural=pluralize(concept_seed.concept), ilist=ilist)


def _join_list(items: list[str]) -> str:
    """Render an instance list the way web text writes enumerations."""
    if len(items) == 1:
        return items[0]
    return ", ".join(items[:-1]) + " and " + items[-1]
