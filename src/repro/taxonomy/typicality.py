"""Typicality scoring over the isA taxonomy.

Conceptualization (paper step 2) needs two conditional distributions:

- ``P(concept | instance)`` — how typical is the concept as a reading of the
  instance ("apple" → company 0.7, fruit 0.3);
- ``P(instance | concept)`` — how representative is the instance of the
  concept ("iphone 5s" is a highly representative smartphone).

Both are maximum-likelihood estimates over edge counts with optional Laplace
smoothing across the observed candidates; the *representativeness* score
``P(c|i) * P(i|c)`` (used by Probase-family work to rank senses) is also
provided, as is instance ambiguity (sense entropy).
"""

from __future__ import annotations

from repro.text.normalizer import normalize_term
from repro.taxonomy.store import ConceptTaxonomy
from repro.utils.mathx import entropy


class TypicalityScorer:
    """Conditional-probability views over a :class:`ConceptTaxonomy`."""

    def __init__(self, taxonomy: ConceptTaxonomy, smoothing: float = 0.0) -> None:
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self._taxonomy = taxonomy
        self._smoothing = smoothing

    @property
    def taxonomy(self) -> ConceptTaxonomy:
        """The underlying taxonomy."""
        return self._taxonomy

    # ------------------------------------------------------------------
    # P(concept | instance)
    # ------------------------------------------------------------------
    def concept_distribution(self, instance: str) -> dict[str, float]:
        """Full ``P(concept | instance)`` distribution (empty when unknown)."""
        counts = self._taxonomy.concepts_of(instance)
        return self._smooth(counts)

    def p_concept_given_instance(self, instance: str, concept: str) -> float:
        """Typicality P(concept | instance); 0 when unknown."""
        return self.concept_distribution(instance).get(normalize_term(concept), 0.0)

    def top_concepts(self, instance: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` most typical concepts of an instance, best first.

        Ties are broken alphabetically so results are deterministic.
        """
        dist = self.concept_distribution(instance)
        return sorted(dist.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    # ------------------------------------------------------------------
    # P(instance | concept)
    # ------------------------------------------------------------------
    def instance_distribution(self, concept: str) -> dict[str, float]:
        """Full ``P(instance | concept)`` distribution (empty when unknown)."""
        counts = self._taxonomy.instances_of(concept)
        return self._smooth(counts)

    def p_instance_given_concept(self, instance: str, concept: str) -> float:
        """Representativeness P(instance | concept); 0 when unknown."""
        return self.instance_distribution(concept).get(normalize_term(instance), 0.0)

    # ------------------------------------------------------------------
    # derived scores
    # ------------------------------------------------------------------
    def representativeness(self, instance: str, concept: str) -> float:
        """``P(c|i) * P(i|c)``: high only when the sense is typical both ways."""
        return self.p_concept_given_instance(instance, concept) * self.p_instance_given_concept(
            instance, concept
        )

    def instance_ambiguity(self, instance: str) -> float:
        """Entropy (nats) of the sense distribution; 0 for unambiguous terms."""
        return entropy(self._taxonomy.concepts_of(instance).values())

    def concept_breadth(self, concept: str) -> float:
        """Entropy (nats) of a concept's instance distribution.

        Vague concepts ("thing") spread mass over many instances; specific
        ones concentrate it. Used as a constraint-classifier feature.
        """
        return entropy(self._taxonomy.instances_of(concept).values())

    def _smooth(self, counts) -> dict[str, float]:
        if not counts:
            return {}
        alpha = self._smoothing
        total = sum(counts.values()) + alpha * len(counts)
        return {key: (count + alpha) / total for key, count in counts.items()}
