"""Probase-style isA taxonomy substrate.

The paper conceptualizes instance-level head-modifier pairs through a large
isA network with co-occurrence counts (Probase). This package implements the
same data structure and the same construction pipeline:

- :mod:`repro.taxonomy.store` — instance↔concept edges with counts.
- :mod:`repro.taxonomy.typicality` — ``P(concept|instance)`` and
  ``P(instance|concept)`` with smoothing.
- :mod:`repro.taxonomy.seed_data` — a curated multi-domain knowledge base.
- :mod:`repro.taxonomy.corpus` — a synthetic web-corpus generator emitting
  Hearst-pattern sentences from the seed.
- :mod:`repro.taxonomy.hearst` — the Hearst-pattern extractor.
- :mod:`repro.taxonomy.builder` — builds a taxonomy from the seed directly
  or by running extraction over a corpus.
- :mod:`repro.taxonomy.serialization` — TSV save/load.
"""

from repro.taxonomy.builder import TaxonomyBuilder, build_from_corpus, build_from_seed
from repro.taxonomy.corpus import CorpusConfig, generate_corpus
from repro.taxonomy.hearst import HearstExtraction, extract_isa_pairs
from repro.taxonomy.seed_data import (
    ConceptSeed,
    PatternSeed,
    all_domains,
    concept_seeds,
    pattern_seeds,
)
from repro.taxonomy.serialization import load_taxonomy_tsv, save_taxonomy_tsv
from repro.taxonomy.store import ConceptTaxonomy
from repro.taxonomy.typicality import TypicalityScorer

__all__ = [
    "ConceptTaxonomy",
    "TypicalityScorer",
    "TaxonomyBuilder",
    "build_from_seed",
    "build_from_corpus",
    "CorpusConfig",
    "generate_corpus",
    "HearstExtraction",
    "extract_isa_pairs",
    "ConceptSeed",
    "PatternSeed",
    "concept_seeds",
    "pattern_seeds",
    "all_domains",
    "save_taxonomy_tsv",
    "load_taxonomy_tsv",
]
