"""Construct :class:`ConceptTaxonomy` objects.

Two build paths, matching how Probase-style taxonomies come to exist:

- :func:`build_from_seed` — materialize the curated seed directly with
  Zipf-shaped counts (fast; used by most of the pipeline and tests).
- :func:`build_from_corpus` — run Hearst extraction over raw sentences and
  count the observations (the full Probase path; exercised by tests and the
  ``taxonomy_from_text`` example).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TaxonomyError
from repro.taxonomy.hearst import HearstExtraction, extract_isa_pairs
from repro.taxonomy.seed_data import ConceptSeed, concept_seeds
from repro.taxonomy.store import ConceptTaxonomy
from repro.utils.mathx import zipf_weights


class TaxonomyBuilder:
    """Accumulates isA observations and produces a cleaned taxonomy."""

    def __init__(self) -> None:
        self._counts: dict[tuple[str, str], float] = {}
        self._domains: dict[str, str] = {}

    def add(self, instance: str, concept: str, count: float = 1.0) -> None:
        """Record ``count`` observations of ``instance isA concept``."""
        if count <= 0:
            raise TaxonomyError("observation count must be positive")
        key = (instance, concept)
        self._counts[key] = self._counts.get(key, 0.0) + count

    def add_extraction(self, extraction: HearstExtraction) -> None:
        """Record one Hearst extraction (counts as a single observation)."""
        self.add(extraction.instance, extraction.concept)

    def set_domain(self, concept: str, domain: str) -> None:
        """Attach a domain label to a concept."""
        self._domains[concept] = domain

    @property
    def num_observations(self) -> float:
        """Total observations accumulated so far."""
        return sum(self._counts.values())

    def build(self, min_count: float = 1.0) -> ConceptTaxonomy:
        """Produce the taxonomy, dropping edges observed fewer than
        ``min_count`` times (extraction-noise cleaning)."""
        taxonomy = ConceptTaxonomy()
        for (instance, concept), count in self._counts.items():
            if count >= min_count:
                taxonomy.add_edge(
                    instance, concept, count, domain=self._domains.get(concept)
                )
        return taxonomy


def build_from_seed(
    seeds: tuple[ConceptSeed, ...] | None = None,
    base_count: float = 1000.0,
    zipf_exponent: float = 0.8,
    include_hierarchy: bool = True,
) -> ConceptTaxonomy:
    """Materialize the seed knowledge base with rank-based Zipf counts.

    The most popular instance of each concept gets roughly
    ``base_count * w_1`` observations and the tail decays as a power law,
    mimicking the count distribution of a web-scale extraction.

    With ``include_hierarchy`` the concept hierarchy is materialized the
    Probase way: each concept becomes an *instance* of its super-concept
    in the same network.
    """
    seeds = seeds if seeds is not None else concept_seeds()
    taxonomy = ConceptTaxonomy()
    for seed in seeds:
        weights = zipf_weights(len(seed.instances), zipf_exponent)
        for instance, weight in zip(seed.instances, weights):
            count = max(1.0, round(base_count * weight))
            taxonomy.add_edge(instance, seed.concept, count, domain=seed.domain)
    if include_hierarchy and seeds is concept_seeds():
        from repro.taxonomy.seed_data import super_concept_seeds

        for concept, parent in super_concept_seeds():
            taxonomy.add_edge(concept, parent, base_count * 0.8, domain="general")
    return taxonomy


def build_from_corpus(
    sentences: Iterable[str],
    min_count: float = 2.0,
    domains: dict[str, str] | None = None,
) -> ConceptTaxonomy:
    """Run Hearst extraction over ``sentences`` and count the results.

    ``min_count`` drops hapax extractions, which in real corpora are
    dominated by pattern misfires.
    """
    builder = TaxonomyBuilder()
    for extraction in extract_isa_pairs(sentences):
        builder.add_extraction(extraction)
    for concept, domain in (domains or {}).items():
        builder.set_domain(concept, domain)
    return builder.build(min_count=min_count)
