"""Curated multi-domain isA seed knowledge base.

This stands in for Probase (the paper's taxonomy, built from billions of web
pages). It is small enough to audit by eye but structured like the real
thing: multi-word instances, Zipf-shaped popularity (the builder assigns
rank-based counts), deliberately ambiguous instances ("apple", "kindle",
"polo"), and per-domain concept-pair priors that the intent sampler uses to
generate realistic queries.

Two kinds of records:

- :class:`ConceptSeed` — a concept and its instances, ordered by intended
  popularity (rank 0 = most popular).
- :class:`PatternSeed` — a (modifier concept → head concept) pair with a
  prior weight; the query-log generator samples intents from these, and the
  mined concept patterns should recover them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cache


@dataclass(frozen=True, slots=True)
class ConceptSeed:
    """A concept with its instance list (most popular first)."""

    concept: str
    domain: str
    instances: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class PatternSeed:
    """A ground-truth concept-level head-modifier pattern.

    ``weight`` is the relative frequency with which the intent sampler uses
    this pattern inside its domain.
    """

    modifier_concept: str
    head_concept: str
    domain: str
    weight: float = 1.0


_CONCEPTS: tuple[ConceptSeed, ...] = (
    # ------------------------------------------------------------------
    # electronics
    # ------------------------------------------------------------------
    ConceptSeed(
        "smartphone",
        "electronics",
        (
            "iphone 5s", "galaxy s4", "iphone 5", "iphone 4s", "galaxy s3",
            "galaxy note 3", "nexus 5", "lumia 920", "htc one", "moto x",
            "xperia z1", "blackberry z10", "galaxy note 2", "nexus 4",
            "lumia 1020", "iphone 5c", "droid maxx", "lg g2", "oneplus one",
            "galaxy mega",
        ),
    ),
    ConceptSeed(
        "laptop",
        "electronics",
        (
            "macbook pro", "macbook air", "thinkpad x230", "dell xps 13",
            "chromebook pixel", "surface pro", "hp envy 15", "asus zenbook",
            "acer aspire s7", "toshiba satellite", "lenovo yoga",
            "dell inspiron 15", "alienware 14", "samsung ativ book",
            "vaio pro 13",
        ),
    ),
    ConceptSeed(
        "tablet",
        "electronics",
        (
            "ipad air", "ipad mini", "kindle fire", "nexus 7", "galaxy tab 3",
            "surface rt", "nook hd", "kindle", "ipad 2", "xperia tablet z",
        ),
    ),
    ConceptSeed(
        "camera",
        "electronics",
        (
            "canon eos 70d", "nikon d5300", "gopro hero 3", "sony a7",
            "canon rebel t5i", "nikon d3200", "fujifilm x100s",
            "panasonic lumix gh3", "olympus om d", "canon powershot s120",
        ),
    ),
    ConceptSeed(
        "phone accessory",
        "electronics",
        (
            "case", "charger", "screen protector", "smart cover", "battery",
            "headphones", "car mount", "armband", "stylus", "dock",
            "bluetooth headset", "cable", "flip cover", "power bank",
            "belt clip", "earbuds", "lens kit", "holster", "car charger",
            "wallet case",
        ),
    ),
    ConceptSeed(
        "computer accessory",
        "electronics",
        (
            "sleeve", "docking station", "keyboard", "mouse", "adapter",
            "cooling pad", "laptop bag", "usb hub", "external battery",
            "privacy screen", "trackball", "webcam", "laptop stand",
            "carrying case", "port replicator",
        ),
    ),
    ConceptSeed(
        "electronics brand",
        "electronics",
        (
            "apple", "samsung", "sony", "nokia", "htc", "lg", "motorola",
            "blackberry", "asus", "acer", "lenovo", "dell", "toshiba",
            "panasonic", "canon", "nikon", "microsoft", "google",
        ),
    ),
    ConceptSeed(
        "product information",
        "electronics",
        (
            "review", "price", "specs", "manual", "warranty", "release date",
            "comparison", "unboxing", "firmware update", "user guide",
            "troubleshooting", "battery life",
        ),
    ),
    # ------------------------------------------------------------------
    # travel
    # ------------------------------------------------------------------
    ConceptSeed(
        "city",
        "travel",
        (
            "new york", "london", "paris", "rome", "tokyo", "barcelona",
            "san francisco", "las vegas", "chicago", "amsterdam", "berlin",
            "sydney", "miami", "seattle", "boston", "venice", "dubai",
            "hong kong", "istanbul", "prague", "vienna", "lisbon", "madrid",
            "austin", "denver", "phoenix", "orlando", "honolulu",
            "new orleans", "washington dc",
        ),
    ),
    ConceptSeed(
        "country",
        "travel",
        (
            "italy", "france", "spain", "japan", "thailand", "mexico",
            "greece", "portugal", "ireland", "iceland", "croatia", "peru",
            "morocco", "vietnam", "turkey", "egypt", "brazil", "india",
        ),
    ),
    ConceptSeed(
        "lodging",
        "travel",
        (
            "hotels", "hostels", "resorts", "bed and breakfast",
            "vacation rentals", "apartments", "motels", "guest houses",
            "boutique hotels", "campsites", "villas", "inns",
        ),
    ),
    ConceptSeed(
        "attraction",
        "travel",
        (
            "museums", "beaches", "parks", "landmarks", "tours",
            "walking tours", "day trips", "nightlife", "markets", "zoos",
            "aquariums", "castles", "gardens", "churches",
        ),
    ),
    ConceptSeed(
        "travel service",
        "travel",
        (
            "flights", "car rental", "airport shuttle", "travel guide",
            "weather", "map", "itinerary", "travel insurance", "visa",
            "currency exchange", "train tickets", "city pass",
        ),
    ),
    # ------------------------------------------------------------------
    # autos
    # ------------------------------------------------------------------
    ConceptSeed(
        "car model",
        "autos",
        (
            "honda civic", "toyota camry", "ford focus", "toyota corolla",
            "honda accord", "ford f150", "chevy silverado", "vw golf",
            "nissan altima", "jeep wrangler", "subaru outback", "mazda 3",
            "hyundai elantra", "bmw 3 series", "audi a4", "vw polo",
            "dodge ram", "kia optima", "mini cooper", "tesla model s",
        ),
    ),
    ConceptSeed(
        "car brand",
        "autos",
        (
            "toyota", "honda", "ford", "chevrolet", "bmw", "audi",
            "volkswagen", "nissan", "hyundai", "jeep", "subaru", "mazda",
            "kia", "volvo", "jaguar", "porsche", "lexus", "tesla",
        ),
    ),
    ConceptSeed(
        "auto part",
        "autos",
        (
            "brake pads", "oil filter", "tires", "battery", "headlights",
            "spark plugs", "alternator", "windshield wipers", "air filter",
            "radiator", "floor mats", "timing belt", "fuel pump", "muffler",
            "catalytic converter", "shock absorbers", "tail lights",
            "side mirrors",
        ),
    ),
    ConceptSeed(
        "auto service",
        "autos",
        (
            "oil change", "repair", "maintenance schedule", "recall",
            "insurance", "lease deals", "towing", "inspection",
            "transmission repair", "detailing", "alignment", "tune up",
        ),
    ),
    # ------------------------------------------------------------------
    # food
    # ------------------------------------------------------------------
    ConceptSeed(
        "dish",
        "food",
        (
            "pizza", "lasagna", "sushi", "tacos", "pad thai", "ramen",
            "burgers", "pancakes", "risotto", "paella", "curry", "pho",
            "dumplings", "falafel", "meatloaf", "chili", "gumbo",
            "mac and cheese", "fried rice", "enchiladas",
        ),
    ),
    ConceptSeed(
        "ingredient",
        "food",
        (
            "chicken", "salmon", "tofu", "quinoa", "avocado", "eggplant",
            "mushrooms", "shrimp", "kale", "lentils", "chickpeas",
            "sweet potato", "ground beef", "zucchini", "spinach", "apple",
            "banana", "pumpkin",
        ),
    ),
    ConceptSeed(
        "diet",
        "food",
        (
            "vegan", "vegetarian", "gluten free", "keto", "paleo",
            "low carb", "dairy free", "whole30", "mediterranean",
            "low sodium",
        ),
    ),
    ConceptSeed(
        "food resource",
        "food",
        (
            "recipe", "recipes", "calories", "nutrition facts",
            "cooking time", "ingredients list", "meal plan", "substitutes",
            "side dishes", "marinade", "leftovers ideas",
        ),
    ),
    # ------------------------------------------------------------------
    # media
    # ------------------------------------------------------------------
    ConceptSeed(
        "actor",
        "media",
        (
            "tom hanks", "jennifer lawrence", "brad pitt", "meryl streep",
            "leonardo dicaprio", "sandra bullock", "johnny depp",
            "will smith", "julia roberts", "denzel washington",
            "scarlett johansson", "robert downey jr", "emma stone",
            "morgan freeman", "anne hathaway", "matt damon",
        ),
    ),
    ConceptSeed(
        "tv show",
        "media",
        (
            "breaking bad", "game of thrones", "the walking dead", "homeland",
            "house of cards", "downton abbey", "mad men", "sherlock",
            "big bang theory", "doctor who", "true detective", "dexter",
        ),
    ),
    ConceptSeed(
        "band",
        "media",
        (
            "the beatles", "coldplay", "radiohead", "u2", "daft punk",
            "arcade fire", "imagine dragons", "the rolling stones",
            "pink floyd", "nirvana", "metallica", "pearl jam",
        ),
    ),
    ConceptSeed(
        "media resource",
        "media",
        (
            "movies", "episodes", "soundtrack", "cast", "trailer",
            "season finale", "filmography", "albums", "lyrics", "tour dates",
            "box office", "quotes", "songs", "discography",
        ),
    ),
    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    ConceptSeed(
        "profession",
        "jobs",
        (
            "nurse", "software engineer", "teacher", "accountant",
            "electrician", "graphic designer", "data analyst", "paralegal",
            "pharmacist", "physical therapist", "welder", "dental hygienist",
            "project manager", "truck driver", "chef", "social worker",
        ),
    ),
    ConceptSeed(
        "job resource",
        "jobs",
        (
            "jobs", "salary", "resume", "interview questions",
            "cover letter", "certification", "training", "internships",
            "job description", "career path", "openings", "apprenticeship",
        ),
    ),
    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    ConceptSeed(
        "medical condition",
        "health",
        (
            "diabetes", "asthma", "migraine", "arthritis", "hypertension",
            "allergies", "insomnia", "anemia", "bronchitis", "eczema",
            "gout", "vertigo", "shingles", "anxiety", "heartburn",
            "sciatica",
        ),
    ),
    ConceptSeed(
        "health resource",
        "health",
        (
            "symptoms", "treatment", "diet", "medication", "causes",
            "home remedies", "prevention", "diagnosis", "exercises",
            "side effects", "pain relief", "specialist",
        ),
    ),
    # ------------------------------------------------------------------
    # fashion
    # ------------------------------------------------------------------
    ConceptSeed(
        "clothing item",
        "fashion",
        (
            "dress", "jacket", "jeans", "boots", "sneakers", "handbag",
            "scarf", "coat", "sweater", "skirt", "blazer", "polo",
            "leggings", "sandals", "watch", "sunglasses", "backpack",
            "raincoat",
        ),
    ),
    ConceptSeed(
        "fashion brand",
        "fashion",
        (
            "nike", "adidas", "zara", "gucci", "prada", "levis",
            "ralph lauren", "north face", "uniqlo", "burberry", "coach",
            "puma", "timberland", "lululemon",
        ),
    ),
    ConceptSeed(
        "fashion resource",
        "fashion",
        (
            "outfits", "size chart", "sale", "outlet", "lookbook",
            "new arrivals", "gift ideas", "styles", "trends",
            "care instructions",
        ),
    ),
    # ------------------------------------------------------------------
    # software
    # ------------------------------------------------------------------
    ConceptSeed(
        "application",
        "software",
        (
            "photoshop", "excel", "autocad", "itunes", "chrome", "skype",
            "spotify", "minecraft", "dropbox", "evernote", "quickbooks",
            "illustrator", "outlook", "vlc", "whatsapp", "instagram",
        ),
    ),
    ConceptSeed(
        "operating system",
        "software",
        (
            "windows 8", "windows 7", "os x mavericks", "ubuntu", "android",
            "ios 7", "windows xp", "debian", "fedora", "chrome os",
        ),
    ),
    ConceptSeed(
        "programming language",
        "software",
        (
            "python", "java", "javascript", "ruby", "php", "scala",
            "haskell", "perl", "go", "swift", "objective c", "clojure",
        ),
    ),
    ConceptSeed(
        "software resource",
        "software",
        (
            "tutorial", "download", "shortcuts", "plugins", "license",
            "update", "alternatives", "documentation", "templates",
            "keyboard shortcuts", "cheat sheet", "system requirements",
            "error codes", "drivers",
        ),
    ),
    # ------------------------------------------------------------------
    # sports
    # ------------------------------------------------------------------
    ConceptSeed(
        "sports team",
        "sports",
        (
            "lakers", "yankees", "real madrid", "manchester united",
            "patriots", "red sox", "barcelona fc", "cowboys", "celtics",
            "packers", "bulls", "dodgers", "seahawks", "heat", "broncos",
            "giants",
        ),
    ),
    ConceptSeed(
        "sport",
        "sports",
        (
            "tennis", "golf", "yoga", "running", "cycling", "swimming",
            "basketball", "soccer", "baseball", "skiing", "snowboarding",
            "surfing", "boxing", "climbing",
        ),
    ),
    ConceptSeed(
        "sports resource",
        "sports",
        (
            "tickets", "schedule", "roster", "jersey", "scores",
            "standings", "highlights", "trade rumors", "injury report",
            "draft picks",
        ),
    ),
    ConceptSeed(
        "sports equipment",
        "sports",
        (
            "racket", "clubs", "mat", "shoes", "helmet", "gloves",
            "goggles", "wetsuit", "skis", "board", "rope", "balls",
        ),
    ),
    # ------------------------------------------------------------------
    # gaming
    # ------------------------------------------------------------------
    ConceptSeed(
        "console",
        "gaming",
        (
            "ps4", "xbox one", "ps3", "xbox 360", "wii u", "nintendo 3ds",
            "psp", "wii", "ps vita", "sega genesis",
        ),
    ),
    ConceptSeed(
        "video game",
        "gaming",
        (
            "minecraft", "gta 5", "skyrim", "fifa 14", "call of duty ghosts",
            "candy crush", "halo 4", "the last of us", "portal 2",
            "mario kart", "tetris", "battlefield 4", "assassins creed 4",
            "pokemon x",
        ),
    ),
    ConceptSeed(
        "gaming accessory",
        "gaming",
        (
            "controller", "gaming headset", "memory card", "charging station",
            "steering wheel", "gamepad", "console stand", "carry bag",
            "av cable", "skin sticker",
        ),
    ),
    ConceptSeed(
        "game resource",
        "gaming",
        (
            "cheats", "walkthrough", "mods", "dlc", "achievements",
            "gameplay", "save file", "patch notes", "trophies", "tips",
            "multiplayer maps", "easter eggs",
        ),
    ),
    # ------------------------------------------------------------------
    # books
    # ------------------------------------------------------------------
    ConceptSeed(
        "author",
        "books",
        (
            "stephen king", "j k rowling", "george r r martin",
            "agatha christie", "dan brown", "ernest hemingway",
            "jane austen", "mark twain", "haruki murakami", "john grisham",
            "neil gaiman", "terry pratchett",
        ),
    ),
    ConceptSeed(
        "book resource",
        "books",
        (
            "books", "novels", "quotes", "biography", "reading order",
            "audiobooks", "box set", "first editions", "short stories",
            "new releases", "signed copies",
        ),
    ),
    # ------------------------------------------------------------------
    # pets
    # ------------------------------------------------------------------
    ConceptSeed(
        "dog breed",
        "pets",
        (
            "labrador", "golden retriever", "german shepherd", "poodle",
            "bulldog", "beagle", "chihuahua", "husky", "dachshund",
            "corgi", "pug", "border collie", "rottweiler",
        ),
    ),
    ConceptSeed(
        "pet resource",
        "pets",
        (
            "puppies", "training", "grooming", "temperament", "food",
            "rescue", "breeders", "names", "shedding", "lifespan",
            "health problems", "adoption",
        ),
    ),
    # ------------------------------------------------------------------
    # home
    # ------------------------------------------------------------------
    ConceptSeed(
        "appliance",
        "home",
        (
            "dishwasher", "refrigerator", "washing machine", "dryer",
            "microwave", "oven", "vacuum cleaner", "air conditioner",
            "water heater", "freezer", "coffee maker", "toaster",
        ),
    ),
    ConceptSeed(
        "appliance part",
        "home",
        (
            "door seal", "filter", "drain pump", "heating element",
            "thermostat", "drum belt", "compressor", "control board",
            "hose", "gasket", "shelf", "knob",
        ),
    ),
    # ------------------------------------------------------------------
    # cross-domain concepts
    # ------------------------------------------------------------------
    ConceptSeed(
        "fruit",
        "food",
        (
            "apple", "banana", "orange", "mango", "strawberry", "pineapple",
            "watermelon", "grape", "peach", "kiwi", "blueberry", "pear",
        ),
    ),
    ConceptSeed(
        "year",
        "general",
        ("2013", "2014", "2012", "2011", "2010", "2009", "2008"),
    ),
    ConceptSeed(
        "color",
        "general",
        (
            "black", "white", "red", "blue", "green", "pink", "silver",
            "gold", "purple", "navy", "gray",
        ),
    ),
)

_PATTERNS: tuple[PatternSeed, ...] = (
    # electronics: device/brand modifies accessory or info head
    PatternSeed("smartphone", "phone accessory", "electronics", 3.0),
    PatternSeed("smartphone", "product information", "electronics", 2.0),
    PatternSeed("laptop", "computer accessory", "electronics", 2.0),
    PatternSeed("laptop", "product information", "electronics", 1.5),
    PatternSeed("tablet", "phone accessory", "electronics", 1.0),
    PatternSeed("tablet", "product information", "electronics", 1.0),
    PatternSeed("camera", "product information", "electronics", 1.0),
    PatternSeed("electronics brand", "smartphone", "electronics", 1.0),
    PatternSeed("electronics brand", "laptop", "electronics", 0.8),
    PatternSeed("color", "phone accessory", "electronics", 0.6),
    PatternSeed("year", "smartphone", "electronics", 0.4),
    # travel: place modifies lodging/attraction/service head
    PatternSeed("city", "lodging", "travel", 3.0),
    PatternSeed("city", "attraction", "travel", 2.0),
    PatternSeed("city", "travel service", "travel", 1.5),
    PatternSeed("country", "lodging", "travel", 1.0),
    PatternSeed("country", "attraction", "travel", 1.0),
    PatternSeed("country", "travel service", "travel", 0.8),
    # autos
    PatternSeed("car model", "auto part", "autos", 3.0),
    PatternSeed("car model", "auto service", "autos", 1.5),
    PatternSeed("car brand", "auto part", "autos", 1.0),
    PatternSeed("car brand", "car model", "autos", 0.8),
    PatternSeed("year", "car model", "autos", 0.8),
    # food
    PatternSeed("dish", "food resource", "food", 3.0),
    PatternSeed("ingredient", "food resource", "food", 2.0),
    PatternSeed("diet", "food resource", "food", 1.5),
    PatternSeed("ingredient", "dish", "food", 1.0),
    PatternSeed("diet", "dish", "food", 1.0),
    # media
    PatternSeed("actor", "media resource", "media", 2.5),
    PatternSeed("tv show", "media resource", "media", 2.0),
    PatternSeed("band", "media resource", "media", 2.0),
    PatternSeed("year", "media resource", "media", 0.8),
    # jobs
    PatternSeed("profession", "job resource", "jobs", 3.0),
    PatternSeed("city", "job resource", "jobs", 1.0),
    # health
    PatternSeed("medical condition", "health resource", "health", 3.0),
    # fashion
    PatternSeed("fashion brand", "clothing item", "fashion", 2.5),
    PatternSeed("fashion brand", "fashion resource", "fashion", 1.5),
    PatternSeed("clothing item", "fashion resource", "fashion", 1.0),
    PatternSeed("color", "clothing item", "fashion", 1.0),
    # software
    PatternSeed("application", "software resource", "software", 3.0),
    PatternSeed("operating system", "software resource", "software", 2.0),
    PatternSeed("programming language", "software resource", "software", 2.0),
    # sports
    PatternSeed("sports team", "sports resource", "sports", 3.0),
    PatternSeed("sport", "sports equipment", "sports", 2.0),
    PatternSeed("sport", "sports resource", "sports", 1.0),
    # gaming
    PatternSeed("console", "gaming accessory", "gaming", 2.5),
    PatternSeed("console", "video game", "gaming", 2.0),
    PatternSeed("video game", "game resource", "gaming", 3.0),
    PatternSeed("console", "product information", "gaming", 0.8),
    # books
    PatternSeed("author", "book resource", "books", 3.0),
    PatternSeed("year", "book resource", "books", 0.5),
    # pets
    PatternSeed("dog breed", "pet resource", "pets", 3.0),
    # home
    PatternSeed("appliance", "appliance part", "home", 3.0),
    PatternSeed("appliance", "product information", "home", 1.2),
)


#: The concept hierarchy: (concept, super-concept). In Probase, concepts
#: are themselves instances of higher concepts in the same network; these
#: edges are materialized exactly that way by the builder, enabling
#: hierarchy-backoff generalization (experiment A4).
_SUPER_CONCEPTS: tuple[tuple[str, str], ...] = (
    ("smartphone", "device"),
    ("laptop", "device"),
    ("tablet", "device"),
    ("camera", "device"),
    ("phone accessory", "accessory"),
    ("computer accessory", "accessory"),
    ("gaming accessory", "accessory"),
    ("console", "device"),
    ("appliance", "device"),
    ("auto part", "part"),
    ("appliance part", "part"),
    ("city", "place"),
    ("country", "place"),
    ("electronics brand", "brand"),
    ("car brand", "brand"),
    ("fashion brand", "brand"),
    ("dish", "food"),
    ("ingredient", "food"),
    ("product information", "information resource"),
    ("food resource", "information resource"),
    ("media resource", "information resource"),
    ("job resource", "information resource"),
    ("health resource", "information resource"),
    ("software resource", "information resource"),
    ("sports resource", "information resource"),
    ("fashion resource", "information resource"),
    ("travel service", "information resource"),
    ("game resource", "information resource"),
    ("book resource", "information resource"),
    ("pet resource", "information resource"),
    # Multiple parents are allowed (Probase concepts typically have many):
    # the "product" layer cross-cuts the device/vehicle/media split.
    ("smartphone", "product"),
    ("laptop", "product"),
    ("tablet", "product"),
    ("camera", "product"),
    ("console", "product"),
    ("appliance", "product"),
    ("car model", "product"),
    ("clothing item", "product"),
    ("video game", "product"),
    ("application", "product"),
)


@cache
def super_concept_seeds() -> tuple[tuple[str, str], ...]:
    """Validated (concept, super-concept) pairs."""
    names = {seed.concept for seed in concept_seeds()}
    for concept, parent in _SUPER_CONCEPTS:
        if concept not in names:
            raise ValueError(f"super-concept edge references unknown concept: {concept}")
        if parent in names:
            raise ValueError(f"super-concept {parent} collides with a base concept")
    return _SUPER_CONCEPTS


@cache
def concept_seeds() -> tuple[ConceptSeed, ...]:
    """All concept seeds, validated once on first access."""
    seen = set()
    for seed in _CONCEPTS:
        if seed.concept in seen:
            raise ValueError(f"duplicate concept seed: {seed.concept}")
        seen.add(seed.concept)
        if not seed.instances:
            raise ValueError(f"concept seed {seed.concept} has no instances")
    return _CONCEPTS


@cache
def pattern_seeds() -> tuple[PatternSeed, ...]:
    """All ground-truth concept patterns, validated against the concepts."""
    names = {seed.concept for seed in concept_seeds()}
    for pattern in _PATTERNS:
        for concept in (pattern.modifier_concept, pattern.head_concept):
            if concept not in names:
                raise ValueError(f"pattern references unknown concept: {concept}")
        if pattern.weight <= 0:
            raise ValueError("pattern weight must be positive")
    return _PATTERNS


def all_domains() -> tuple[str, ...]:
    """Sorted distinct domains appearing in the pattern seeds."""
    return tuple(sorted({p.domain for p in pattern_seeds()}))


def seeds_for_domain(domain: str) -> tuple[PatternSeed, ...]:
    """Pattern seeds restricted to one domain."""
    return tuple(p for p in pattern_seeds() if p.domain == domain)
