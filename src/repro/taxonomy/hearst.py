"""Hearst-pattern isA extraction.

Probase was built by running Hearst patterns ("NP such as NP, NP and NP")
over web text at scale. This module is that extractor: it consumes raw
sentences and yields ``(instance, concept)`` observations; the taxonomy
builder counts repeated observations into edge weights.

Patterns supported (concept position marked ``C``, instances ``I``):

==============  =============================================
name            example
==============  =============================================
``such_as``     "C such as I, I and I"
``such_np_as``  "such C as I and I"
``and_other``   "I, I and other C"
``or_other``    "I or other C"
``including``   "C including I and I"
``especially``  "C especially I"
``like``        "C like I and I"
``is_a``        "I is a C"
==============  =============================================

Because the patterns are regular expressions over free text, the raw
captures carry surrounding sentence context ("many people prefer
smartphones such as ..."). The cleaning pass trims captures at *boundary
words* (be-forms, modals, common verbs) and strips leading determiners and
evaluative adjectives — the shallow-NP approximation large-scale extraction
systems actually use.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.text.inflect import singularize
from repro.text.lexicon import STOPWORDS, default_lexicon

#: A concept mention: one to three words, no digits (concept names are
#: class nouns, not model numbers).
_CONCEPT = r"(?P<concept>[a-z]+(?: [a-z]+){0,2})"
#: An instance list: words/numbers separated by commas / "and" / "or".
_ILIST = (
    r"(?P<instances>[a-z0-9$%.'][a-z0-9$%.' ]*"
    r"(?:, [a-z0-9$%.' ]+)*(?: (?:and|or) [a-z0-9$%.' ]+)?)"
)

#: (pattern name, regex, concept position relative to the instance list).
#: An optional comma is tolerated before each trigger ("cities, such as").
_PATTERNS: tuple[tuple[str, re.Pattern[str], str], ...] = (
    ("such_as", re.compile(rf"{_CONCEPT},? such as {_ILIST}"), "before"),
    ("such_np_as", re.compile(rf"such {_CONCEPT} as {_ILIST}"), "before"),
    ("and_other", re.compile(rf"{_ILIST},? and other {_CONCEPT}"), "after"),
    ("or_other", re.compile(rf"{_ILIST},? or other {_CONCEPT}"), "after"),
    ("including", re.compile(rf"{_CONCEPT},? including {_ILIST}"), "before"),
    ("especially", re.compile(rf"{_CONCEPT},? especially {_ILIST}"), "before"),
    ("like", re.compile(rf"{_CONCEPT},? like {_ILIST}"), "before"),
    (
        "is_a",
        re.compile(r"(?P<instances>[a-z0-9$%.' ]+?) is an? (?P<concept>[a-z]+(?: [a-z]+){0,2})"),
        "after",
    ),
)

_LIST_SPLIT = re.compile(r", | and | or ")

#: Words that terminate an NP capture: be-forms, modals, frequent verbs.
_BOUNDARY_WORDS = frozenset(
    """
    is are was were be been being am
    can could will would may might shall should must
    prefer prefers sell sells sold dominate dominates recommend
    recommends suit suits remain remains become becomes seem seems
    offer offers include includes provide provides
    """.split()
)

#: Upper bound on instance length; longer spans are list-parse noise.
_MAX_INSTANCE_TOKENS = 4


@dataclass(frozen=True, slots=True)
class HearstExtraction:
    """One extracted isA observation."""

    instance: str
    concept: str
    pattern: str


def extract_isa_pairs(sentences: Iterable[str]) -> Iterator[HearstExtraction]:
    """Run all Hearst patterns over ``sentences``.

    Sentences are normalized first; extraction is case/punctuation
    insensitive. The same (instance, concept) pair may be yielded many
    times — counting duplicates is the builder's job, because repeated
    observation is exactly what the edge weights mean.
    """
    for sentence in sentences:
        yield from extract_from_sentence(sentence)


_HEARST_STRIP_RE = re.compile(r"[^\w\s,$%.']", re.UNICODE)
_WS_RE = re.compile(r"\s+")
_COMMA_RE = re.compile(r"\s*,\s*")


def _normalize_for_extraction(sentence: str) -> str:
    """Like :func:`repro.text.normalizer.normalize` but keeps commas —
    Hearst list boundaries live in the punctuation."""
    import unicodedata

    text = unicodedata.normalize("NFKC", sentence).lower()
    text = re.sub(r"[-–—_/]+", " ", text)
    text = _HEARST_STRIP_RE.sub(" ", text)
    text = _COMMA_RE.sub(", ", text)
    return _WS_RE.sub(" ", text).strip()


def extract_from_sentence(sentence: str) -> Iterator[HearstExtraction]:
    """Extractions from one sentence (several patterns may match)."""
    norm = _normalize_for_extraction(sentence)
    for name, pattern, position in _PATTERNS:
        for match in pattern.finditer(norm):
            concept = _clean_concept(match.group("concept"), position)
            if concept is None:
                continue
            elements = _LIST_SPLIT.split(match.group("instances"))
            for index, raw in enumerate(elements):
                instance = _clean_instance(
                    raw, index == 0, index == len(elements) - 1, position
                )
                if instance is not None and instance != concept:
                    yield HearstExtraction(instance, concept, name)


def _clean_concept(raw: str, position: str) -> str | None:
    """Trim sentence context from a concept capture and singularize it.

    ``position`` is where the concept sits relative to the instance list:
    ``"before"`` captures may carry a *leading* clause ("people prefer
    smartphones"), ``"after"`` captures a *trailing* one ("smartphones that
    many people recommend" is prevented by the boundary cut).
    """
    words = raw.split()
    if position == "before":
        words = _after_last_boundary(words)
    else:
        words = _before_first_boundary(words)
        words = _strip_trailing_context(words)
    words = _strip_leading_context(words)
    if not words or len(words) > 3:
        return None
    return singularize(" ".join(words))


def _clean_instance(
    raw: str, is_first: bool, is_last: bool, position: str
) -> str | None:
    """Trim one element of an instance list.

    The last element may run into the rest of the sentence. The first may
    carry the clause preceding the pattern — but *only* in patterns whose
    instance list comes before the trigger (``position == "after"``); in
    "C such as I..." patterns the list starts right at the trigger, so
    leading words are part of the name ("the beatles"). "the" is never
    stripped: titled names keep it, as Probase does.
    """
    words = raw.strip().split()
    # Trailing context first: a single-element list carries both kinds of
    # context, and a boundary word in the tail must not anchor the
    # leading cut ("iphone 5s are widely reviewed").
    if is_last:
        words = _before_first_boundary(words)
    if is_first and position == "after":
        words = _after_last_boundary(words)
        while words and words[0] in STOPWORDS and words[0] != "the":
            words = words[1:]
    if not words or len(words) > _MAX_INSTANCE_TOKENS:
        return None
    return " ".join(words)


def _after_last_boundary(words: list[str]) -> list[str]:
    for i in range(len(words) - 1, -1, -1):
        if words[i] in _BOUNDARY_WORDS:
            return words[i + 1 :]
    return words


def _before_first_boundary(words: list[str]) -> list[str]:
    # Position 0 is exempt: an element may legitimately *be* a word that
    # doubles as a verb elsewhere ("download", "watch").
    for i in range(1, len(words)):
        if words[i] in _BOUNDARY_WORDS:
            return words[:i]
    return words


def _strip_leading_context(words: list[str]) -> list[str]:
    """Drop leading determiners/quantifiers/evaluative adjectives."""
    lexicon = default_lexicon()
    skip = {"many", "most", "some", "few", "several", "other", "various", "all"}
    while words and (
        words[0] in lexicon.determiners
        or words[0] in lexicon.subjective
        or words[0] in skip
    ):
        words = words[1:]
    return words


def _strip_trailing_context(words: list[str]) -> list[str]:
    """Drop a trailing relative-clause opener ("that", "which", "who")."""
    openers = {"that", "which", "who", "where", "when"}
    for i, word in enumerate(words):
        if word in openers:
            return words[:i]
    return words
