"""The isA taxonomy store: instance↔concept edges with co-occurrence counts.

This mirrors Probase's core table: ``(instance, concept, count)`` where
``count`` is how often the pair was observed in extraction. Both directions
are indexed because conceptualization needs ``P(concept | instance)`` while
pattern instantiation and the query-log generator need
``P(instance | concept)``.

All keys are normalized with :func:`repro.text.normalizer.normalize_term`
at insertion *and* lookup, so callers never worry about case or dashes.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import TaxonomyError
from repro.text.normalizer import normalize_term


class ConceptTaxonomy:
    """A weighted bipartite isA network.

    >>> t = ConceptTaxonomy()
    >>> t.add_edge("iphone 5s", "smartphone", count=120)
    >>> t.add_edge("iphone 5s", "gadget", count=30)
    >>> t.concepts_of("IPhone-5S")["smartphone"]
    120.0
    """

    def __init__(self) -> None:
        self._instance_concepts: dict[str, dict[str, float]] = {}
        self._concept_instances: dict[str, dict[str, float]] = {}
        self._concept_domain: dict[str, str] = {}
        self._total = 0.0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(
        self,
        instance: str,
        concept: str,
        count: float = 1.0,
        domain: str | None = None,
    ) -> None:
        """Add (or accumulate) an isA observation."""
        if count <= 0:
            raise TaxonomyError(f"edge count must be positive, got {count}")
        inst = normalize_term(instance)
        conc = normalize_term(concept)
        if not inst or not conc:
            raise TaxonomyError("instance and concept must be non-empty")
        if inst == conc:
            raise TaxonomyError(f"self-loop rejected: {inst!r} isA {conc!r}")
        self._instance_concepts.setdefault(inst, {})
        self._instance_concepts[inst][conc] = (
            self._instance_concepts[inst].get(conc, 0.0) + count
        )
        self._concept_instances.setdefault(conc, {})
        self._concept_instances[conc][inst] = (
            self._concept_instances[conc].get(inst, 0.0) + count
        )
        self._total += count
        if domain:
            self._concept_domain[conc] = domain

    def merge(self, other: "ConceptTaxonomy") -> None:
        """Accumulate all edges (and domain labels) of ``other`` into self."""
        for instance, concept, count in other.iter_edges():
            self.add_edge(instance, concept, count, domain=other.domain_of(concept))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def concepts_of(self, instance: str) -> Mapping[str, float]:
        """Concept → count for an instance (empty mapping when unknown)."""
        return self._instance_concepts.get(normalize_term(instance), {})

    def instances_of(self, concept: str) -> Mapping[str, float]:
        """Instance → count for a concept (empty mapping when unknown)."""
        return self._concept_instances.get(normalize_term(concept), {})

    def has_instance(self, instance: str) -> bool:
        """Whether the phrase is a known instance."""
        return normalize_term(instance) in self._instance_concepts

    def has_concept(self, concept: str) -> bool:
        """Whether the phrase is a known concept."""
        return normalize_term(concept) in self._concept_instances

    def edge_count(self, instance: str, concept: str) -> float:
        """Observation count of one edge (0 when absent)."""
        return self.concepts_of(instance).get(normalize_term(concept), 0.0)

    def instance_total(self, instance: str) -> float:
        """Total observations of an instance across all its concepts."""
        return sum(self.concepts_of(instance).values())

    def concept_total(self, concept: str) -> float:
        """Total observations of a concept across all its instances."""
        return sum(self.instances_of(concept).values())

    def domain_of(self, concept: str) -> str | None:
        """Domain label attached to a concept, if any."""
        return self._concept_domain.get(normalize_term(concept))

    # ------------------------------------------------------------------
    # enumeration / statistics
    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Number of distinct instances."""
        return len(self._instance_concepts)

    @property
    def num_concepts(self) -> int:
        """Number of distinct concepts."""
        return len(self._concept_instances)

    @property
    def num_edges(self) -> int:
        """Number of distinct isA edges."""
        return sum(len(cs) for cs in self._instance_concepts.values())

    @property
    def total_count(self) -> float:
        """Sum of all edge counts (the extraction corpus mass)."""
        return self._total

    def iter_instances(self) -> Iterator[str]:
        """Iterate over all instance strings."""
        return iter(self._instance_concepts)

    def iter_concepts(self) -> Iterator[str]:
        """Iterate over all concept strings."""
        return iter(self._concept_instances)

    def iter_edges(self) -> Iterator[tuple[str, str, float]]:
        """Yield every ``(instance, concept, count)`` edge."""
        for instance, concepts in self._instance_concepts.items():
            for concept, count in concepts.items():
                yield instance, concept, count

    def vocabulary(self) -> frozenset[str]:
        """All instance surface forms — the segmenter's dictionary."""
        return frozenset(self._instance_concepts)

    def max_instance_tokens(self) -> int:
        """Longest instance length in tokens (bounds segmentation search)."""
        if not self._instance_concepts:
            return 0
        return max(len(inst.split()) for inst in self._instance_concepts)

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def pruned(self, min_count: float) -> "ConceptTaxonomy":
        """A copy with every edge below ``min_count`` removed.

        Real extractions are noisy in the low-count tail; pruning is how
        Probase-style taxonomies are cleaned before use.
        """
        result = ConceptTaxonomy()
        for instance, concept, count in self.iter_edges():
            if count >= min_count:
                result.add_edge(instance, concept, count, domain=self.domain_of(concept))
        return result

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConceptTaxonomy(instances={self.num_instances}, "
            f"concepts={self.num_concepts}, edges={self.num_edges})"
        )
