"""TSV persistence for taxonomies.

Format (one record per line, tab-separated), chosen to match how isA data
is customarily shipped (Probase's public release is a similar TSV):

.. code-block:: text

    # repro-taxonomy v1
    domain<TAB>concept<TAB>domain-name
    edge<TAB>instance<TAB>concept<TAB>count

Writes are atomic (temp file + rename) so a crashed run never leaves a
truncated taxonomy behind.
"""

from __future__ import annotations

import gzip
import os
import tempfile
from pathlib import Path
from typing import IO

from repro.errors import TaxonomyError
from repro.taxonomy.store import ConceptTaxonomy

_HEADER = "# repro-taxonomy v1"


def save_taxonomy_tsv(taxonomy: ConceptTaxonomy, path: str | Path) -> None:
    """Write ``taxonomy`` to ``path`` (gzip when the suffix is ``.gz``)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        with _open_write(tmp, gz=path.suffix == ".gz") as out:
            out.write(_HEADER + "\n")
            for concept in sorted(taxonomy.iter_concepts()):
                domain = taxonomy.domain_of(concept)
                if domain:
                    out.write(f"domain\t{concept}\t{domain}\n")
            for instance, concept, count in sorted(taxonomy.iter_edges()):
                # repr() gives the shortest float string that round-trips.
                out.write(f"edge\t{instance}\t{concept}\t{count!r}\n")
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)


def load_taxonomy_tsv(path: str | Path) -> ConceptTaxonomy:
    """Read a taxonomy written by :func:`save_taxonomy_tsv`.

    Raises :class:`TaxonomyError` for any malformed or truncated file,
    including a corrupt gzip stream.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        return _load_taxonomy_tsv(path)
    except (EOFError, OSError, UnicodeDecodeError) as exc:
        raise TaxonomyError(f"{path}: unreadable taxonomy file ({exc})") from exc


def _load_taxonomy_tsv(path: Path) -> ConceptTaxonomy:
    taxonomy = ConceptTaxonomy()
    domains: dict[str, str] = {}
    with _open_read(path, gz=path.suffix == ".gz") as handle:
        first = handle.readline().rstrip("\n")
        if first != _HEADER:
            raise TaxonomyError(f"{path}: not a repro taxonomy file (header {first!r})")
        for line_no, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if fields[0] == "domain" and len(fields) == 3:
                domains[fields[1]] = fields[2]
            elif fields[0] == "edge" and len(fields) == 4:
                try:
                    count = float(fields[3])
                except ValueError as exc:
                    raise TaxonomyError(f"{path}:{line_no}: bad count {fields[3]!r}") from exc
                taxonomy.add_edge(
                    fields[1], fields[2], count, domain=domains.get(fields[2])
                )
            else:
                raise TaxonomyError(f"{path}:{line_no}: malformed record {line!r}")
    return taxonomy


def _open_write(path: Path, gz: bool) -> IO[str]:
    if gz:
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path, gz: bool) -> IO[str]:
    if gz:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")
