"""Tests for repro.eval.datasets."""

import pytest

from repro.errors import EvaluationError
from repro.eval.datasets import build_eval_set, split_by_domain, unseen_pair_subset
from repro.mining.pairs import MinedPair, PairCollection


class TestBuildEvalSet:
    def test_examples_have_modifiers(self, heldout_log):
        examples = build_eval_set(heldout_log, min_modifiers=1)
        assert examples
        assert all(len(e.gold.modifiers) >= 1 for e in examples)

    def test_min_modifiers_zero_includes_heads(self, heldout_log):
        all_examples = build_eval_set(heldout_log, min_modifiers=0)
        strict = build_eval_set(heldout_log, min_modifiers=1)
        assert len(all_examples) > len(strict)

    def test_max_examples_cap(self, heldout_log):
        assert len(build_eval_set(heldout_log, max_examples=10)) == 10

    def test_deterministic_order(self, heldout_log):
        a = [e.query for e in build_eval_set(heldout_log, max_examples=50)]
        b = [e.query for e in build_eval_set(heldout_log, max_examples=50)]
        assert a == b

    def test_domain_filter(self, heldout_log):
        examples = build_eval_set(heldout_log, domains=("travel",))
        assert examples
        assert all(e.domain == "travel" for e in examples)

    def test_gold_head_always_in_query(self, heldout_log):
        for example in build_eval_set(heldout_log, max_examples=300):
            assert example.gold.head in example.query

    def test_negative_min_modifiers_rejected(self, heldout_log):
        with pytest.raises(EvaluationError):
            build_eval_set(heldout_log, min_modifiers=-1)


class TestUnseenPairSubset:
    def test_excludes_seen_pairs(self, eval_examples):
        pairs = PairCollection()
        example = eval_examples[0]
        modifier = example.gold.modifiers[0].surface
        pairs.add(MinedPair(modifier, example.gold.head, 10, "deletion"))
        unseen = unseen_pair_subset(eval_examples, pairs)
        assert example not in unseen

    def test_empty_pairs_keeps_all(self, eval_examples):
        assert len(unseen_pair_subset(eval_examples, PairCollection())) == len(
            eval_examples
        )

    def test_subset_of_input(self, eval_examples, model):
        unseen = unseen_pair_subset(eval_examples, model.pairs)
        assert set(e.query for e in unseen) <= set(e.query for e in eval_examples)


class TestSplitByDomain:
    def test_partition(self, eval_examples):
        grouped = split_by_domain(eval_examples)
        assert sum(len(v) for v in grouped.values()) == len(eval_examples)
        for domain, group in grouped.items():
            assert all(e.domain == domain for e in group)

    def test_keys_sorted(self, eval_examples):
        grouped = split_by_domain(eval_examples)
        assert list(grouped) == sorted(grouped)
