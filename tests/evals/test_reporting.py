"""Tests for repro.eval.reporting."""

import pytest

from repro.eval.reporting import format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "v"], [["a", 1.0], ["longer", 2.5]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in lines if "-" not in line)

    def test_floats_formatted(self):
        table = format_table(["x"], [[0.123456]])
        assert "0.123" in table

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"
        assert set(table.splitlines()[1]) == {"="}

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_rows_ok(self):
        table = format_table(["a"], [])
        assert "a" in table
