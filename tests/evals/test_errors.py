"""Tests for repro.eval.errors."""

from repro.baselines import SyntacticDetector
from repro.eval.errors import (
    collect_constraint_errors,
    collect_head_errors,
    format_head_error_report,
    summarize_head_errors,
)


class TestCollectHeadErrors:
    def test_good_detector_few_errors(self, detector, eval_examples):
        errors = collect_head_errors(detector, eval_examples[:300])
        assert len(errors) <= 10

    def test_weak_detector_many_errors(self, eval_examples):
        errors = collect_head_errors(SyntacticDetector(), eval_examples[:300])
        assert len(errors) > 50
        sample = errors[0]
        assert sample.predicted != sample.gold
        assert sample.domain

    def test_limit_respected(self, eval_examples):
        errors = collect_head_errors(SyntacticDetector(), eval_examples[:300], limit=5)
        assert len(errors) == 5

    def test_errors_reference_real_examples(self, eval_examples):
        by_query = {e.query: e for e in eval_examples[:200]}
        for error in collect_head_errors(SyntacticDetector(), eval_examples[:200]):
            assert error.query in by_query
            assert error.gold == by_query[error.query].gold.head


class TestCollectConstraintErrors:
    def test_rule_classifier_misses_weak_modifiers(self, eval_examples):
        from repro.core.constraints import RuleConstraintClassifier

        errors = collect_constraint_errors(
            RuleConstraintClassifier(), eval_examples
        )
        # The rule baseline's known blind spot: weak-concept modifiers
        # (colors/years) that gold marks non-constraint.
        assert errors
        assert all(e.predicted_constraint != e.gold_constraint for e in errors)

    def test_limit(self, eval_examples):
        from repro.core.constraints import RuleConstraintClassifier

        errors = collect_constraint_errors(
            RuleConstraintClassifier(), eval_examples, limit=3
        )
        assert len(errors) <= 3


class TestReporting:
    def test_summary_counters(self, eval_examples):
        errors = collect_head_errors(SyntacticDetector(), eval_examples[:200])
        summary = summarize_head_errors(errors)
        assert sum(summary["by_domain"].values()) == len(errors)
        assert sum(summary["by_method"].values()) == len(errors)

    def test_report_format(self, eval_examples):
        errors = collect_head_errors(SyntacticDetector(), eval_examples[:200])
        report = format_head_error_report(errors, max_rows=5)
        assert "head errors" in report
        assert "by domain:" in report
        assert "by method:" in report

    def test_empty_report(self):
        assert format_head_error_report([]) == "no head errors"
