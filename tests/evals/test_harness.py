"""Tests for repro.eval.harness."""

import pytest

from repro.core.detector import DetectedTerm, Detection, TermRole
from repro.eval.datasets import EvalExample
from repro.eval.harness import (
    evaluate_constraints,
    evaluate_head_detection,
)
from repro.querylog.models import GoldLabel, GoldModifier


class FixedDetector:
    """Returns canned detections for testing the harness arithmetic."""

    def __init__(self, answers):
        self._answers = answers

    def detect(self, query):
        return self._answers[query]


def example(query, head, modifiers=()):
    return EvalExample(
        query=query,
        gold=GoldLabel(
            head=head,
            modifiers=tuple(GoldModifier(m, True, None) for m in modifiers),
            domain="d",
        ),
    )


def detection(query, head, modifiers=(), method="pattern"):
    terms = []
    if head is not None:
        terms.append(DetectedTerm(head, TermRole.HEAD, "instance"))
    for modifier in modifiers:
        terms.append(DetectedTerm(modifier, TermRole.MODIFIER, "instance"))
    return Detection(query=query, terms=tuple(terms), score=1.0, method=method)


class TestEvaluateHeadDetection:
    def test_perfect_score(self):
        examples = [example("a b", "b", ["a"])]
        detector = FixedDetector({"a b": detection("a b", "b", ["a"])})
        result = evaluate_head_detection(detector, examples)
        assert result.head_accuracy == 1.0
        assert result.coverage == 1.0
        assert result.modifier_metrics.f1 == 1.0

    def test_wrong_head_counts_against_accuracy(self):
        examples = [example("a b", "b")]
        detector = FixedDetector({"a b": detection("a b", "a")})
        result = evaluate_head_detection(detector, examples)
        assert result.head_accuracy == 0.0
        assert result.coverage == 1.0

    def test_abstention_reduces_coverage_not_precision(self):
        examples = [example("a b", "b"), example("c d", "d")]
        detector = FixedDetector(
            {
                "a b": detection("a b", "b"),
                "c d": detection("c d", None, method="abstain"),
            }
        )
        result = evaluate_head_detection(detector, examples)
        assert result.head_accuracy == 0.5
        assert result.head_precision == 1.0
        assert result.coverage == 0.5

    def test_fallback_counted(self):
        examples = [example("a b", "b")]
        detector = FixedDetector({"a b": detection("a b", "b", method="fallback")})
        result = evaluate_head_detection(detector, examples)
        assert result.evidence_rate == 0.0
        assert result.head_accuracy == 1.0

    def test_modifier_metrics_aggregate(self):
        examples = [example("a b c", "c", ["a", "b"])]
        detector = FixedDetector({"a b c": detection("a b c", "c", ["a"])})
        result = evaluate_head_detection(detector, examples)
        assert result.modifier_metrics.precision == 1.0
        assert result.modifier_metrics.recall == 0.5


class FixedClassifier:
    def __init__(self, constraint_set):
        self._constraints = constraint_set

    def is_constraint(self, query, modifier):
        return modifier in self._constraints


class TestEvaluateConstraints:
    def make_examples(self):
        gold = GoldLabel(
            head="case",
            modifiers=(
                GoldModifier("iphone 5s", True, "smartphone"),
                GoldModifier("best", False, None),
            ),
            domain="electronics",
        )
        return [EvalExample("best iphone 5s case", gold)]

    def test_perfect(self):
        result = evaluate_constraints(FixedClassifier({"iphone 5s"}), self.make_examples())
        assert result.accuracy == 1.0
        assert result.f1 == 1.0
        assert result.n_modifiers == 2

    def test_over_prediction_hits_precision(self):
        result = evaluate_constraints(
            FixedClassifier({"iphone 5s", "best"}), self.make_examples()
        )
        assert result.precision == 0.5
        assert result.recall == 1.0
        assert result.accuracy == 0.5

    def test_under_prediction_hits_recall(self):
        result = evaluate_constraints(FixedClassifier(set()), self.make_examples())
        assert result.recall == 0.0
        assert result.accuracy == 0.5
