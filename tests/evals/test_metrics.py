"""Tests for repro.eval.metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval.metrics import (
    SetMetrics,
    average_precision_at_k,
    ndcg_at_k,
    precision_at_k,
    precision_recall_f1,
)


class TestSetMetrics:
    def test_perfect(self):
        metrics = precision_recall_f1({"a", "b"}, {"a", "b"})
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_partial(self):
        metrics = precision_recall_f1({"a", "x"}, {"a", "b"})
        assert metrics.precision == 0.5
        assert metrics.recall == 0.5
        assert metrics.f1 == 0.5

    def test_empty_prediction(self):
        metrics = precision_recall_f1(set(), {"a"})
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_empty_gold(self):
        metrics = precision_recall_f1({"a"}, set())
        assert metrics.precision == 0.0
        assert metrics.false_positives == 1

    def test_addition_aggregates(self):
        a = SetMetrics(1, 0, 1)
        b = SetMetrics(1, 2, 0)
        combined = a + b
        assert combined.true_positives == 2
        assert combined.false_positives == 2
        assert combined.false_negatives == 1

    @given(
        st.sets(st.sampled_from("abcdef"), max_size=6),
        st.sets(st.sampled_from("abcdef"), max_size=6),
    )
    def test_counts_consistent(self, predicted, gold):
        metrics = precision_recall_f1(predicted, gold)
        assert metrics.true_positives + metrics.false_positives == len(predicted)
        assert metrics.true_positives + metrics.false_negatives == len(gold)
        assert 0 <= metrics.f1 <= 1


class TestNdcg:
    def test_ideal_ranking(self):
        assert ndcg_at_k([3, 2, 1, 0], 4) == pytest.approx(1.0)

    def test_worst_ranking(self):
        assert ndcg_at_k([0, 0, 0, 3], 4) < 1.0

    def test_all_irrelevant(self):
        assert ndcg_at_k([0, 0, 0], 3) == 0.0

    def test_k_cuts_list(self):
        # Relevance beyond k is ignored in DCG but counted in the ideal.
        assert ndcg_at_k([0, 0, 3], 2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            ndcg_at_k([1], 0)

    @given(st.lists(st.floats(0, 3), min_size=1, max_size=10), st.integers(1, 10))
    def test_bounded(self, relevances, k):
        assert 0 <= ndcg_at_k(relevances, k) <= 1 + 1e-9


class TestPrecisionAtK:
    def test_basic(self):
        assert precision_at_k([True, False, True], 2) == 0.5

    def test_short_list(self):
        assert precision_at_k([True], 5) == 1.0

    def test_empty(self):
        assert precision_at_k([], 3) == 0.0

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at_k([True], 0)


class TestAveragePrecision:
    def test_perfect_prefix(self):
        assert average_precision_at_k([True, True, False], 3) == pytest.approx(1.0)

    def test_late_hit_discounted(self):
        assert average_precision_at_k([False, True], 2) == pytest.approx(0.5)

    def test_no_hits(self):
        assert average_precision_at_k([False, False], 2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            average_precision_at_k([True], 0)
