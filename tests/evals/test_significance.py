"""Tests for repro.eval.significance."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.significance import (
    BootstrapCI,
    bootstrap_ci,
    head_correctness,
    paired_bootstrap_test,
)


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        outcomes = [True] * 80 + [False] * 20
        ci = bootstrap_ci(outcomes, seed=1)
        assert ci.lower <= ci.estimate <= ci.upper
        assert ci.estimate == pytest.approx(0.8)

    def test_degenerate_all_true(self):
        ci = bootstrap_ci([True] * 50, seed=1)
        assert ci.lower == ci.upper == ci.estimate == 1.0

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(0)
        small = rng.random(50) < 0.7
        large = rng.random(5000) < 0.7
        ci_small = bootstrap_ci(small, seed=1)
        ci_large = bootstrap_ci(large, seed=1)
        assert (ci_large.upper - ci_large.lower) < (ci_small.upper - ci_small.lower)

    def test_deterministic_given_seed(self):
        outcomes = [True, False] * 25
        assert bootstrap_ci(outcomes, seed=9) == bootstrap_ci(outcomes, seed=9)

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([])

    def test_bad_confidence_raises(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([True], confidence=1.5)


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self):
        a = [False] * 60 + [True] * 40
        b = [True] * 90 + [False] * 10
        result = paired_bootstrap_test(a, b, seed=2)
        assert result.delta == pytest.approx(0.5)
        assert result.significant()

    def test_identical_systems_not_significant(self):
        a = [True, False] * 50
        result = paired_bootstrap_test(a, a, seed=2)
        assert result.delta == 0.0
        assert not result.significant()

    def test_small_noisy_delta_not_significant(self):
        rng = np.random.default_rng(3)
        a = rng.random(30) < 0.5
        b = a.copy()
        flip = rng.integers(0, 30, size=2)
        b[flip] = ~b[flip]
        result = paired_bootstrap_test(a, b, seed=2)
        assert result.p_value > 0.01

    def test_misaligned_raises(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap_test([True], [True, False])

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap_test([], [])


class TestHeadCorrectness:
    def test_on_trained_detector(self, detector, eval_examples):
        outcomes = head_correctness(detector, eval_examples[:100])
        assert len(outcomes) == 100
        assert sum(outcomes) >= 90

    def test_concept_vs_syntactic_significant(self, detector, eval_examples):
        from repro.baselines import SyntacticDetector

        examples = eval_examples[:400]
        concept = head_correctness(detector, examples)
        syntactic = head_correctness(SyntacticDetector(), examples)
        result = paired_bootstrap_test(syntactic, concept, seed=5)
        assert result.significant(alpha=0.01)
