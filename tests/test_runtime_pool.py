"""Persistent pool serving, sharded-batch failure handling, and shard()
edge cases.

The pool contract: results identical to in-process detection, workers
reused across batches, deterministic shutdown, and worker failures
surfaced as :class:`~repro.errors.ShardError` naming the offending
chunk/shard — never a hang.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, ShardError
from repro.runtime import DetectorPool, detect_batch_sharded, shard
from repro.runtime.pool import MAX_CHUNK_SIZE


@pytest.fixture(scope="module")
def compiled(model):
    return model.compile()


@pytest.fixture(scope="module")
def snapshot_path(compiled, tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "model.hdms"
    compiled.save_snapshot(path)
    return path


@pytest.fixture(scope="module")
def queries(eval_examples):
    return [example.query for example in eval_examples[:24]]


class TestDetectorPool:
    def test_batches_match_serial_and_workers_persist(
        self, snapshot_path, compiled, queries
    ):
        serial = [compiled.detect(query) for query in queries]
        with DetectorPool(snapshot_path, workers=2) as pool:
            first = pool.detect_batch(queries)
            executor = pool._executor
            second = pool.detect_batch(queries)
            assert pool._executor is executor  # reused, not respawned
        assert first == serial
        assert second == serial

    def test_dedupes_and_preserves_order(self, snapshot_path):
        texts = ["hotel paris", "iphone 5s", "hotel paris"]
        with DetectorPool(snapshot_path, workers=2) as pool:
            out = pool.detect_batch(texts)
        assert [d.query for d in out] == texts
        assert out[0] is out[2]  # duplicate shares the Detection

    def test_empty_batch_never_spawns(self, snapshot_path):
        pool = DetectorPool(snapshot_path, workers=4)
        assert pool.detect_batch([]) == []
        assert pool._executor is None
        pool.close()

    def test_warm_spawns_eagerly(self, snapshot_path):
        with DetectorPool(snapshot_path, workers=2) as pool:
            pool.warm()
            assert pool._executor is not None
            assert pool.detect_batch(["iphone 5s"])[0].query == "iphone 5s"

    def test_close_is_idempotent_and_final(self, snapshot_path):
        pool = DetectorPool(snapshot_path, workers=2)
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(ShardError, match="closed"):
            pool.detect_batch(["x"])

    def test_invalid_arguments(self, snapshot_path):
        with pytest.raises(ValueError, match="workers"):
            DetectorPool(snapshot_path, workers=0)
        with pytest.raises(ValueError, match="chunksize"):
            DetectorPool(snapshot_path, workers=2, chunksize=0)

    def test_bad_snapshot_fails_in_parent(self, tmp_path):
        bad = tmp_path / "bad.hdms"
        bad.write_bytes(b"not a snapshot")
        with pytest.raises(ModelError):
            DetectorPool(bad, workers=2)

    def test_worker_failure_raises_shard_error_and_closes(self, snapshot_path):
        pool = DetectorPool(snapshot_path, workers=2)
        with pytest.raises(ShardError, match="detection worker failed on chunk"):
            # a non-string text blows up inside the worker's detect()
            pool.detect_batch(["fine query", None])
        assert pool.closed

    def test_chunking_covers_input_in_order(self, snapshot_path):
        pool = DetectorPool(snapshot_path, workers=3)
        items = [f"q{i}" for i in range(500)]
        chunks = pool._chunk(items)
        assert [item for chunk in chunks for item in chunk] == items
        assert max(len(chunk) for chunk in chunks) <= MAX_CHUNK_SIZE
        assert len(chunks) >= pool.workers  # enough chunks to keep all busy
        pool.close()

    def test_explicit_chunksize_is_respected(self, snapshot_path):
        pool = DetectorPool(snapshot_path, workers=2, chunksize=3)
        assert [len(c) for c in pool._chunk(list(range(8)))] == [3, 3, 2]
        pool.close()


class TestDetectorPoolHotSwap:
    """swap_snapshot lifecycle: a running batch finishes on the old
    snapshot's workers; batches after the swap spawn fresh workers on
    the new file; a bad file never disturbs the serving pool."""

    @pytest.fixture()
    def second_snapshot(self, snapshot_path, tmp_path):
        # A byte-copy, not save_snapshot(): re-saving through the shared
        # `compiled` fixture would silently repoint its snapshot_path.
        path = tmp_path / "next.hdms"
        path.write_bytes(snapshot_path.read_bytes())
        return path

    def test_swap_points_new_batches_at_new_snapshot(
        self, snapshot_path, second_snapshot, compiled, queries
    ):
        with DetectorPool(snapshot_path, workers=2) as pool:
            before = pool.detect_batch(queries[:6])
            old_executor = pool._executor
            pool.swap_snapshot(second_snapshot)
            assert pool.snapshot_path == str(second_snapshot)
            assert pool._executor is None  # next batch spawns on the new file
            after = pool.detect_batch(queries[:6])
            assert pool._executor is not old_executor
        assert before == after == [compiled.detect(q) for q in queries[:6]]

    def test_swap_before_first_batch_is_cheap(
        self, snapshot_path, second_snapshot
    ):
        pool = DetectorPool(snapshot_path, workers=2)
        pool.swap_snapshot(second_snapshot)  # no executor to retire yet
        assert pool.detect_batch(["iphone 5s"])[0].query == "iphone 5s"
        pool.close()

    def test_bad_swap_leaves_pool_serving(self, snapshot_path, tmp_path):
        bad = tmp_path / "bad.hdms"
        bad.write_bytes(b"not a snapshot")
        with DetectorPool(snapshot_path, workers=2) as pool:
            pool.detect_batch(["hotel paris"])
            executor = pool._executor
            with pytest.raises(ModelError):
                pool.swap_snapshot(bad)
            assert pool.snapshot_path == str(snapshot_path)
            assert pool._executor is executor  # untouched by the refusal
            assert pool.detect_batch(["hotel paris"])[0].query == "hotel paris"

    def test_swap_on_closed_pool_raises(self, snapshot_path, second_snapshot):
        pool = DetectorPool(snapshot_path, workers=2)
        pool.close()
        with pytest.raises(ShardError, match="closed"):
            pool.swap_snapshot(second_snapshot)


class TestCompiledDetectorServing:
    def test_workers_route_through_pool_and_match(self, model, queries):
        # a never-saved detector writes its own temp snapshot on demand
        fresh = model.compile()
        subset = queries[:8]
        with fresh:
            sharded = fresh.detect_batch(subset, workers=2)
            assert sharded == [fresh.detect(query) for query in subset]
            path = fresh.snapshot_path
            assert path is not None and Path(path).exists()
        # close() (via the context manager) removed the owned temp file
        assert not Path(path).exists()
        assert fresh.snapshot_path is None

    def test_explicit_save_backs_pools_without_ownership(
        self, compiled, snapshot_path, queries
    ):
        # the module detector was save_snapshot()-ed by the fixture, so
        # its pools map that file and close() must leave it in place
        out = compiled.detect_batch(queries[:6], workers=2)
        assert out == [compiled.detect(query) for query in queries[:6]]
        assert compiled.snapshot_path == str(snapshot_path)
        compiled.close()
        assert snapshot_path.exists()

    def test_pool_is_recreated_after_failure(self, compiled):
        with pytest.raises(ShardError):
            compiled.detect_batch(["ok", None], workers=2)
        # the failed pool closed itself; the next call must not reuse it
        out = compiled.detect_batch(["ok", "iphone 5s"], workers=2)
        assert [d.query for d in out] == ["ok", "iphone 5s"]
        compiled.close()

    def test_saved_snapshot_backs_the_pool(self, model, queries, tmp_path):
        path = tmp_path / "served.hdms"
        detector = model.compile(snapshot_path=path)
        with detector:
            assert detector.snapshot_path == str(path)
            out = detector.detect_batch(queries[:6], workers=2)
            assert out == [detector.detect(query) for query in queries[:6]]
        assert path.exists()  # close() never deletes a user-saved snapshot

    def test_pickle_roundtrip_drops_live_pools(self, compiled, queries):
        compiled.detect_batch(queries[:4], workers=2)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._pools == {}
        assert not clone._owns_snapshot  # must not delete the original's file
        assert clone.detect(queries[0]) == compiled.detect(queries[0])
        compiled.close()


class _BoomDetector:
    """Picklable stub whose detect() raises on a marker text."""

    def detect(self, text):
        if text == "boom":
            raise RuntimeError("kapow")
        return text.upper()


class TestShardedBatchFailure:
    def test_failure_names_shard_and_does_not_hang(self):
        with pytest.raises(ShardError, match=r"shard 2/2") as err:
            detect_batch_sharded(_BoomDetector(), ["a", "b", "c", "boom"], workers=2)
        message = str(err.value)
        assert "'boom'" in message  # offending texts previewed
        assert "kapow" in message  # original cause preserved

    def test_success_path_preserves_order_and_dedup(self):
        out = detect_batch_sharded(_BoomDetector(), ["a", "b", "a"], workers=2)
        assert out == ["A", "B", "A"]


class TestShardEdgeCases:
    def test_empty_input(self):
        assert shard([], 3) == [[]]

    def test_single_item(self):
        assert shard(["only"], 4) == [["only"]]

    def test_more_workers_than_items(self):
        assert shard([1, 2, 3], 10) == [[1], [2], [3]]

    @settings(max_examples=200, deadline=None)
    @given(
        items=st.lists(st.integers(), max_size=200),
        num_shards=st.integers(min_value=1, max_value=32),
    )
    def test_concatenated_shards_equal_input(self, items, num_shards):
        shards = shard(items, num_shards)
        assert [item for s in shards for item in s] == items
        assert len(shards) == (min(num_shards, len(items)) or 1)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1


class TestFinalizeGuards:
    """Abandoned detectors must release their pools and temp snapshot at
    garbage collection, not only via an explicit close()."""

    def test_abandoned_detector_releases_snapshot_and_pools(self, model):
        import gc
        import os

        detector = model.compile()
        detector.detect_batch(["iphone 5s case", "hotels in rome"], workers=2)
        path = detector.snapshot_path
        assert path is not None and os.path.exists(path)
        pools = detector._pools
        pool = next(iter(pools.values()))
        assert not pool.closed
        del detector
        gc.collect()
        assert not os.path.exists(path)  # temp snapshot removed
        assert pool.closed  # worker processes shut down
        assert pools == {}

    def test_close_fires_and_detaches_finalizers(self, model):
        detector = model.compile()
        detector.detect_batch(["iphone 5s case", "hotels in rome"], workers=2)
        snapshot_finalizer = detector._snapshot_finalizer
        pool_finalizer = detector._pool_finalizer
        assert snapshot_finalizer.alive and pool_finalizer.alive
        detector.close()
        assert not snapshot_finalizer.alive and not pool_finalizer.alive
        assert detector._snapshot_finalizer is None
        assert detector._pool_finalizer is None
        detector.close()  # idempotent

    def test_pools_respawn_after_close(self, model, queries):
        detector = model.compile()
        with detector:
            first = detector.detect_batch(queries[:4], workers=2)
            detector.close()
            # a fresh snapshot + pool come up transparently after close()
            second = detector.detect_batch(queries[:4], workers=2)
            assert first == second
            assert detector._pool_finalizer is not None

    def test_pickled_copy_carries_no_finalizers(self, compiled, queries):
        compiled.detect_batch(queries[:4], workers=2)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._pool_finalizer is None
        assert clone._snapshot_finalizer is None
        compiled.close()
