"""Fuzz tests: every loader must fail *cleanly* on corrupt input.

A truncated or garbage artifact file must raise the library's own error
types (or succeed for benign corruption like trailing whitespace) — never
leak ``KeyError`` / ``IndexError`` / ``UnicodeDecodeError`` to the caller.
"""

import gzip
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concept_patterns import PatternTable
from repro.errors import ReproError
from repro.mining.pairs import PairCollection
from repro.querylog.storage import load_query_log, save_query_log
from repro.taxonomy.serialization import load_taxonomy_tsv, save_taxonomy_tsv

_GARBAGE_LINES = st.lists(
    st.text(alphabet="abc\t 0.5{}[]\"':,", max_size=30), max_size=6
)


def _clean_failure(loader, path):
    """Run a loader; allow success or a ReproError, nothing else."""
    try:
        loader(path)
    except ReproError:
        pass
    except (OSError, EOFError, json.JSONDecodeError):
        pytest.fail("loader leaked a low-level exception")


class TestGarbageInput:
    @settings(max_examples=40, deadline=None)
    @given(_GARBAGE_LINES)
    def test_taxonomy_loader(self, tmp_path_factory, lines):
        path = tmp_path_factory.mktemp("fz") / "t.tsv"
        path.write_text("\n".join(lines))
        _clean_failure(load_taxonomy_tsv, path)

    @settings(max_examples=40, deadline=None)
    @given(_GARBAGE_LINES)
    def test_pattern_loader(self, tmp_path_factory, lines):
        path = tmp_path_factory.mktemp("fz") / "p.tsv"
        path.write_text("\n".join(lines))
        _clean_failure(PatternTable.load, path)

    @settings(max_examples=40, deadline=None)
    @given(_GARBAGE_LINES)
    def test_pairs_loader(self, tmp_path_factory, lines):
        path = tmp_path_factory.mktemp("fz") / "pr.tsv"
        path.write_text("\n".join(lines))
        _clean_failure(PairCollection.load, path)

    @settings(max_examples=40, deadline=None)
    @given(_GARBAGE_LINES)
    def test_log_loader(self, tmp_path_factory, lines):
        path = tmp_path_factory.mktemp("fz") / "l.jsonl"
        path.write_text("\n".join(lines))
        _clean_failure(load_query_log, path)


class TestTruncation:
    def test_truncated_gzip_log(self, tmp_path, train_log):
        path = tmp_path / "log.jsonl.gz"
        save_query_log(train_log, path)
        data = path.read_bytes()
        (tmp_path / "trunc.jsonl.gz").write_bytes(data[: len(data) // 2])
        _clean_failure(load_query_log, tmp_path / "trunc.jsonl.gz")

    def test_truncated_taxonomy(self, tmp_path, taxonomy):
        path = tmp_path / "t.tsv"
        save_taxonomy_tsv(taxonomy, path)
        text = path.read_text()
        # Cut mid-line: the dangling record must not crash with IndexError.
        (tmp_path / "trunc.tsv").write_text(text[: int(len(text) * 0.6)])
        _clean_failure(load_taxonomy_tsv, tmp_path / "trunc.tsv")

    def test_valid_header_garbage_body(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text("# repro-taxonomy v1\nedge\tonly-three-fields\n")
        with pytest.raises(ReproError):
            load_taxonomy_tsv(path)

    def test_log_header_then_binary(self, tmp_path):
        path = tmp_path / "l.jsonl"
        path.write_bytes(b'{"kind": "meta", "version": 1}\n\x00\x01\x02\n')
        _clean_failure(load_query_log, path)