"""REP007–REP010 on small fixture projects: each rule's positive and
negative cases, plus the layer table's own sanity (acyclic, closed)."""

from __future__ import annotations

import pytest

from repro.analysis import SourceFile, run_lint
from repro.analysis.rules.rep007_layering import ALLOWED_IMPORTS, is_allowed


def lint_rules(sources, rules, tests=None):
    return run_lint(
        list(sources),
        test_sources=list(tests or []),
        src_corpus=list(sources),
        rule_filter=set(rules),
    )


class TestRep007Layering:
    def test_upward_import_flagged(self, rule_ids_of):
        sources = [
            SourceFile("core/model.py", "from repro.serving import http\n"),
            SourceFile("serving/http.py", "X = 1\n"),
        ]
        result = lint_rules(sources, {"REP007"})
        assert rule_ids_of(result) == ["REP007"]
        (finding,) = result.active
        assert finding.path == "core/model.py"
        assert "`core` → `serving`" in finding.message

    def test_downward_import_clean(self, rule_ids_of):
        sources = [
            SourceFile("serving/http.py", "from repro.core import model\n"),
            SourceFile("core/model.py", "X = 1\n"),
        ]
        assert lint_rules(sources, {"REP007"}).active == []

    def test_deferred_upward_import_still_flagged(self, rule_ids_of):
        sources = [
            SourceFile(
                "core/model.py",
                "def compile_model():\n"
                "    from repro.serving import http\n"
                "    return http\n",
            ),
            SourceFile("serving/http.py", "X = 1\n"),
        ]
        assert rule_ids_of(lint_rules(sources, {"REP007"})) == ["REP007"]

    def test_load_time_cycle_flagged_within_a_subsystem(self, rule_ids_of):
        sources = [
            SourceFile("core/a.py", "from repro.core import b\n"),
            SourceFile("core/b.py", "from repro.core import a\n"),
        ]
        result = lint_rules(sources, {"REP007"})
        assert rule_ids_of(result) == ["REP007", "REP007"]
        assert all("load-time import cycle" in f.message for f in result.active)

    def test_deferring_one_edge_clears_the_cycle(self):
        sources = [
            SourceFile("core/a.py", "from repro.core import b\n"),
            SourceFile(
                "core/b.py",
                "def late():\n    from repro.core import a\n    return a\n",
            ),
        ]
        assert lint_rules(sources, {"REP007"}).active == []

    def test_undeclared_subsystem_flagged(self):
        sources = [
            SourceFile("widgets/w.py", "from repro.core import model\n"),
            SourceFile("core/model.py", "X = 1\n"),
        ]
        (finding,) = lint_rules(sources, {"REP007"}).active
        assert "not declared in the layer table" in finding.message

    def test_layer_table_is_a_dag(self):
        # Kahn's algorithm over the declared edges; "*" consumers sit on
        # top and are excluded. If this fails, the architecture diagram
        # in the README is a lie.
        edges = {
            subsystem: set(allowed)
            for subsystem, allowed in ALLOWED_IMPORTS.items()
            if "*" not in allowed
        }
        remaining = dict(edges)
        while remaining:
            leaves = [s for s, deps in remaining.items() if not deps & set(remaining)]
            assert leaves, f"cycle among {sorted(remaining)}"
            for leaf in leaves:
                del remaining[leaf]

    def test_is_allowed_same_subsystem_and_wildcard(self):
        assert is_allowed("core", "core")
        assert is_allowed("cli", "serving")
        assert not is_allowed("analysis", "core")


class TestRep008TransitiveBlocking:
    HELPER = (
        "import time\n"
        "\n"
        "\n"
        "def read_header(path):\n"
        "    time.sleep(0.5)\n"
        "    return path\n"
    )

    def test_buried_blocking_call_flagged(self, rule_ids_of):
        sources = [
            SourceFile("runtime/u.py", self.HELPER),
            SourceFile(
                "serving/h.py",
                "from repro.runtime.u import read_header\n"
                "\n"
                "\n"
                "async def handle(path):\n"
                "    return read_header(path)\n",
            ),
        ]
        result = lint_rules(sources, {"REP008"})
        assert rule_ids_of(result) == ["REP008"]
        (finding,) = result.active
        assert finding.path == "serving/h.py"
        assert "time.sleep" in finding.message
        assert "read_header" in finding.message  # the chain is in the message

    def test_two_hop_chain_flagged(self):
        sources = [
            SourceFile("runtime/u.py", self.HELPER),
            SourceFile(
                "serving/h.py",
                "from repro.runtime.u import read_header\n"
                "\n"
                "\n"
                "def middle(path):\n"
                "    return read_header(path)\n"
                "\n"
                "\n"
                "async def handle(path):\n"
                "    return middle(path)\n",
            ),
        ]
        (finding,) = lint_rules(sources, {"REP008"}).active
        assert "middle" in finding.message and "read_header" in finding.message

    def test_direct_blocking_call_is_rep002s_not_rep008s(self):
        sources = [
            SourceFile(
                "serving/h.py",
                "import time\n"
                "\n"
                "\n"
                "async def handle(path):\n"
                "    time.sleep(0.5)\n"
                "    return path\n",
            )
        ]
        assert lint_rules(sources, {"REP008"}).active == []

    def test_awaited_async_callee_not_followed(self):
        sources = [
            SourceFile(
                "serving/h.py",
                "import asyncio\n"
                "\n"
                "\n"
                "async def nap():\n"
                "    await asyncio.sleep(0.5)\n"
                "\n"
                "\n"
                "async def handle(path):\n"
                "    await nap()\n"
                "    return path\n",
            )
        ]
        assert lint_rules(sources, {"REP008"}).active == []

    def test_non_serving_async_def_out_of_scope(self):
        sources = [
            SourceFile("runtime/u.py", self.HELPER),
            SourceFile(
                "training/t.py",
                "from repro.runtime.u import read_header\n"
                "\n"
                "\n"
                "async def fold(path):\n"
                "    return read_header(path)\n",
            ),
        ]
        assert lint_rules(sources, {"REP008"}).active == []


class TestRep009Protocol:
    SERVER = (
        "def respond(op, body):\n"
        '    if op == "detect":\n'
        "        return 1\n"
        '    if op == "stats":\n'
        "        return 2\n"
        "    return None\n"
    )

    def test_dispatched_but_never_sent(self, rule_ids_of):
        sources = [
            SourceFile("serving/replica.py", self.SERVER),
            SourceFile(
                "serving/router.py",
                'def ping(client):\n    return client.request({"op": "detect"})\n',
            ),
        ]
        result = lint_rules(sources, {"REP009"})
        assert rule_ids_of(result) == ["REP009"]
        (finding,) = result.active
        assert finding.path == "serving/replica.py"
        assert "`stats`" in finding.message and "no serving-side client" in finding.message

    def test_sent_but_never_dispatched(self):
        sources = [
            SourceFile("serving/replica.py", self.SERVER),
            SourceFile(
                "serving/router.py",
                "def ping(client):\n"
                '    client.request({"op": "detect"})\n'
                '    client.request({"op": "stats"})\n'
                '    return client.request({"op": "flush"})\n',
            ),
        ]
        (finding,) = lint_rules(sources, {"REP009"}).active
        assert finding.path == "serving/router.py"
        assert "`flush`" in finding.message and "never dispatches" in finding.message

    def test_matching_op_sets_clean(self):
        sources = [
            SourceFile("serving/replica.py", self.SERVER),
            SourceFile(
                "serving/router.py",
                "def ping(client):\n"
                '    client.request({"op": "detect"})\n'
                '    return client.request({"op": "stats"})\n',
            ),
        ]
        assert lint_rules(sources, {"REP009"}).active == []

    def test_no_replica_module_means_abstain(self):
        sources = [
            SourceFile(
                "serving/router.py",
                'def ping(client):\n    return client.request({"op": "flush"})\n',
            )
        ]
        assert lint_rules(sources, {"REP009"}).active == []

    def test_tested_stats_key_nothing_produces(self):
        sources = [
            SourceFile("serving/replica.py", self.SERVER),
            SourceFile(
                "serving/router.py",
                "def ping(client):\n"
                '    client.request({"op": "detect"})\n'
                '    return client.request({"op": "stats"})\n',
            ),
        ]
        tests = [
            SourceFile(
                "serving/test_stats.py",
                "def test_stats(stats):\n"
                '    assert stats["phantom_metric"] == 1\n',
            )
        ]
        (finding,) = lint_rules(sources, {"REP009"}, tests=tests).active
        assert finding.path == "tests/serving/test_stats.py"
        assert "`phantom_metric`" in finding.message

    def test_produced_stats_key_clean(self):
        sources = [
            SourceFile("serving/replica.py", self.SERVER),
            SourceFile(
                "serving/router.py",
                "def ping(client):\n"
                '    client.request({"op": "detect"})\n'
                '    client.request({"op": "stats"})\n'
                '    return {"phantom_metric": 1}\n',
            ),
        ]
        tests = [
            SourceFile(
                "serving/test_stats.py",
                "def test_stats(stats):\n"
                '    assert stats["phantom_metric"] == 1\n',
            )
        ]
        assert lint_rules(sources, {"REP009"}, tests=tests).active == []


class TestRep010DeadApi:
    def test_unreferenced_public_in_reachable_module(self, rule_ids_of):
        sources = [
            SourceFile("__init__.py", "from repro.core import model\n"),
            SourceFile(
                "core/model.py",
                "def used():\n    return 1\n"
                "\n"
                "\n"
                "def orphan_helper():\n    return 2\n",
            ),
        ]
        tests = [SourceFile("test_model.py", "used\n")]
        result = lint_rules(sources, {"REP010"}, tests=tests)
        assert rule_ids_of(result) == ["REP010"]
        (finding,) = result.active
        assert "`orphan_helper`" in finding.message
        assert "no consumer" in finding.message

    def test_unreachable_module_flagged(self):
        sources = [
            SourceFile("__init__.py", ""),
            SourceFile("core/island.py", "def marooned():\n    return 1\n"),
        ]
        tests = [SourceFile("test_nothing.py", "import repro\n")]
        (finding,) = lint_rules(sources, {"REP010"}, tests=tests).active
        assert finding.path == "core/island.py"
        assert "unreachable" in finding.message

    def test_test_reference_keeps_symbol_alive(self):
        sources = [
            SourceFile("__init__.py", ""),
            SourceFile("core/island.py", "def marooned():\n    return 1\n"),
        ]
        tests = [
            SourceFile(
                "test_island.py",
                "from repro.core.island import marooned\n",
            )
        ]
        assert lint_rules(sources, {"REP010"}, tests=tests).active == []

    def test_own_module_use_keeps_symbol_alive(self):
        sources = [
            SourceFile("__init__.py", "from repro.core import model\n"),
            SourceFile(
                "core/model.py",
                "def helper():\n    return 1\n"
                "\n"
                "\n"
                "TABLE = {1: helper}\n",
            ),
        ]
        tests = [SourceFile("test_model.py", "TABLE\n")]
        assert lint_rules(sources, {"REP010"}, tests=tests).active == []

    def test_private_symbols_exempt(self):
        sources = [
            SourceFile("__init__.py", "from repro.core import model\n"),
            SourceFile("core/model.py", "def _internal():\n    return 1\n"),
        ]
        tests = [SourceFile("test_model.py", "model\n")]
        assert lint_rules(sources, {"REP010"}, tests=tests).active == []

    def test_abstains_without_a_test_corpus(self):
        sources = [
            SourceFile("core/island.py", "def marooned():\n    return 1\n")
        ]
        assert lint_rules(sources, {"REP010"}).active == []


class TestBenchmarkScope:
    def test_bench_files_only_face_the_scoped_rules(self, rule_ids_of):
        # A benchmark may open files without a guard (REP004 territory)
        # but unseeded shuffles (REP001) still gate.
        sources = [
            SourceFile(
                "benchmarks/bench_x.py",
                "import random\n"
                "\n"
                "\n"
                "def run(items):\n"
                "    handle = open('results.json')\n"
                "    random.shuffle(items)\n"
                "    return handle\n",
            )
        ]
        result = run_lint(sources, src_corpus=sources)
        assert rule_ids_of(result) == ["REP001"]
