"""The repo lints clean — and the acceptance canaries: injecting the
exact regressions the rules exist to catch must flip the exit to 1."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, run_lint
from repro.analysis.engine import discover_project, find_project_root

PROJECT_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def corpus():
    sources, tests, src_corpus = discover_project(PROJECT_ROOT)
    return sources, tests, src_corpus


def test_find_project_root_from_here():
    assert find_project_root(Path(__file__).parent) == PROJECT_ROOT


def test_repo_is_clean_with_empty_baseline(corpus):
    sources, tests, src_corpus = corpus
    baseline = Baseline.load(PROJECT_ROOT / "lint-baseline.json")
    assert len(baseline) == 0, "the baseline must stay empty — fix, don't grandfather"
    result = run_lint(
        sources, test_sources=tests, baseline=baseline, src_corpus=src_corpus
    )
    assert result.clean, "\n".join(f.render() for f in result.active)
    assert result.active == []
    assert result.stale_baseline == {}


def _inject(corpus, relpath, transform):
    """Rebuild the lint inputs with one file's text transformed."""
    sources, tests, src_corpus = corpus
    mutated = []
    hit = False
    for source in sources:
        if source.relpath == relpath:
            hit = True
            source = type(source)(source.relpath, transform(source.text))
        mutated.append(source)
    assert hit, f"{relpath} not found in the lint corpus"
    return mutated, tests, mutated


def test_canary_blocking_sleep_in_http_handler(corpus):
    """Acceptance check: ``time.sleep`` in serving/http.py → REP002."""

    def transform(text):
        needle = "status, payload = await self._respond(method, target, body)"
        assert needle in text
        return text.replace(
            needle,
            "import time\n            time.sleep(0.5)\n            " + needle,
            1,
        )

    sources, tests, src_corpus = _inject(corpus, "serving/http.py", transform)
    result = run_lint(sources, test_sources=tests, src_corpus=src_corpus)
    assert not result.clean
    assert any(
        f.rule == "REP002" and f.path == "serving/http.py" for f in result.active
    )


def test_canary_unseeded_shuffle_in_training(corpus):
    """Acceptance check: unseeded shuffle in training/parallel.py → REP001."""

    def transform(text):
        return text + (
            "\n\ndef _jumbled_shards(shards):\n"
            "    import random\n"
            "    random.shuffle(shards)\n"
            "    return shards\n"
        )

    sources, tests, src_corpus = _inject(corpus, "training/parallel.py", transform)
    result = run_lint(sources, test_sources=tests, src_corpus=src_corpus)
    assert not result.clean
    assert any(
        f.rule == "REP001" and f.path == "training/parallel.py"
        for f in result.active
    )


def test_canary_illegal_core_to_serving_import(corpus):
    """Acceptance check: `core → serving` import in core/model.py → REP007."""

    def transform(text):
        return text + "\nfrom repro.serving import router as _layering_canary\n"

    sources, tests, src_corpus = _inject(corpus, "core/model.py", transform)
    result = run_lint(sources, test_sources=tests, src_corpus=src_corpus)
    assert not result.clean
    assert any(
        f.rule == "REP007"
        and f.path == "core/model.py"
        and "`core` → `serving`" in f.message
        for f in result.active
    )


def test_canary_buried_blocking_sleep_under_async_handler(corpus):
    """Acceptance check: ``time.sleep`` two hops below an ``async def``
    in serving/http.py — invisible to file-local REP002 — → REP008."""

    def transform(text):
        needle = "status, payload = await self._respond(method, target, body)"
        assert needle in text
        text = text.replace(
            needle, "_warm_disk_canary()\n            " + needle, 1
        )
        return text + (
            "\n\ndef _warm_disk_canary():\n"
            "    import time\n"
            "    time.sleep(0.5)\n"
        )

    sources, tests, src_corpus = _inject(corpus, "serving/http.py", transform)
    result = run_lint(sources, test_sources=tests, src_corpus=src_corpus)
    assert not result.clean
    assert any(
        f.rule == "REP008"
        and f.path == "serving/http.py"
        and "time.sleep" in f.message
        and "_warm_disk_canary" in f.message
        for f in result.active
    )
    # And REP002 stays silent: the blocking call is not *in* the
    # coroutine, which is exactly why REP008 exists.
    assert not any(f.rule == "REP002" for f in result.active)


def test_graph_json_artifact_is_deterministic(corpus):
    """`repro lint --graph json` twice → byte-identical documents."""
    import json

    from repro.analysis.graph import _CACHE, build_graphs, graphs_to_dict

    _, _, src_corpus = corpus
    _CACHE.clear()
    first = json.dumps(graphs_to_dict(build_graphs(src_corpus)), sort_keys=True)
    _CACHE.clear()
    second = json.dumps(graphs_to_dict(build_graphs(src_corpus)), sort_keys=True)
    assert first == second


def test_py_typed_marker_ships():
    assert (PROJECT_ROOT / "src" / "repro" / "py.typed").exists()
