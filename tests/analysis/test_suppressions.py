"""noqa parsing: trailing and standalone forms, and the REP000 guard
rail that keeps the escape hatch honest."""

from __future__ import annotations

import textwrap

from repro.analysis.suppressions import parse_suppressions


def parse(code):
    return parse_suppressions("x.py", textwrap.dedent(code).lstrip("\n"))


class TestTrailingNoqa:
    def test_single_rule_with_justification(self):
        suppressions, findings = parse(
            """
            import random

            def f(items):
                random.shuffle(items)  # repro: noqa[REP001] -- test fixture
            """
        )
        assert findings == []
        assert list(suppressions) == [4]
        assert suppressions[4].covers("REP001")
        assert not suppressions[4].covers("REP002")
        assert suppressions[4].justification == "test fixture"

    def test_multiple_rules_one_comment(self):
        suppressions, findings = parse(
            "call()  # repro: noqa[REP002, REP006] -- startup path\n"
        )
        assert findings == []
        assert suppressions[1].rules == frozenset({"REP002", "REP006"})

    def test_suppression_silences_finding(self, lint_one):
        result = lint_one(
            "training/fixture.py",
            "import random\n"
            "random.shuffle([])  # repro: noqa[REP001] -- deterministic fixture\n",
        )
        assert result.active == []
        assert [f.rule for f in result.suppressed] == ["REP001"]

    def test_suppression_for_other_rule_does_not_silence(self, lint_one, rule_ids_of):
        result = lint_one(
            "training/fixture.py",
            "import random\n"
            "random.shuffle([])  # repro: noqa[REP006] -- wrong rule\n",
        )
        assert rule_ids_of(result) == ["REP001"]


class TestStandaloneNoqa:
    def test_covers_next_source_line(self):
        suppressions, findings = parse(
            """
            # repro: noqa[REP004] -- mapping outlives the function;
            # released by GC when the last view dies.
            mapped = make_mapping()
            """
        )
        assert findings == []
        assert list(suppressions) == [3]
        assert suppressions[3].covers("REP004")

    def test_skips_blank_and_comment_lines(self):
        suppressions, _ = parse(
            """
            # repro: noqa[REP006] -- fan-out boundary

            # unrelated comment
            except_site = 1
            """
        )
        assert list(suppressions) == [4]

    def test_duplicate_targets_merge(self):
        suppressions, findings = parse(
            """
            # repro: noqa[REP004] -- reason one
            # repro: noqa[REP006] -- reason two
            call()
            """
        )
        assert findings == []
        assert suppressions[3].rules == frozenset({"REP004", "REP006"})
        assert "reason one" in suppressions[3].justification
        assert "reason two" in suppressions[3].justification


class TestRep000:
    def test_blanket_noqa_reported(self):
        _, findings = parse("call()  # repro: noqa\n")
        assert [f.rule for f in findings] == ["REP000"]
        assert "blanket" in findings[0].message

    def test_unknown_rule_id_reported(self):
        _, findings = parse("call()  # repro: noqa[REP9999] -- why\n")
        assert [f.rule for f in findings] == ["REP000"]
        assert "REP9999" in findings[0].message

    def test_missing_justification_reported(self):
        _, findings = parse("call()  # repro: noqa[REP001]\n")
        assert [f.rule for f in findings] == ["REP000"]
        assert "justification" in findings[0].message

    def test_rep000_cannot_be_suppressed(self, lint_one, rule_ids_of):
        # Even a well-formed noqa on the same line does not cover REP000.
        result = lint_one(
            "core/x.py",
            "a = 1  # repro: noqa -- why\n",
        )
        assert rule_ids_of(result) == ["REP000"]

    def test_docstring_mentioning_noqa_is_not_a_comment(self):
        suppressions, findings = parse(
            '''
            def f():
                """Use `# repro: noqa[REP001]` to suppress."""
            '''
        )
        assert suppressions == {}
        assert findings == []
