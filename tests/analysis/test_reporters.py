"""Pin the reporter surfaces: the JSON schema is a CI contract."""

from __future__ import annotations

import json

from repro.analysis import SourceFile, run_lint
from repro.analysis.reporters import REPORT_VERSION, render_json, render_text

DIRTY = SourceFile(
    "serving/slow.py",
    "import time\n\n\nasync def handle(request):\n    time.sleep(1)\n",
)
CLEAN = SourceFile("core/ok.py", "def f():\n    return 1\n")


class TestJsonReporter:
    def test_schema_keys(self):
        payload = json.loads(render_json(run_lint([DIRTY])))
        assert set(payload) == {
            "version",
            "clean",
            "files_checked",
            "rules_run",
            "findings",
            "suppressed",
            "baselined",
            "stale_baseline",
            "counts",
        }
        assert payload["version"] == REPORT_VERSION
        assert set(payload["counts"]) == {
            "active",
            "suppressed",
            "baselined",
            "stale",
        }

    def test_finding_shape(self):
        payload = json.loads(render_json(run_lint([DIRTY])))
        assert payload["clean"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "REP002"
        assert finding["path"] == "serving/slow.py"
        assert finding["line"] == 5
        assert payload["counts"]["active"] == 1

    def test_clean_run(self):
        payload = json.loads(render_json(run_lint([CLEAN])))
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["files_checked"] == 1
        assert payload["rules_run"] == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
        ]

    def test_output_is_deterministic(self):
        assert render_json(run_lint([DIRTY])) == render_json(run_lint([DIRTY]))


class TestTextReporter:
    def test_finding_line_format(self):
        report = render_text(run_lint([DIRTY]))
        assert "serving/slow.py:5:" in report
        assert "REP002" in report
        assert "1 finding(s)" in report

    def test_clean_summary(self):
        report = render_text(run_lint([CLEAN]))
        assert report.endswith(
            "1 files, 10 rules: 0 finding(s), 0 suppressed, 0 baselined, "
            "0 stale baseline entries"
        )
