"""Shared helpers for the static-analysis suite: lint in-memory snippets
without touching the filesystem."""

from __future__ import annotations

import pytest

from repro.analysis import SourceFile, run_lint


@pytest.fixture
def lint_one():
    """Lint a single in-memory file; returns the LintResult."""

    def _lint(relpath, source, **kwargs):
        return run_lint([SourceFile(relpath, source)], **kwargs)

    return _lint


@pytest.fixture
def rule_ids_of():
    """Active finding rule ids of a LintResult, in report order."""

    def _ids(result):
        return [finding.rule for finding in result.active]

    return _ids
