"""``repro lint`` end to end: exit codes 0/1/2, --write-baseline,
--rule, --format json, --output, --list-rules — on a throwaway project."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

CLEAN_MODULE = "def detect(query):\n    return sorted(set(query.split()))\n"
DIRTY_MODULE = (
    "import random\n"
    "\n"
    "\n"
    "def jumble(items):\n"
    "    random.shuffle(items)\n"
    "    return items\n"
)


class ProjectDir:
    """A minimal on-disk project the CLI's discovery accepts."""

    def __init__(self, root):
        self.root = root
        (root / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        self.package = root / "src" / "repro"
        self.package.mkdir(parents=True)
        (self.package / "__init__.py").write_text("")

    def add(self, relpath, text):
        path = self.package / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def __truediv__(self, other):
        return self.root / other

    def __str__(self):
        return str(self.root)


@pytest.fixture
def project(tmp_path):
    return ProjectDir(tmp_path)


def lint(project, *extra):
    return main(["lint", "--root", str(project), *extra])


class TestExitCodes:
    def test_clean_project_exits_0(self, project, capsys):
        project.add("core/ok.py", CLEAN_MODULE)
        assert lint(project) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_1(self, project, capsys):
        project.add("training/shuffle.py", DIRTY_MODULE)
        assert lint(project) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "training/shuffle.py:5" in out

    def test_unknown_rule_exits_2(self, project, capsys):
        project.add("core/ok.py", CLEAN_MODULE)
        assert lint(project, "--rule", "REP999") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_2(self, project, capsys):
        project.add("core/ok.py", CLEAN_MODULE)
        assert lint(project, "no/such/file.py") == 2

    def test_unparseable_source_exits_2(self, project, capsys):
        project.add("core/broken.py", "def f(:\n")
        assert lint(project) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_corrupt_baseline_exits_2(self, project, capsys):
        project.add("core/ok.py", CLEAN_MODULE)
        (project / "lint-baseline.json").write_text("{broken")
        assert lint(project) == 2

    def test_stale_baseline_exits_1(self, project, capsys):
        project.add("core/ok.py", CLEAN_MODULE)
        (project / "lint-baseline.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": {
                        "feedfeedfeedfeed": {"rule": "REP001", "path": "gone.py"}
                    },
                }
            )
        )
        assert lint(project) == 1
        assert "stale baseline" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_write_baseline_then_clean(self, project, capsys):
        project.add("training/shuffle.py", DIRTY_MODULE)
        assert lint(project) == 1
        assert lint(project, "--write-baseline") == 0
        out = capsys.readouterr().out
        assert "1 grandfathered finding(s)" in out
        # The finding is now baselined, not active.
        assert lint(project) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_write_baseline_drops_stale_entries(self, project, capsys):
        project.add("training/shuffle.py", DIRTY_MODULE)
        lint(project, "--write-baseline")
        # Fix the finding; the entry goes stale, rewrite empties the file.
        project.add("training/shuffle.py", CLEAN_MODULE)
        assert lint(project) == 1
        assert lint(project, "--write-baseline") == 0
        payload = json.loads((project / "lint-baseline.json").read_text())
        assert payload["findings"] == {}
        assert lint(project) == 0


class TestOptions:
    def test_rule_filter(self, project, capsys):
        project.add("training/shuffle.py", DIRTY_MODULE)
        assert lint(project, "--rule", "REP002") == 0
        assert lint(project, "--rule", "REP001", "--rule", "REP002") == 1

    def test_rule_filter_comma_separated(self, project, capsys):
        project.add("training/shuffle.py", DIRTY_MODULE)
        assert lint(project, "--rule", "REP002,REP003") == 0
        assert lint(project, "--rule", "REP001,REP002") == 1
        # Mixed styles compose; stray whitespace and commas are tolerated.
        assert lint(project, "--rule", "REP002, REP003,", "--rule", "REP001") == 1
        assert lint(project, "--rule", "REP001,REP999") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format_and_output_file(self, project, capsys):
        project.add("training/shuffle.py", DIRTY_MODULE)
        report_path = project / "report.json"
        assert (
            lint(project, "--format", "json", "--output", str(report_path)) == 1
        )
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(report_path.read_text())
        assert stdout_payload == file_payload
        assert file_payload["clean"] is False
        assert file_payload["counts"]["active"] == 1

    def test_explicit_paths_narrow_the_target(self, project, capsys):
        project.add("training/shuffle.py", DIRTY_MODULE)
        project.add("core/ok.py", CLEAN_MODULE)
        assert lint(project, "core") == 0
        assert lint(project, "training") == 1

    def test_list_rules(self, project, capsys):
        assert lint(project, "--list-rules") == 0
        out = capsys.readouterr().out
        for number in range(1, 11):
            assert f"REP{number:03d}" in out


class TestGraphOption:
    def test_graph_json_is_byte_identical_across_runs(self, project, capsys):
        project.add("core/model.py", "from repro.utils import x\n")
        project.add("utils/x.py", "X = 1\n")
        assert lint(project, "--graph", "json") == 0
        first = capsys.readouterr().out
        assert lint(project, "--graph", "json") == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["version"] == 1
        paths = [module["path"] for module in payload["modules"]]
        assert paths == sorted(paths)
        (edge,) = next(
            module["imports"]
            for module in payload["modules"]
            if module["path"] == "core/model.py"
        )
        assert edge == {"target": "utils/x.py", "line": 1, "deferred": False}

    def test_graph_dot_and_output_file(self, project, capsys):
        project.add("core/model.py", CLEAN_MODULE)
        dot_path = project / "graph.dot"
        assert lint(project, "--graph", "dot", "--output", str(dot_path)) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph imports {")
        assert dot_path.read_text().startswith("digraph imports {")
