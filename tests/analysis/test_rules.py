"""Per-rule positive/negative fixtures.

Each rule gets at least one snippet that must be flagged and one
near-miss that must not be — the negative cases pin the false-positive
boundary, which is what makes the rules trustworthy enough to gate CI.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import SourceFile, run_lint


def src(code):
    return textwrap.dedent(code).lstrip("\n")


class TestRep001Determinism:
    def test_flags_unseeded_module_rng(self, lint_one, rule_ids_of):
        result = lint_one(
            "training/shuffle.py",
            src(
                """
                import random

                def jumble(items):
                    random.shuffle(items)
                    return items
                """
            ),
        )
        assert rule_ids_of(result) == ["REP001"]
        assert "random.shuffle" in result.active[0].message

    def test_flags_from_import_alias(self, lint_one, rule_ids_of):
        result = lint_one(
            "mining/pick.py",
            src(
                """
                from random import choice

                def pick(items):
                    return choice(items)
                """
            ),
        )
        assert rule_ids_of(result) == ["REP001"]

    def test_allows_seeded_generator(self, lint_one):
        result = lint_one(
            "training/seeded.py",
            src(
                """
                import random

                def jumble(items, seed):
                    rng = random.Random(seed)
                    rng.shuffle(items)
                    return items
                """
            ),
        )
        assert result.active == []

    def test_allows_numpy_default_rng_flags_global(self, lint_one, rule_ids_of):
        result = lint_one(
            "runtime/noise.py",
            src(
                """
                import numpy as np

                def good(seed):
                    return np.random.default_rng(seed).normal()

                def bad():
                    return np.random.normal()
                """
            ),
        )
        assert rule_ids_of(result) == ["REP001"]
        assert "numpy.random.normal" in result.active[0].message

    def test_flags_unsorted_listing_allows_sorted(self, lint_one, rule_ids_of):
        result = lint_one(
            "training/scan.py",
            src(
                """
                import os

                def shards(root):
                    return [name for name in os.listdir(root)]

                def shards_sorted(root):
                    return sorted(os.listdir(root))
                """
            ),
        )
        assert rule_ids_of(result) == ["REP001"]
        assert result.active[0].line == 4

    def test_flags_pathlib_glob(self, lint_one, rule_ids_of):
        result = lint_one(
            "runtime/files.py",
            src(
                """
                def snapshots(root):
                    return list(root.glob("*.hdms"))
                """
            ),
        )
        assert rule_ids_of(result) == ["REP001"]

    def test_flags_set_iteration_allows_membership(self, lint_one, rule_ids_of):
        result = lint_one(
            "mining/dedup.py",
            src(
                """
                def ordered(items):
                    seen = set(items)
                    out = []
                    for item in items:    # membership loop: fine
                        if item in seen:
                            out.append(item)
                    for item in set(out):  # unordered iteration: flagged
                        print(item)
                    return [x for x in sorted(set(out))]  # sorted: fine
                """
            ),
        )
        assert rule_ids_of(result) == ["REP001"]
        assert result.active[0].line == 7

    def test_out_of_scope_directory_not_checked(self, lint_one):
        result = lint_one(
            "eval/shuffle.py",
            src(
                """
                import random

                def jumble(items):
                    random.shuffle(items)
                """
            ),
        )
        assert result.active == []


class TestRep002Blocking:
    def test_flags_time_sleep_in_async(self, lint_one, rule_ids_of):
        result = lint_one(
            "serving/slow.py",
            src(
                """
                import time

                async def handle(request):
                    time.sleep(0.1)
                    return request
                """
            ),
        )
        assert rule_ids_of(result) == ["REP002"]
        assert "time.sleep" in result.active[0].message

    def test_flags_subprocess_and_open(self, lint_one, rule_ids_of):
        result = lint_one(
            "serving/io.py",
            src(
                """
                import subprocess

                async def run(cmd, path):
                    subprocess.run(cmd)
                    with open(path) as handle:
                        return handle.read()
                """
            ),
        )
        assert rule_ids_of(result) == ["REP002", "REP002"]

    def test_sync_def_and_nested_sync_def_not_flagged(self, lint_one):
        result = lint_one(
            "serving/ok.py",
            src(
                """
                import time

                def warm_up():
                    time.sleep(0.1)

                async def handle(request):
                    def blocking_helper():
                        time.sleep(0.1)   # runs on an executor thread
                    return blocking_helper
                """
            ),
        )
        assert result.active == []

    def test_asyncio_sleep_not_flagged(self, lint_one):
        result = lint_one(
            "serving/fine.py",
            src(
                """
                import asyncio

                async def backoff():
                    await asyncio.sleep(0.1)
                """
            ),
        )
        assert result.active == []

    def test_outside_serving_not_checked(self, lint_one):
        result = lint_one(
            "runtime/async_tool.py",
            src(
                """
                import time

                async def tick():
                    time.sleep(1)
                """
            ),
        )
        assert result.active == []


class TestRep003LockAcrossAwait:
    def test_flags_sync_lock_around_await(self, lint_one, rule_ids_of):
        result = lint_one(
            "serving/locky.py",
            src(
                """
                async def update(self, key):
                    with self._lock:
                        await self.refresh(key)
                """
            ),
        )
        assert rule_ids_of(result) == ["REP003"]

    def test_flags_threading_lock_constructor(self, lint_one, rule_ids_of):
        result = lint_one(
            "runtime/locky.py",
            src(
                """
                import threading

                async def once(self):
                    with threading.Lock():
                        await self.work()
                """
            ),
        )
        assert rule_ids_of(result) == ["REP003"]

    def test_async_with_and_no_await_not_flagged(self, lint_one):
        result = lint_one(
            "serving/fine.py",
            src(
                """
                async def update(self, key):
                    async with self._lock:      # asyncio lock: cooperative
                        await self.refresh(key)
                    with self._lock:            # no await inside: fine
                        self.counter += 1
                """
            ),
        )
        assert result.active == []


class TestRep004ResourceGuards:
    def test_flags_unguarded_executor(self, lint_one, rule_ids_of):
        result = lint_one(
            "training/leak.py",
            src(
                """
                from concurrent.futures import ProcessPoolExecutor

                def mine(shards):
                    executor = ProcessPoolExecutor(max_workers=4)
                    return [executor.submit(len, shard) for shard in shards]
                """
            ),
        )
        assert rule_ids_of(result) == ["REP004"]

    def test_with_block_is_a_guard(self, lint_one):
        result = lint_one(
            "training/fine.py",
            src(
                """
                from concurrent.futures import ProcessPoolExecutor

                def mine(shards):
                    with ProcessPoolExecutor(max_workers=4) as executor:
                        return list(executor.map(len, shards))
                """
            ),
        )
        assert result.active == []

    def test_try_finally_shutdown_is_a_guard(self, lint_one):
        result = lint_one(
            "training/fine2.py",
            src(
                """
                from concurrent.futures import ProcessPoolExecutor

                def mine(shards):
                    executor = ProcessPoolExecutor(max_workers=4)
                    try:
                        return list(executor.map(len, shards))
                    finally:
                        executor.shutdown(wait=True)
                """
            ),
        )
        assert result.active == []

    def test_self_attribute_guarded_by_class_close(self, lint_one):
        result = lint_one(
            "serving/pooled.py",
            src(
                """
                from concurrent.futures import ThreadPoolExecutor

                class Service:
                    def start(self):
                        self._executor = ThreadPoolExecutor(max_workers=1)

                    def close(self):
                        self._executor.shutdown(wait=True)
                """
            ),
        )
        assert result.active == []

    def test_self_attribute_without_class_guard_flagged(self, lint_one, rule_ids_of):
        result = lint_one(
            "serving/pooled_leak.py",
            src(
                """
                from concurrent.futures import ThreadPoolExecutor

                class Service:
                    def start(self):
                        self._executor = ThreadPoolExecutor(max_workers=1)
                """
            ),
        )
        assert rule_ids_of(result) == ["REP004"]

    def test_weakref_finalize_is_a_guard(self, lint_one):
        result = lint_one(
            "serving/finalized.py",
            src(
                """
                import weakref
                from concurrent.futures import ThreadPoolExecutor

                class Service:
                    def start(self):
                        self._executor = ThreadPoolExecutor(max_workers=1)
                        weakref.finalize(self, self._executor.shutdown)
                """
            ),
        )
        assert result.active == []

    def test_unguarded_mmap_flagged(self, lint_one, rule_ids_of):
        result = lint_one(
            "runtime/mapping.py",
            src(
                """
                import mmap

                def view(handle):
                    return mmap.mmap(handle.fileno(), 0)
                """
            ),
        )
        assert rule_ids_of(result) == ["REP004"]


class TestRep005ParityCoverage:
    VECTORIZED = src(
        '''
        def derive_table_vectorized(pairs):
            """Vectorized twin of the reference derivation."""
            return pairs


        def mystery_function(rows):
            """No twin, no test."""
            return rows
        '''
    )

    def _run(self, tests_text):
        sources = [SourceFile("training/vectorized.py", self.VECTORIZED)]
        src_corpus = sources + [
            SourceFile("core/tables.py", "def derive_table(pairs):\n    return pairs\n")
        ]
        tests = [SourceFile("training/test_vectorized.py", tests_text)]
        # `mystery_function` is deliberately consumer-free, so REP010
        # would (correctly) flag it too; this class pins REP005 alone.
        return run_lint(
            sources,
            test_sources=tests,
            src_corpus=src_corpus,
            rule_filter={"REP005"},
        )

    def test_twin_and_test_coverage_enforced(self, rule_ids_of):
        result = self._run("def test_derive():\n    derive_table_vectorized([])\n")
        assert rule_ids_of(result) == ["REP005", "REP005"]
        assert all(f.rule == "REP005" for f in result.active)
        assert {"mystery_function"} == {
            message.split("`")[1] for message in (f.message for f in result.active)
        }

    def test_docstring_xref_names_a_twin(self, rule_ids_of):
        sources = [
            SourceFile(
                "runtime/compiled.py",
                src(
                    '''
                    class FlatTable:
                        """Flattened :class:`repro.core.tables.Table`."""
                    '''
                ),
            )
        ]
        tests = [SourceFile("test_runtime.py", "FlatTable")]
        result = run_lint(sources, test_sources=tests, src_corpus=sources)
        assert result.active == []

    def test_reference_base_class_is_a_twin(self, rule_ids_of):
        sources = [
            SourceFile(
                "runtime/compiled.py",
                src(
                    '''
                    class CompiledSegmenter(Segmenter):
                        """Fast segmentation."""
                    '''
                ),
            )
        ]
        src_corpus = sources + [
            SourceFile("core/segmentation.py", "class Segmenter:\n    pass\n")
        ]
        tests = [SourceFile("test_seg.py", "CompiledSegmenter")]
        result = run_lint(sources, test_sources=tests, src_corpus=src_corpus)
        assert result.active == []

    def test_private_symbols_ignored(self):
        sources = [
            SourceFile("runtime/compiled.py", "def _helper(x):\n    return x\n")
        ]
        result = run_lint(sources, test_sources=[SourceFile("t.py", "")])
        assert result.active == []


class TestRep006BroadExcept:
    def test_flags_bare_except(self, lint_one, rule_ids_of):
        result = lint_one(
            "runtime/swallow.py",
            src(
                """
                def run(task):
                    try:
                        return task()
                    except:
                        return None
                """
            ),
        )
        assert rule_ids_of(result) == ["REP006"]
        assert "bare" in result.active[0].message

    def test_flags_broad_except_without_reraise(self, lint_one, rule_ids_of):
        result = lint_one(
            "core/swallow.py",
            src(
                """
                def run(task):
                    try:
                        return task()
                    except Exception:
                        return None
                """
            ),
        )
        assert rule_ids_of(result) == ["REP006"]

    def test_reraise_translation_not_flagged(self, lint_one):
        result = lint_one(
            "training/translate.py",
            src(
                """
                from repro.errors import ShardError

                def run(task, shard):
                    try:
                        return task()
                    except Exception as exc:
                        raise ShardError(f"shard {shard} failed: {exc}") from exc
                """
            ),
        )
        assert result.active == []

    def test_specific_except_not_flagged(self, lint_one):
        result = lint_one(
            "core/fine.py",
            src(
                """
                def load(path):
                    try:
                        return open(path).read()
                    except (OSError, ValueError):
                        return None
                """
            ),
        )
        assert result.active == []


class TestRuleFilter:
    def test_rule_filter_limits_findings(self, lint_one, rule_ids_of):
        source = src(
            """
            import random, time

            async def handle(items):
                random.shuffle(items)
                time.sleep(1)
            """
        )
        everything = lint_one("serving/mixed.py", source)
        only_blocking = lint_one(
            "serving/mixed.py", source, rule_filter={"REP002"}
        )
        assert rule_ids_of(only_blocking) == ["REP002"]
        # serving/ is out of REP001's scope, so the unfiltered run agrees.
        assert rule_ids_of(everything) == ["REP002"]
