"""Baseline round-trips, stale detection, and fingerprint stability
under unrelated edits (the property that makes baselines survivable)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, SourceFile, run_lint
from repro.analysis.baseline import BASELINE_VERSION
from repro.analysis.findings import Finding
from repro.errors import AnalysisError

OFFENDER = "import random\n\n\ndef f(items):\n    random.shuffle(items)\n"


def lint(source_text, baseline=None):
    return run_lint(
        [SourceFile("training/x.py", source_text)], baseline=baseline
    )


class TestRoundTrip:
    def test_save_load_preserves_entries(self, tmp_path):
        baseline = Baseline()
        baseline.add("abc123", "REP001", "training/x.py")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert "abc123" in loaded
        assert len(loaded) == 1
        assert loaded.entries["abc123"] == {
            "rule": "REP001",
            "path": "training/x.py",
        }

    def test_file_shape(self, tmp_path):
        baseline = Baseline()
        baseline.add("abc123", "REP001", "training/x.py")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        assert set(payload) == {"version", "findings"}

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_corrupt_file_raises_analysis_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_wrong_shape_raises_analysis_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(AnalysisError):
            Baseline.load(path)


class TestEngineIntegration:
    def test_baselined_finding_does_not_gate(self):
        first = lint(OFFENDER)
        assert [f.rule for f in first.active] == ["REP001"]
        baseline = Baseline()
        for fingerprint, context in first.live_fingerprints.items():
            baseline.add(fingerprint, context["rule"], context["path"])
        second = lint(OFFENDER, baseline=baseline)
        assert second.active == []
        assert [f.rule for f in second.baselined] == ["REP001"]
        assert second.clean

    def test_fingerprint_survives_line_shift(self):
        first = lint(OFFENDER)
        baseline = Baseline()
        for fingerprint, context in first.live_fingerprints.items():
            baseline.add(fingerprint, context["rule"], context["path"])
        # Unrelated edit above the offending line: a new helper function.
        shifted = "import random\n\n\ndef unrelated():\n    pass\n\n\n" + (
            "def f(items):\n    random.shuffle(items)\n"
        )
        second = lint(shifted, baseline=baseline)
        assert second.active == []
        assert [f.rule for f in second.baselined] == ["REP001"]

    def test_editing_the_offending_line_resurfaces(self):
        first = lint(OFFENDER)
        baseline = Baseline()
        for fingerprint, context in first.live_fingerprints.items():
            baseline.add(fingerprint, context["rule"], context["path"])
        edited = OFFENDER.replace(
            "random.shuffle(items)", "random.shuffle(items[:10])"
        )
        second = lint(edited, baseline=baseline)
        assert [f.rule for f in second.active] == ["REP001"]

    def test_stale_entry_gates_the_run(self):
        baseline = Baseline()
        baseline.add("dead00dead00dead", "REP001", "training/x.py")
        clean_source = "def f(items):\n    return sorted(items)\n"
        result = lint(clean_source, baseline=baseline)
        assert result.active == []
        assert "dead00dead00dead" in result.stale_baseline
        assert not result.clean

    def test_suppressed_findings_not_written_to_baseline(self):
        suppressed = (
            "import random\n"
            "random.shuffle([])  # repro: noqa[REP001] -- fixture\n"
        )
        result = lint(suppressed)
        assert result.live_fingerprints == {}


class TestFingerprint:
    def test_independent_of_line_and_col(self):
        a = Finding("p.py", 3, 1, "REP001", "m").fingerprint("  x = f()")
        b = Finding("p.py", 99, 7, "REP001", "m").fingerprint("x = f()")
        assert a == b

    def test_sensitive_to_rule_path_and_text(self):
        base = Finding("p.py", 1, 1, "REP001", "m").fingerprint("x = f()")
        assert base != Finding("q.py", 1, 1, "REP001", "m").fingerprint("x = f()")
        assert base != Finding("p.py", 1, 1, "REP002", "m").fingerprint("x = f()")
        assert base != Finding("p.py", 1, 1, "REP001", "m").fingerprint("y = f()")
