"""The whole-program graph layer: import edges (deferred detection,
load-time cycles), call resolution across files/classes/re-exports,
deterministic rendering, and order-independence under shuffled
discovery (hypothesis)."""

from __future__ import annotations

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import SourceFile
from repro.analysis.graph import (
    _CACHE,
    build_graphs,
    graphs_to_dict,
    module_name,
    render_graph_dot,
    subsystem_of,
)


def fresh_graphs(sources):
    """Build with the content-hash cache emptied, so construction (not
    cache identity) is what every assertion exercises."""
    _CACHE.clear()
    return build_graphs(sources)


PROJECT = [
    SourceFile(
        "utils/iteration.py",
        "def stable_sort(items):\n    return sorted(items)\n",
    ),
    SourceFile(
        "core/model.py",
        "from repro.utils.iteration import stable_sort\n"
        "\n"
        "\n"
        "class Detector:\n"
        "    def __init__(self):\n"
        "        self.ready = True\n"
        "\n"
        "    def detect(self, query):\n"
        "        return stable_sort(query.split())\n"
        "\n"
        "\n"
        "def build_detector():\n"
        "    return Detector()\n",
    ),
    SourceFile(
        "serving/service.py",
        "import time\n"
        "from repro.core.model import build_detector\n"
        "\n"
        "\n"
        "def warm_up_cache():\n"
        "    time.sleep(0.01)\n"
        "    return build_detector()\n"
        "\n"
        "\n"
        "async def handle(query):\n"
        "    detector = build_detector()\n"
        "    return detector.detect(query)\n"
        "\n"
        "\n"
        "def lazy_config():\n"
        "    from repro.utils.iteration import stable_sort\n"
        "    return stable_sort([])\n",
    ),
]


class TestModuleGraph:
    def test_edges_resolve_to_project_files(self):
        graphs = fresh_graphs(PROJECT)
        edges = {
            (edge.source, edge.target, edge.deferred)
            for edge in graphs.modules.edges
        }
        assert ("core/model.py", "utils/iteration.py", False) in edges
        assert ("serving/service.py", "core/model.py", False) in edges
        # `import time` resolves to nothing in-project: no edge.
        assert not any("time" in target for _, target, _ in edges)

    def test_function_local_import_is_deferred(self):
        graphs = fresh_graphs(PROJECT)
        deferred = [
            edge
            for edge in graphs.modules.imports_of("serving/service.py")
            if edge.target == "utils/iteration.py"
        ]
        assert len(deferred) == 1
        assert deferred[0].deferred is True

    def test_type_checking_import_is_deferred(self):
        sources = [
            SourceFile("core/a.py", "class A:\n    pass\n"),
            SourceFile(
                "core/b.py",
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from repro.core.a import A\n",
            ),
        ]
        (edge,) = fresh_graphs(sources).modules.imports_of("core/b.py")
        assert edge.deferred is True

    def test_load_time_cycle_detected(self):
        sources = [
            SourceFile("core/a.py", "from repro.core import b\n"),
            SourceFile("core/b.py", "from repro.core import a\n"),
        ]
        cycles = fresh_graphs(sources).modules.load_time_cycles()
        assert cycles == [("core/a.py", "core/b.py")]

    def test_deferred_import_breaks_the_cycle(self):
        sources = [
            SourceFile("core/a.py", "from repro.core import b\n"),
            SourceFile(
                "core/b.py",
                "def late():\n    from repro.core import a\n    return a\n",
            ),
        ]
        assert fresh_graphs(sources).modules.load_time_cycles() == []

    def test_relative_import_resolves(self):
        sources = [
            SourceFile("core/a.py", "X = 1\n"),
            SourceFile("core/b.py", "from .a import X\n"),
        ]
        (edge,) = fresh_graphs(sources).modules.imports_of("core/b.py")
        assert edge.target == "core/a.py"


class TestNames:
    def test_subsystem_of(self):
        assert subsystem_of("serving/router.py") == "serving"
        assert subsystem_of("analysis/rules/rep001_determinism.py") == "analysis"
        assert subsystem_of("errors.py") == "errors"
        assert subsystem_of("__init__.py") == "root"
        assert subsystem_of("benchmarks/bench_x.py") == "benchmarks"

    def test_module_name(self):
        assert module_name("serving/router.py") == "repro.serving.router"
        assert module_name("__init__.py") == "repro"
        assert module_name("serving/__init__.py") == "repro.serving"
        assert module_name("benchmarks/bench_x.py") == "benchmarks.bench_x"


class TestCallGraph:
    def test_cross_module_call_resolves(self):
        graphs = fresh_graphs(PROJECT)
        calls = graphs.calls.calls_of("serving/service.py:warm_up_cache")
        assert any(
            site.callee == "core/model.py:build_detector" for site in calls
        )

    def test_instantiation_resolves_to_init(self):
        graphs = fresh_graphs(PROJECT)
        calls = graphs.calls.calls_of("core/model.py:build_detector")
        assert [site.callee for site in calls] == [
            "core/model.py:Detector.__init__"
        ]

    def test_blocking_external_recorded(self):
        graphs = fresh_graphs(PROJECT)
        externals = graphs.calls.externals_of("serving/service.py:warm_up_cache")
        assert any(external.name == "time.sleep" for external in externals)

    def test_async_flag(self):
        graphs = fresh_graphs(PROJECT)
        assert graphs.calls.functions["serving/service.py:handle"].is_async
        assert not graphs.calls.functions[
            "serving/service.py:warm_up_cache"
        ].is_async

    def test_self_method_call_resolves(self):
        sources = [
            SourceFile(
                "core/c.py",
                "class Pipeline:\n"
                "    def run(self):\n"
                "        return self.finish()\n"
                "\n"
                "    def finish(self):\n"
                "        return 1\n",
            )
        ]
        calls = fresh_graphs(sources).calls.calls_of("core/c.py:Pipeline.run")
        assert [site.callee for site in calls] == ["core/c.py:Pipeline.finish"]

    def test_base_class_method_resolves(self):
        sources = [
            SourceFile(
                "core/base.py",
                "class Base:\n    def shared_step(self):\n        return 0\n",
            ),
            SourceFile(
                "core/derived.py",
                "from repro.core.base import Base\n"
                "\n"
                "\n"
                "class Derived(Base):\n"
                "    def run(self):\n"
                "        return self.shared_step()\n",
            ),
        ]
        calls = fresh_graphs(sources).calls.calls_of("core/derived.py:Derived.run")
        assert [site.callee for site in calls] == ["core/base.py:Base.shared_step"]

    def test_init_reexport_chases(self):
        sources = [
            SourceFile("serving/__init__.py", "from repro.serving.impl import go\n"),
            SourceFile("serving/impl.py", "def go():\n    return 1\n"),
            SourceFile(
                "cli.py",
                "from repro import serving\n"
                "\n"
                "\n"
                "def main():\n"
                "    return serving.go()\n",
            ),
        ]
        calls = fresh_graphs(sources).calls.calls_of("cli.py:main")
        assert [site.callee for site in calls] == ["serving/impl.py:go"]

    def test_unique_underscored_name_fallback(self):
        sources = [
            SourceFile(
                "serving/a.py",
                "def use(service):\n    return service.swap_snapshot()\n",
            ),
            SourceFile(
                "serving/b.py",
                "class Service:\n    def swap_snapshot(self):\n        return 1\n",
            ),
        ]
        calls = fresh_graphs(sources).calls.calls_of("serving/a.py:use")
        assert [site.callee for site in calls] == [
            "serving/b.py:Service.swap_snapshot"
        ]


class TestDeterminism:
    def test_json_render_byte_identical_across_builds(self):
        first = json.dumps(
            graphs_to_dict(fresh_graphs(PROJECT)), indent=2, sort_keys=True
        )
        second = json.dumps(
            graphs_to_dict(fresh_graphs(PROJECT)), indent=2, sort_keys=True
        )
        assert first == second

    def test_json_schema_shape(self):
        document = graphs_to_dict(fresh_graphs(PROJECT))
        assert document["version"] == 1
        assert set(document) == {"version", "modules", "functions", "cycles"}
        module = document["modules"][0]
        assert set(module) == {"path", "subsystem", "imports"}
        function = document["functions"][0]
        assert set(function) == {"id", "path", "qualname", "line", "async", "calls"}

    def test_dot_render_mentions_clusters_and_deferred_style(self):
        dot = render_graph_dot(fresh_graphs(PROJECT))
        assert dot.startswith("digraph imports {")
        assert '"cluster_serving"' in dot
        assert "[style=dashed]" in dot  # the deferred lazy_config import

    def test_cache_returns_same_object_for_same_content(self):
        _CACHE.clear()
        first = build_graphs(PROJECT)
        second = build_graphs(list(reversed(PROJECT)))
        assert first is second

    @given(st.permutations(PROJECT))
    def test_order_independent(self, shuffled):
        expected = graphs_to_dict(fresh_graphs(PROJECT))
        assert graphs_to_dict(fresh_graphs(shuffled)) == expected
