"""Tests for repro.querylog.generator."""

import pytest

from repro.errors import QueryLogError
from repro.querylog.generator import LogConfig, QueryLogGenerator, generate_log
from repro.querylog.stats import click_similarity, host_path_similarity
from repro.taxonomy.builder import build_from_seed


@pytest.fixture(scope="module")
def small_log(taxonomy):
    return generate_log(taxonomy, LogConfig(seed=3, num_intents=400))


class TestConfigValidation:
    def test_rejects_bad_num_intents(self):
        with pytest.raises(QueryLogError):
            LogConfig(num_intents=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(QueryLogError):
            LogConfig(subjective_prob=1.5)
        with pytest.raises(QueryLogError):
            LogConfig(reversed_prob=-0.1)


class TestDeterminism:
    def test_same_seed_same_log(self, taxonomy):
        a = generate_log(taxonomy, LogConfig(seed=5, num_intents=100))
        b = generate_log(taxonomy, LogConfig(seed=5, num_intents=100))
        assert {r.query: r.frequency for r in a.records()} == {
            r.query: r.frequency for r in b.records()
        }

    def test_different_seed_differs(self, taxonomy):
        a = generate_log(taxonomy, LogConfig(seed=5, num_intents=100))
        b = generate_log(taxonomy, LogConfig(seed=6, num_intents=100))
        assert {r.query for r in a.records()} != {r.query for r in b.records()}


class TestLogShape:
    def test_size_scales_with_intents(self, taxonomy):
        small = generate_log(taxonomy, LogConfig(seed=1, num_intents=100))
        large = generate_log(taxonomy, LogConfig(seed=1, num_intents=800))
        assert large.num_queries > small.num_queries

    def test_gold_labels_present(self, small_log):
        assert len(small_log.gold_labels) > 0

    def test_gold_heads_appear_in_their_query(self, small_log):
        mismatches = [
            q
            for q, g in small_log.gold_labels.items()
            if g.head not in q
        ]
        # Collisions between intents may orphan a few labels; they must be rare.
        assert len(mismatches) <= 0.02 * len(small_log.gold_labels)

    def test_sessions_generated(self, small_log):
        assert small_log.num_sessions > 0

    def test_session_queries_exist_in_log(self, small_log):
        for session in list(small_log.sessions())[:50]:
            for query in session.queries:
                assert small_log.lookup(query) is not None, query

    def test_noise_queries_present(self, small_log):
        assert small_log.lookup("gmail") is not None

    def test_standalone_heads_present(self, small_log):
        # For most labelled multi-segment queries the bare head exists too.
        sample = [
            (q, g) for q, g in small_log.gold_labels.items() if g.modifiers
        ][:100]
        found = sum(1 for _, g in sample if small_log.lookup(g.head) is not None)
        assert found >= 0.9 * len(sample)

    def test_domain_restriction(self, taxonomy):
        log = generate_log(
            taxonomy, LogConfig(seed=2, num_intents=100, domains=("travel",))
        )
        domains = {g.domain for g in log.gold_labels.values()}
        assert domains <= {"travel"}

    def test_empty_domain_restriction_raises(self, taxonomy):
        with pytest.raises(QueryLogError):
            QueryLogGenerator(taxonomy, LogConfig(domains=("nonexistent",)))


class TestDistributionShapes:
    """The log's statistical shape must look like a real log."""

    def test_frequency_distribution_is_skewed(self, small_log):
        frequencies = sorted(
            (r.frequency for r in small_log.records()), reverse=True
        )
        top_decile = sum(frequencies[: len(frequencies) // 10])
        assert top_decile > 0.4 * sum(frequencies)  # head-heavy, Zipf-like

    def test_most_queries_are_rare(self, small_log):
        frequencies = [r.frequency for r in small_log.records()]
        rare = sum(1 for f in frequencies if f <= 3)
        assert rare > 0.4 * len(frequencies)

    def test_click_volume_tracks_frequency(self, small_log):
        total_clicks = sum(r.total_clicks for r in small_log.records())
        total_volume = small_log.total_frequency
        assert 0.4 * total_volume < total_clicks < 0.9 * total_volume

    def test_popular_instances_appear_more(self, taxonomy, small_log):
        # Rank-1 seed instance should out-volume a tail instance of the
        # same concept across the whole log.
        from repro.querylog.stats import LogStatistics

        stats = LogStatistics(small_log)
        assert stats.term_volume("iphone") >= stats.term_volume("lumia")

    def test_query_length_distribution(self, small_log):
        lengths = [len(r.tokens) for r in small_log.records()]
        average = sum(lengths) / len(lengths)
        assert 1.5 < average < 4.5  # short texts, as the title says

    def test_click_noise_adds_offtopic_urls(self, taxonomy):
        clean = generate_log(taxonomy, LogConfig(seed=4, num_intents=100))
        noisy = generate_log(
            taxonomy, LogConfig(seed=4, num_intents=100, click_noise=0.4)
        )
        def portal_fraction(log):
            portal = total = 0
            for record in log.records():
                for url, count in record.clicks.items():
                    total += count
                    portal += count if "portal" in url else 0
            return portal / max(total, 1)
        assert portal_fraction(clean) == 0.0
        assert 0.2 < portal_fraction(noisy) < 0.6

    def test_click_noise_validated(self):
        with pytest.raises(QueryLogError):
            LogConfig(click_noise=1.5)


class TestClickInvariants:
    def test_dropping_nonconstraint_preserves_clicks(self, small_log):
        """The substrate invariant the paper's mining depends on."""
        checked = 0
        for query, gold in small_log.gold_labels.items():
            non_constraints = [m.surface for m in gold.modifiers if not m.is_constraint]
            if not non_constraints:
                continue
            reduced_tokens = [
                t for t in query.split() if t not in set(non_constraints)
            ]
            reduced = small_log.lookup(" ".join(reduced_tokens))
            full = small_log.lookup(query)
            if reduced is None or not full.clicks or not reduced.clicks:
                continue
            if small_log.gold_labels.get(" ".join(reduced_tokens), gold).head != gold.head:
                continue  # reduced surface collided with another intent
            assert click_similarity(full.clicks, reduced.clicks) > 0.8, query
            checked += 1
            if checked >= 30:
                break
        assert checked > 5

    def test_head_subquery_shares_host_path(self, small_log):
        checked = 0
        for query, gold in small_log.gold_labels.items():
            if not gold.modifiers:
                continue
            head_record = small_log.lookup(gold.head)
            full = small_log.lookup(query)
            if head_record is None or not head_record.clicks or not full.clicks:
                continue
            gold_head_label = small_log.gold_labels.get(gold.head)
            if gold_head_label is None or gold_head_label.modifiers:
                continue  # head surface collided with a composite intent
            if gold_head_label.head_concept != gold.head_concept:
                continue  # same surface, different concept reading
            assert host_path_similarity(full.clicks, head_record.clicks) > 0.8, query
            checked += 1
            if checked >= 30:
                break
        assert checked > 5

    def test_weak_constraint_flags_deterministic_per_surface(self, taxonomy):
        log = generate_log(taxonomy, LogConfig(seed=8, num_intents=600))
        flags: dict[str, set[bool]] = {}
        for gold in log.gold_labels.values():
            for modifier in gold.modifiers:
                if modifier.concept in {"color", "year"}:
                    flags.setdefault(modifier.surface, set()).add(modifier.is_constraint)
        assert flags, "expected weak-concept modifiers in the log"
        assert all(len(v) == 1 for v in flags.values())
