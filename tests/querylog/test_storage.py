"""Tests for repro.querylog.storage."""

import pytest

from repro.errors import QueryLogError
from repro.querylog.generator import LogConfig, generate_log
from repro.querylog.models import GoldLabel, GoldModifier, QueryLog, SessionRecord
from repro.querylog.storage import load_query_log, save_query_log


def make_log():
    log = QueryLog()
    gold = GoldLabel(
        head="case",
        modifiers=(GoldModifier("iphone 5s", True, "smartphone"),),
        domain="electronics",
        head_concept="phone accessory",
    )
    log.add_record("iphone 5s case", 12, {"https://a/1": 5, "https://a/2": 2}, gold=gold)
    log.add_record("case", 30, {"https://a/1": 9})
    log.add_session(SessionRecord("s1", ("iphone 5s case", "case")))
    return log


class TestRoundTrip:
    def test_plain(self, tmp_path):
        path = tmp_path / "log.jsonl"
        save_query_log(make_log(), path)
        loaded = load_query_log(path)
        assert loaded.num_queries == 2
        assert loaded.lookup("iphone 5s case").clicks == {
            "https://a/1": 5,
            "https://a/2": 2,
        }
        gold = loaded.gold_labels["iphone 5s case"]
        assert gold.head == "case"
        assert gold.modifiers[0].concept == "smartphone"
        assert loaded.num_sessions == 1

    def test_gzip(self, tmp_path):
        path = tmp_path / "log.jsonl.gz"
        save_query_log(make_log(), path)
        assert load_query_log(path).num_queries == 2

    def test_exclude_gold_on_save(self, tmp_path):
        path = tmp_path / "log.jsonl"
        save_query_log(make_log(), path, include_gold=False)
        assert load_query_log(path).gold_labels == {}

    def test_exclude_gold_on_load(self, tmp_path):
        path = tmp_path / "log.jsonl"
        save_query_log(make_log(), path)
        assert load_query_log(path, include_gold=False).gold_labels == {}

    def test_generated_log_round_trips(self, taxonomy, tmp_path):
        log = generate_log(taxonomy, LogConfig(seed=21, num_intents=80))
        path = tmp_path / "gen.jsonl.gz"
        save_query_log(log, path)
        loaded = load_query_log(path)
        assert loaded.num_queries == log.num_queries
        assert loaded.total_frequency == log.total_frequency
        assert len(loaded.gold_labels) == len(log.gold_labels)
        assert loaded.num_sessions == log.num_sessions


class TestErrorHandling:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "query"}\n')
        with pytest.raises(QueryLogError):
            load_query_log(path)

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "version": 1}\nnot json\n')
        with pytest.raises(QueryLogError, match="invalid JSON"):
            load_query_log(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "version": 1}\n{"kind": "mystery"}\n')
        with pytest.raises(QueryLogError, match="unknown record kind"):
            load_query_log(path)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "version": 1}\n[1, 2]\n')
        with pytest.raises(QueryLogError, match="expected an object"):
            load_query_log(path)
