"""Tests for repro.querylog.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.querylog.models import QueryLog
from repro.querylog.stats import (
    LogStatistics,
    click_similarity,
    host_path_similarity,
)


def make_log():
    log = QueryLog()
    log.add_record(
        "iphone 5s case",
        10,
        {"https://acc.example.com/case?c=iphone-5s&r=1": 6,
         "https://acc.example.com/case?c=iphone-5s&r=2": 2},
    )
    log.add_record("case", 40, {"https://acc.example.com/case?r=1": 20})
    log.add_record("iphone 5s", 25, {"https://phone.example.com/iphone-5s?r=1": 12})
    log.add_record(
        "best iphone 5s case",
        4,
        {"https://acc.example.com/case?c=iphone-5s&r=1": 2},
    )
    return log


class TestClickSimilarity:
    def test_identical(self):
        clicks = {"a": 3, "b": 1}
        assert click_similarity(clicks, clicks) == pytest.approx(1.0)

    def test_disjoint(self):
        assert click_similarity({"a": 1}, {"b": 1}) == 0.0

    def test_empty(self):
        assert click_similarity({}, {"a": 1}) == 0.0

    @given(
        st.dictionaries(st.sampled_from("abcd"), st.integers(1, 10), max_size=4),
        st.dictionaries(st.sampled_from("abcd"), st.integers(1, 10), max_size=4),
    )
    def test_bounded_and_symmetric(self, a, b):
        s = click_similarity(a, b)
        assert 0 <= s <= 1 + 1e-9
        assert s == pytest.approx(click_similarity(b, a))


class TestHostPathSimilarity:
    def test_ignores_query_string(self):
        a = {"https://x.com/p?c=1": 3}
        b = {"https://x.com/p?c=2": 5}
        assert host_path_similarity(a, b) == pytest.approx(1.0)

    def test_different_paths_disjoint(self):
        a = {"https://x.com/p1?r=1": 1}
        b = {"https://x.com/p2?r=1": 1}
        assert host_path_similarity(a, b) == 0.0


class TestLogStatistics:
    def setup_method(self):
        self.stats = LogStatistics(make_log())

    def test_total_volume(self):
        assert self.stats.total_volume == 79

    def test_term_idf_orders_by_rarity(self):
        assert self.stats.term_idf("best") > self.stats.term_idf("case")

    def test_term_idf_unknown_is_highest(self):
        assert self.stats.term_idf("zzz") >= self.stats.term_idf("best")

    def test_phrase_idf_averages(self):
        single = self.stats.term_idf("iphone")
        phrase = self.stats.phrase_idf("iphone 5s")
        assert phrase == pytest.approx(
            (single + self.stats.term_idf("5s")) / 2
        )

    def test_term_volume(self):
        assert self.stats.term_volume("case") == 54

    def test_standalone_probability(self):
        assert self.stats.standalone_probability("case") == pytest.approx(40 / 79)
        assert self.stats.standalone_probability("unknown query") == 0.0

    def test_click_entropy(self):
        assert self.stats.click_entropy("case") == 0.0
        assert self.stats.click_entropy("iphone 5s case") > 0.0
        assert self.stats.click_entropy("nope") == 0.0

    def test_drop_similarity_nonconstraint_high(self):
        similarity = self.stats.drop_similarity("best iphone 5s case", "best")
        assert similarity is not None and similarity > 0.9

    def test_drop_similarity_constraint_low(self):
        similarity = self.stats.drop_similarity("iphone 5s case", "iphone 5s")
        assert similarity is not None and similarity < 0.1

    def test_drop_similarity_missing_evidence(self):
        assert self.stats.drop_similarity("iphone 5s case", "5s case") is None
        assert self.stats.drop_similarity("unknown", "x") is None
        assert self.stats.drop_similarity("case", "case") is None

    def test_subquery_support(self):
        support = self.stats.subquery_support("iphone 5s case", "case")
        assert support is not None
        hp_sim, standalone = support
        assert hp_sim > 0.9
        assert standalone == pytest.approx(40 / 79)

    def test_subquery_support_missing(self):
        assert self.stats.subquery_support("iphone 5s case", "5s case") is None
