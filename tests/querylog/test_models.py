"""Tests for repro.querylog.models."""

import pytest

from repro.errors import QueryLogError
from repro.querylog.models import (
    GoldLabel,
    GoldModifier,
    QueryLog,
    QueryRecord,
    SessionRecord,
)


class TestQueryRecord:
    def test_fields(self):
        record = QueryRecord("iphone case", 10, {"u1": 3, "u2": 1})
        assert record.tokens == ("iphone", "case")
        assert record.total_clicks == 4

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(QueryLogError):
            QueryRecord("q", 0, {})


class TestSessionRecord:
    def test_reformulation_pairs(self):
        session = SessionRecord("s1", ("a", "b", "c"))
        assert list(session.reformulation_pairs()) == [("a", "b"), ("b", "c")]

    def test_rejects_empty(self):
        with pytest.raises(QueryLogError):
            SessionRecord("s1", ())


class TestGoldLabel:
    def test_constraint_partition(self):
        gold = GoldLabel(
            head="case",
            modifiers=(
                GoldModifier("iphone 5s", True, "smartphone"),
                GoldModifier("best", False, None),
            ),
            domain="electronics",
        )
        assert gold.constraint_surfaces == {"iphone 5s"}
        assert gold.modifier_surfaces == {"iphone 5s", "best"}


class TestQueryLog:
    def test_add_and_lookup_normalized(self):
        log = QueryLog()
        log.add_record("IPhone Case", 3, {"u": 1})
        record = log.lookup("iphone case")
        assert record is not None
        assert record.frequency == 3

    def test_merge_on_duplicate_insert(self):
        log = QueryLog()
        log.add_record("q a", 2, {"u1": 1})
        log.add_record("q a", 3, {"u1": 2, "u2": 1})
        record = log.lookup("q a")
        assert record.frequency == 5
        assert record.clicks == {"u1": 3, "u2": 1}

    def test_first_gold_wins(self):
        log = QueryLog()
        gold_a = GoldLabel("a", (), "d1")
        gold_b = GoldLabel("b", (), "d2")
        log.add_record("q", 5, {}, gold=gold_a)
        log.add_record("q", 1, {}, gold=gold_b)
        assert log.gold_labels["q"].head == "a"

    def test_attach_gold_requires_existing_record(self):
        log = QueryLog()
        with pytest.raises(QueryLogError):
            log.attach_gold("missing", GoldLabel("x", (), "d"))

    def test_attach_gold_replaces(self):
        log = QueryLog()
        log.add_record("q", 1, {}, gold=GoldLabel("a", (), "d"))
        log.attach_gold("q", GoldLabel("b", (), "d"))
        assert log.gold_labels["q"].head == "b"

    def test_rejects_empty_query(self):
        log = QueryLog()
        with pytest.raises(QueryLogError):
            log.add_record("  !!  ", 1, {})

    def test_statistics_properties(self):
        log = QueryLog()
        log.add_record("a", 2, {})
        log.add_record("b c", 3, {})
        log.add_session(SessionRecord("s1", ("a", "b c")))
        assert log.num_queries == 2
        assert log.total_frequency == 5
        assert log.num_sessions == 1
        assert len(log) == 2
