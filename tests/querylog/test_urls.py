"""Tests for repro.querylog.urls — the click model's semantic invariants."""

from repro.querylog.urls import (
    RESULTS_PER_INTENT,
    intent_base_url,
    result_urls,
    slugify,
    url_host_path,
)


class TestSlugify:
    def test_spaces_to_dashes(self):
        assert slugify("iphone 5s") == "iphone-5s"

    def test_strips_edges(self):
        assert slugify(" rome ") == "rome"

    def test_lowercases(self):
        assert slugify("Rome") == "rome"


class TestUrlSemantics:
    def test_host_derived_from_head_concept(self):
        url = intent_base_url("case", "phone accessory", ())
        assert "phone-accessory.example.com" in url

    def test_constraints_in_query_string(self):
        url = intent_base_url("case", "phone accessory", ("iphone 5s",))
        assert "?c=iphone-5s" in url

    def test_constraint_order_canonical(self):
        a = intent_base_url("jobs", "job resource", ("nurse", "seattle"))
        b = intent_base_url("jobs", "job resource", ("seattle", "nurse"))
        assert a == b

    def test_nonconstraint_invariance(self):
        # The central invariant: same head + same constraints -> same URLs,
        # regardless of anything else about the query surface.
        a = result_urls("case", "phone accessory", ("iphone 5s",))
        b = result_urls("case", "phone accessory", ("iphone 5s",))
        assert a == b

    def test_different_constraints_different_urls(self):
        a = set(result_urls("case", "phone accessory", ("iphone 5s",)))
        b = set(result_urls("case", "phone accessory", ("galaxy s4",)))
        assert a.isdisjoint(b)

    def test_same_head_shares_host_path_across_constraints(self):
        a = result_urls("case", "phone accessory", ("iphone 5s",))
        b = result_urls("case", "phone accessory", ())
        assert {url_host_path(u) for u in a} == {url_host_path(u) for u in b}

    def test_different_heads_different_host_path(self):
        a = {url_host_path(u) for u in result_urls("case", "phone accessory", ())}
        b = {url_host_path(u) for u in result_urls("charger", "phone accessory", ())}
        assert a.isdisjoint(b)

    def test_result_count(self):
        assert len(result_urls("case", "phone accessory", ())) == RESULTS_PER_INTENT


class TestUrlHostPath:
    def test_strips_scheme_and_query(self):
        assert url_host_path("https://x.example.com/case?c=a&r=1") == "x.example.com/case"

    def test_plain_url(self):
        assert url_host_path("http://a.b/c") == "a.b/c"
