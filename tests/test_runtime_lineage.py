"""Snapshot lineage: optional header, old-file compatibility, chains.

The compatibility contract mirrors the ``vseg_*`` automaton sections:
pre-lineage snapshots load unchanged and report no lineage; re-saving
one through the versioned writer upgrades the file in place; children
embed their parent's payload CRC so a chain verifies file-by-file.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.runtime.lineage import (
    SnapshotLineage,
    lineage_of,
    model_generation_of,
    save_versioned_snapshot,
    snapshot_identity,
)
from repro.runtime.snapshot import load_snapshot, read_snapshot_header

QUERIES = ["cheap iphone 5s case", "hotels in rome", "iphone"]


@pytest.fixture(scope="module")
def compiled(model):
    return model.compile()


@pytest.fixture(scope="module")
def plain_path(compiled, tmp_path_factory):
    path = tmp_path_factory.mktemp("lineage") / "plain.hdms"
    compiled.save_snapshot(path)
    return path


@pytest.fixture(scope="module")
def versioned_path(compiled, tmp_path_factory):
    path = tmp_path_factory.mktemp("lineage") / "base.hdms"
    save_versioned_snapshot(compiled, path, generation=1, record_count=1500)
    return path


def test_plain_snapshot_has_no_lineage(plain_path):
    assert lineage_of(plain_path) is None
    assert model_generation_of(plain_path) == 1


def test_versioned_snapshot_round_trips(versioned_path):
    lineage = lineage_of(versioned_path)
    assert lineage == SnapshotLineage(
        generation=1, record_count=1500, parent_crc32=None
    )
    assert model_generation_of(versioned_path) == 1
    detector = load_snapshot(versioned_path)
    assert detector.detect(QUERIES[0]) is not None
    detector.close()


def test_child_embeds_parent_identity(compiled, versioned_path, tmp_path):
    child = tmp_path / "gen2.hdms"
    save_versioned_snapshot(
        compiled, child, generation=2, record_count=1600, parent=versioned_path
    )
    lineage = lineage_of(child)
    assert lineage is not None
    assert lineage.generation == 2
    assert lineage.record_count == 1600
    assert lineage.parent_crc32 == snapshot_identity(versioned_path)
    assert model_generation_of(child) == 2


def test_resave_upgrades_old_snapshot_in_place(plain_path, tmp_path):
    detector = load_snapshot(plain_path)
    upgraded = tmp_path / "upgraded.hdms"
    save_versioned_snapshot(
        detector, upgraded, generation=1, record_count=1500
    )
    assert lineage_of(upgraded) is not None
    reloaded = load_snapshot(upgraded)
    assert [reloaded.detect(q) for q in QUERIES] == [
        detector.detect(q) for q in QUERIES
    ]
    reloaded.close()
    detector.close()


def test_lineage_survives_header_round_trip(versioned_path):
    header = read_snapshot_header(versioned_path)
    assert SnapshotLineage.from_header(header) == lineage_of(versioned_path)


def test_malformed_lineage_rejected():
    with pytest.raises(ModelError, match="malformed lineage"):
        SnapshotLineage.from_header({"lineage": {"generation": "x"}})
    with pytest.raises(ModelError, match="generation must be"):
        SnapshotLineage(generation=0, record_count=1)
    with pytest.raises(ModelError, match="record_count must be"):
        SnapshotLineage(generation=1, record_count=-1)
