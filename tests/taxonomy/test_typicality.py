"""Tests for repro.taxonomy.typicality."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.taxonomy.store import ConceptTaxonomy
from repro.taxonomy.typicality import TypicalityScorer


def make_taxonomy():
    t = ConceptTaxonomy()
    t.add_edge("apple", "fruit", 30)
    t.add_edge("apple", "company", 70)
    t.add_edge("banana", "fruit", 50)
    t.add_edge("iphone", "smartphone", 100)
    return t


class TestConceptDistribution:
    def test_sums_to_one(self):
        scorer = TypicalityScorer(make_taxonomy())
        dist = scorer.concept_distribution("apple")
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_proportional_to_counts(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert scorer.p_concept_given_instance("apple", "company") == pytest.approx(0.7)

    def test_unknown_instance_empty(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert scorer.concept_distribution("zzz") == {}
        assert scorer.p_concept_given_instance("zzz", "fruit") == 0.0

    def test_top_concepts_ordered(self):
        scorer = TypicalityScorer(make_taxonomy())
        top = scorer.top_concepts("apple", 2)
        assert [c for c, _ in top] == ["company", "fruit"]

    def test_top_concepts_k_limits(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert len(scorer.top_concepts("apple", 1)) == 1

    def test_deterministic_tie_break(self):
        t = ConceptTaxonomy()
        t.add_edge("x", "beta", 1)
        t.add_edge("x", "alpha", 1)
        top = TypicalityScorer(t).top_concepts("x", 2)
        assert [c for c, _ in top] == ["alpha", "beta"]


class TestInstanceDistribution:
    def test_proportional(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert scorer.p_instance_given_concept("banana", "fruit") == pytest.approx(
            50 / 80
        )

    def test_sums_to_one(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert sum(scorer.instance_distribution("fruit").values()) == pytest.approx(1.0)


class TestSmoothing:
    def test_smoothing_flattens(self):
        raw = TypicalityScorer(make_taxonomy(), smoothing=0.0)
        smooth = TypicalityScorer(make_taxonomy(), smoothing=100.0)
        assert smooth.p_concept_given_instance("apple", "fruit") > (
            raw.p_concept_given_instance("apple", "fruit")
        )

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            TypicalityScorer(make_taxonomy(), smoothing=-1)

    @given(st.floats(0, 10))
    def test_distribution_sums_to_one_under_smoothing(self, alpha):
        scorer = TypicalityScorer(make_taxonomy(), smoothing=alpha)
        dist = scorer.concept_distribution("apple")
        assert sum(dist.values()) == pytest.approx(1.0)


class TestDerivedScores:
    def test_representativeness_both_ways(self):
        scorer = TypicalityScorer(make_taxonomy())
        rep = scorer.representativeness("iphone", "smartphone")
        assert rep == pytest.approx(1.0)  # only smartphone, only instance

    def test_ambiguity_zero_for_single_sense(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert scorer.instance_ambiguity("iphone") == 0.0

    def test_ambiguity_positive_for_polysemes(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert 0 < scorer.instance_ambiguity("apple") <= math.log(2)

    def test_concept_breadth(self):
        scorer = TypicalityScorer(make_taxonomy())
        assert scorer.concept_breadth("fruit") > scorer.concept_breadth("smartphone")


class TestOnSeedTaxonomy:
    def test_apple_is_ambiguous_in_seed(self, taxonomy):
        scorer = TypicalityScorer(taxonomy)
        senses = dict(scorer.top_concepts("apple", 5))
        assert "fruit" in senses
        assert "electronics brand" in senses

    def test_every_instance_distribution_normalizes(self, taxonomy):
        scorer = TypicalityScorer(taxonomy)
        for instance in list(taxonomy.iter_instances())[:200]:
            assert sum(scorer.concept_distribution(instance).values()) == pytest.approx(
                1.0
            )
