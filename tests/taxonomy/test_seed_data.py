"""Tests for repro.taxonomy.seed_data (knowledge-base integrity)."""

from repro.taxonomy.seed_data import (
    all_domains,
    concept_seeds,
    pattern_seeds,
    seeds_for_domain,
)


class TestConceptSeeds:
    def test_no_duplicate_concepts(self):
        names = [s.concept for s in concept_seeds()]
        assert len(names) == len(set(names))

    def test_every_concept_has_instances(self):
        assert all(s.instances for s in concept_seeds())

    def test_no_duplicate_instances_within_concept(self):
        for seed in concept_seeds():
            assert len(seed.instances) == len(set(seed.instances)), seed.concept

    def test_deliberate_ambiguity_present(self):
        # The KB must contain cross-concept instances, or conceptualization
        # disambiguation has nothing to do.
        membership = {}
        for seed in concept_seeds():
            for instance in seed.instances:
                membership.setdefault(instance, []).append(seed.concept)
        ambiguous = {i for i, cs in membership.items() if len(cs) > 1}
        assert "apple" in ambiguous

    def test_multiword_instances_present(self):
        assert any(
            " " in instance
            for seed in concept_seeds()
            for instance in seed.instances
        )

    def test_scale(self):
        total_instances = sum(len(s.instances) for s in concept_seeds())
        assert len(concept_seeds()) >= 30
        assert total_instances >= 400


class TestPatternSeeds:
    def test_all_reference_known_concepts(self):
        names = {s.concept for s in concept_seeds()}
        for pattern in pattern_seeds():
            assert pattern.modifier_concept in names
            assert pattern.head_concept in names

    def test_positive_weights(self):
        assert all(p.weight > 0 for p in pattern_seeds())

    def test_no_self_patterns(self):
        assert all(p.modifier_concept != p.head_concept for p in pattern_seeds())

    def test_domain_coverage(self):
        domains = all_domains()
        assert len(domains) >= 8
        assert "electronics" in domains
        assert "travel" in domains

    def test_seeds_for_domain_filters(self):
        for pattern in seeds_for_domain("travel"):
            assert pattern.domain == "travel"
        assert seeds_for_domain("travel")

    def test_headline_pattern_present(self):
        # The paper's running example: device modifies accessory.
        pairs = {(p.modifier_concept, p.head_concept) for p in pattern_seeds()}
        assert ("smartphone", "phone accessory") in pairs
