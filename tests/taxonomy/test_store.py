"""Tests for repro.taxonomy.store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TaxonomyError
from repro.taxonomy.store import ConceptTaxonomy


def make_small():
    t = ConceptTaxonomy()
    t.add_edge("iphone 5s", "smartphone", 100, domain="electronics")
    t.add_edge("galaxy s4", "smartphone", 60, domain="electronics")
    t.add_edge("apple", "fruit", 50, domain="food")
    t.add_edge("apple", "company", 80)
    return t


class TestAddEdge:
    def test_counts_accumulate(self):
        t = ConceptTaxonomy()
        t.add_edge("a b", "c", 2)
        t.add_edge("a b", "c", 3)
        assert t.edge_count("a b", "c") == 5

    def test_normalization_on_insert_and_lookup(self):
        t = ConceptTaxonomy()
        t.add_edge("IPhone-5S", "SmartPhone", 1)
        assert t.edge_count("iphone 5s", "smartphone") == 1
        assert t.has_instance("  iphone   5s ")

    def test_rejects_non_positive_count(self):
        t = ConceptTaxonomy()
        with pytest.raises(TaxonomyError):
            t.add_edge("a", "b", 0)

    def test_rejects_empty_strings(self):
        t = ConceptTaxonomy()
        with pytest.raises(TaxonomyError):
            t.add_edge("", "b")
        with pytest.raises(TaxonomyError):
            t.add_edge("a", "!!!")

    def test_rejects_self_loop(self):
        t = ConceptTaxonomy()
        with pytest.raises(TaxonomyError):
            t.add_edge("apple", "Apple")


class TestLookups:
    def test_concepts_of(self):
        t = make_small()
        assert t.concepts_of("apple") == {"fruit": 50, "company": 80}

    def test_instances_of(self):
        t = make_small()
        assert set(t.instances_of("smartphone")) == {"iphone 5s", "galaxy s4"}

    def test_unknown_returns_empty(self):
        t = make_small()
        assert t.concepts_of("zzz") == {}
        assert t.instances_of("zzz") == {}

    def test_totals(self):
        t = make_small()
        assert t.instance_total("apple") == 130
        assert t.concept_total("smartphone") == 160
        assert t.total_count == 290

    def test_domain_labels(self):
        t = make_small()
        assert t.domain_of("smartphone") == "electronics"
        assert t.domain_of("company") is None


class TestEnumeration:
    def test_sizes(self):
        t = make_small()
        assert t.num_instances == 3
        assert t.num_concepts == 3
        assert t.num_edges == 4
        assert len(t) == 4

    def test_iter_edges_complete(self):
        t = make_small()
        edges = set(t.iter_edges())
        assert ("apple", "fruit", 50) in edges
        assert len(edges) == 4

    def test_vocabulary(self):
        t = make_small()
        assert t.vocabulary() == frozenset({"iphone 5s", "galaxy s4", "apple"})

    def test_max_instance_tokens(self):
        t = make_small()
        assert t.max_instance_tokens() == 2
        assert ConceptTaxonomy().max_instance_tokens() == 0


class TestTransformations:
    def test_pruned_drops_light_edges(self):
        t = make_small()
        pruned = t.pruned(min_count=60)
        assert not pruned.has_concept("fruit")
        assert pruned.edge_count("apple", "company") == 80

    def test_pruned_preserves_domains(self):
        t = make_small()
        assert t.pruned(1).domain_of("smartphone") == "electronics"

    def test_merge_accumulates(self):
        a = make_small()
        b = ConceptTaxonomy()
        b.add_edge("apple", "fruit", 10)
        a.merge(b)
        assert a.edge_count("apple", "fruit") == 60

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["i1", "i2", "i3"]),
                st.sampled_from(["c1", "c2"]),
                st.floats(0.5, 10),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_total_count_is_sum_of_edges(self, edges):
        t = ConceptTaxonomy()
        for instance, concept, count in edges:
            t.add_edge(instance, concept, count)
        assert t.total_count == pytest.approx(
            sum(count for _, _, count in edges)
        )
        assert t.total_count == pytest.approx(
            sum(c for _, _, c in t.iter_edges())
        )
