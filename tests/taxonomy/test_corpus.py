"""Tests for repro.taxonomy.corpus."""

import pytest

from repro.taxonomy.corpus import CorpusConfig, generate_corpus
from repro.taxonomy.seed_data import ConceptSeed


def tiny_seed():
    return (
        ConceptSeed("city", "travel", ("rome", "paris", "london")),
        ConceptSeed("dish", "food", ("pizza", "sushi")),
    )


class TestConfigValidation:
    def test_rejects_bad_sentence_count(self):
        with pytest.raises(ValueError):
            CorpusConfig(sentences_per_concept=0)

    def test_rejects_bad_filler_ratio(self):
        with pytest.raises(ValueError):
            CorpusConfig(filler_ratio=1.5)

    def test_rejects_bad_max_instances(self):
        with pytest.raises(ValueError):
            CorpusConfig(max_instances_per_sentence=0)


class TestGeneration:
    def test_deterministic_given_seed(self):
        config = CorpusConfig(seed=5, sentences_per_concept=20)
        a = list(generate_corpus(config, tiny_seed()))
        b = list(generate_corpus(config, tiny_seed()))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(generate_corpus(CorpusConfig(seed=1, sentences_per_concept=30), tiny_seed()))
        b = list(generate_corpus(CorpusConfig(seed=2, sentences_per_concept=30), tiny_seed()))
        assert a != b

    def test_mentions_every_concept(self):
        corpus = " ".join(generate_corpus(CorpusConfig(seed=3), tiny_seed()))
        assert "cities" in corpus or "city" in corpus
        assert "dishes" in corpus or "dish" in corpus

    def test_popular_instances_mentioned_more(self):
        text = " ".join(
            generate_corpus(
                CorpusConfig(seed=4, sentences_per_concept=400, zipf_exponent=1.2),
                tiny_seed(),
            )
        )
        assert text.count("rome") > text.count("london")

    def test_filler_ratio_zero_means_all_patterned(self):
        config = CorpusConfig(seed=5, sentences_per_concept=50, filler_ratio=0.0)
        from repro.taxonomy.corpus import _FILLER

        sentences = list(generate_corpus(config, tiny_seed()))
        assert not any(s in _FILLER for s in sentences)

    def test_volume_scales_with_config(self):
        small = list(generate_corpus(CorpusConfig(seed=1, sentences_per_concept=10), tiny_seed()))
        large = list(generate_corpus(CorpusConfig(seed=1, sentences_per_concept=100), tiny_seed()))
        assert len(large) > len(small)
