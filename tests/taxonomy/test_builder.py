"""Tests for repro.taxonomy.builder."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.builder import TaxonomyBuilder, build_from_corpus, build_from_seed
from repro.taxonomy.corpus import CorpusConfig, generate_corpus
from repro.taxonomy.hearst import HearstExtraction
from repro.taxonomy.seed_data import ConceptSeed, concept_seeds
from repro.taxonomy.typicality import TypicalityScorer


class TestTaxonomyBuilder:
    def test_counts_accumulate(self):
        builder = TaxonomyBuilder()
        builder.add("rome", "city")
        builder.add("rome", "city", 2)
        taxonomy = builder.build()
        assert taxonomy.edge_count("rome", "city") == 3

    def test_min_count_filters(self):
        builder = TaxonomyBuilder()
        builder.add("rome", "city", 5)
        builder.add("noise", "city", 1)
        taxonomy = builder.build(min_count=2)
        assert taxonomy.has_instance("rome")
        assert not taxonomy.has_instance("noise")

    def test_add_extraction(self):
        builder = TaxonomyBuilder()
        builder.add_extraction(HearstExtraction("rome", "city", "such_as"))
        assert builder.num_observations == 1

    def test_domains_applied(self):
        builder = TaxonomyBuilder()
        builder.add("rome", "city")
        builder.set_domain("city", "travel")
        assert builder.build().domain_of("city") == "travel"

    def test_rejects_non_positive(self):
        with pytest.raises(TaxonomyError):
            TaxonomyBuilder().add("a", "b", 0)


class TestBuildFromSeed:
    def test_covers_all_seed_concepts(self, taxonomy):
        for seed in concept_seeds():
            assert taxonomy.has_concept(seed.concept)

    def test_covers_all_seed_instances(self, taxonomy):
        for seed in concept_seeds():
            for instance in seed.instances:
                assert taxonomy.edge_count(instance, seed.concept) > 0

    def test_zipf_counts_decrease_with_rank(self, taxonomy):
        seed = concept_seeds()[0]
        counts = [taxonomy.edge_count(i, seed.concept) for i in seed.instances]
        assert counts[0] >= counts[-1]
        assert counts[0] > counts[1] or len(counts) < 2

    def test_domains_attached(self, taxonomy):
        assert taxonomy.domain_of("smartphone") == "electronics"
        assert taxonomy.domain_of("city") == "travel"

    def test_custom_base_count_scales(self):
        small = build_from_seed(base_count=100)
        large = build_from_seed(base_count=10000)
        assert large.total_count > small.total_count


class TestBuildFromCorpus:
    def test_reconstructs_seed_topology(self):
        seeds = (
            ConceptSeed("city", "travel", ("rome", "paris", "london", "tokyo")),
            ConceptSeed("dish", "food", ("pizza", "sushi", "tacos")),
        )
        corpus = generate_corpus(CorpusConfig(seed=11, sentences_per_concept=150), seeds)
        taxonomy = build_from_corpus(corpus, min_count=2)
        for seed in seeds:
            for instance in seed.instances:
                assert taxonomy.edge_count(instance, seed.concept) > 0, instance

    def test_min_count_removes_extraction_noise(self):
        seeds = (ConceptSeed("city", "travel", ("rome", "paris")),)
        corpus = list(
            generate_corpus(CorpusConfig(seed=12, sentences_per_concept=100), seeds)
        )
        loose = build_from_corpus(corpus, min_count=1)
        strict = build_from_corpus(corpus, min_count=5)
        assert strict.num_edges <= loose.num_edges

    def test_extraction_typicality_tracks_seed_popularity(self):
        # Rank-1 instances are mentioned more, so extraction counts should
        # put them ahead of tail instances — the property conceptualization
        # relies on.
        seeds = (ConceptSeed("city", "travel", ("rome", "paris", "london", "tokyo")),)
        corpus = generate_corpus(
            CorpusConfig(seed=13, sentences_per_concept=400, zipf_exponent=1.2), seeds
        )
        taxonomy = build_from_corpus(corpus, min_count=2)
        scorer = TypicalityScorer(taxonomy)
        assert scorer.p_instance_given_concept(
            "rome", "city"
        ) > scorer.p_instance_given_concept("tokyo", "city")

    def test_domain_map_applied(self):
        seeds = (ConceptSeed("city", "travel", ("rome", "paris")),)
        corpus = generate_corpus(CorpusConfig(seed=14, sentences_per_concept=60), seeds)
        taxonomy = build_from_corpus(corpus, min_count=1, domains={"city": "travel"})
        assert taxonomy.domain_of("city") == "travel"
